"""Order-preserving fan-out for simulation sweeps.

:func:`parallel_map` is the plain pool primitive: it preserves input
order (results are deterministic and bit-identical to the serial path
— the simulators are pure functions of their inputs), reuses
per-worker state via the standard ``initializer`` hook (workers
pre-materialize matrices and profiles once, then serve every point of
their chunk from that cache), and degrades to in-process serial
execution when the host cannot create a pool (restricted sandboxes),
when parallelism would not pay (one item, one worker), or when the
pool dies mid-run (a worker OOM-killed: ``BrokenProcessPool``).

The pool itself now lives behind the scheduler protocol
(:mod:`repro.scheduler.localpool`); this module keeps the historical
list-in/list-out surface on top of it. For per-item retry policies,
partial-sweep accounting, and watchdog timeouts, use the supervised
sibling, :func:`repro.resilience.supervisor.supervised_map`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

# Re-exported: the chunking heuristic moved next to the pool backend.
from repro.scheduler.localpool import LocalPoolScheduler, pool_chunksize  # noqa: F401,E501

T = TypeVar("T")
R = TypeVar("R")


def serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
) -> List[R]:
    """The fallback path: same contract, current process."""
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` with a process pool, preserving order.

    ``fn``/``initializer`` must be module-level (picklable). With
    ``max_workers`` <= 1, fewer than two items, a pool that cannot be
    created, or a pool that breaks mid-run (a worker killed by the
    OS), runs serially in-process — the results are identical either
    way. An item exception propagates (the historical contract); use
    ``supervised_map`` for richer policies.
    """
    items = list(items)
    if len(items) <= 1 or (max_workers is not None and max_workers <= 1):
        return serial_map(fn, items, initializer, initargs)
    from repro.scheduler.base import run_fanout
    scheduler = LocalPoolScheduler(
        max_workers=max_workers,
        initializer=initializer,
        initargs=initargs,
        chunksize=chunksize,
    )
    try:
        outcome = run_fanout(scheduler, fn, items, on_error="raise")
    finally:
        scheduler.shutdown()
    return outcome.results
