"""Order-preserving process-pool fan-out for simulation sweeps.

:func:`parallel_map` is the plain pool primitive: it preserves input
order (results are deterministic and bit-identical to the serial path
— the simulators are pure functions of their inputs), reuses
per-worker state via the standard ``initializer`` hook (workers
pre-materialize matrices and profiles once, then serve every point of
their chunk from that cache), and degrades to in-process serial
execution when the host cannot create a pool (restricted sandboxes),
when parallelism would not pay (one item, one worker), or when the
pool dies mid-run (a worker OOM-killed: ``BrokenProcessPool``).

For per-item retry policies, partial-sweep accounting, and watchdog
timeouts, use the supervised sibling,
:func:`repro.resilience.supervisor.supervised_map`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def pool_chunksize(n_items: int, max_workers: Optional[int]) -> int:
    """Chunk size giving each worker ~2 chunks for tail-balancing.

    ``ProcessPoolExecutor`` defaults ``max_workers`` to
    ``os.cpu_count()``, so that — not a guess from the item count — is
    the worker count the heuristic must divide by.
    """
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, -(-n_items // (max(1, workers) * 2)))


def serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
) -> List[R]:
    """The fallback path: same contract, current process."""
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` with a process pool, preserving order.

    ``fn``/``initializer`` must be module-level (picklable). With
    ``max_workers`` <= 1, fewer than two items, a pool that cannot be
    created, or a pool that breaks mid-run (a worker killed by the
    OS), runs serially in-process — the results are identical either
    way.
    """
    items = list(items)
    if len(items) <= 1 or (max_workers is not None and max_workers <= 1):
        return serial_map(fn, items, initializer, initargs)
    if chunksize is None:
        chunksize = pool_chunksize(len(items), max_workers)
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError, ValueError, BrokenProcessPool):
        # No semaphores / fork denied / a worker died mid-sweep:
        # same results, one process.
        return serial_map(fn, items, initializer, initargs)
