"""Order-preserving process-pool fan-out for simulation sweeps.

:func:`parallel_map` is the one place the codebase touches
``concurrent.futures``: it preserves input order (results are
deterministic and bit-identical to the serial path — the simulators
are pure functions of their inputs), reuses per-worker state via the
standard ``initializer`` hook (workers pre-materialize matrices and
profiles once, then serve every point of their chunk from that cache),
and degrades to in-process serial execution when the host cannot
create a pool (restricted sandboxes) or when parallelism would not pay
(one item, one worker).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
) -> List[R]:
    """The fallback path: same contract, current process."""
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` with a process pool, preserving order.

    ``fn``/``initializer`` must be module-level (picklable). With
    ``max_workers`` <= 1, fewer than two items, or a pool that cannot
    be created, runs serially in-process — the results are identical
    either way.
    """
    items = list(items)
    if len(items) <= 1 or (max_workers is not None and max_workers <= 1):
        return serial_map(fn, items, initializer, initargs)
    if chunksize is None:
        workers = max_workers or (len(items) // 2 or 1)
        chunksize = max(1, -(-len(items) // (workers * 2)))
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError, ValueError):
        # No semaphores / fork denied: same results, one process.
        return serial_map(fn, items, initializer, initargs)
