"""Pluggable simulator instrumentation.

The Sparsepipe pipeline simulator emits five event kinds while it
walks the OEI schedule:

- ``transfer(category, bytes)`` — one DRAM transfer was accounted,
- ``prefetch(step, bytes)``     — the eager CSR loader pulled future
  column bytes forward with leftover bandwidth (Fig 9),
- ``evict(step, bytes)``        — the buffer spilled far-reload rows
  under OOM (the ping-pong traffic of Fig 15d),
- ``repack(step)``              — the buffer compacted consumed
  elements (Section IV-D3),
- ``step(index, cycles, moved, stage_cycles)`` — the step committed;
  always the **last** event of its step, after every transfer /
  prefetch / evict / repack it contains. ``index`` is the pipeline
  step, or ``FILL_STEP`` for the once-per-pair pipeline-fill charge.

Observers subclass :class:`Observer` and override only the hooks they
care about; :class:`~repro.arch.simulator.SparsepipeSimulator.run`
takes a sequence of them. With **no observers registered the simulator
skips event construction entirely** (the zero-observer fast path), so
instrumentation costs nothing unless asked for.

:class:`StepTraceObserver` reproduces the historical hard-wired
accumulators (the per-step :class:`~repro.arch.stats.StepTrace` behind
Fig 15's bandwidth samples); :class:`CounterObserver` adds per-category
event counters; :class:`EventLogObserver` records the raw event stream
(tests, debugging). :class:`~repro.arch.pipeline_viz.
PipelineActivityObserver` renders per-step bottlenecks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.stats import StepTrace

#: Step index used for the once-per-pair pipeline-fill latency charge
#: (first DRAM access + adder-tree drain), which belongs to no
#: sub-tensor step.
FILL_STEP = -1


class Observer:
    """Base observer: every hook is a no-op; override what you need."""

    def on_step(
        self,
        step: int,
        cycles: float,
        moved: Mapping[str, float],
        stage_cycles: Optional[Mapping[str, float]] = None,
    ) -> None:
        """One pipeline step committed (``FILL_STEP`` for fill charges).

        ``stage_cycles`` breaks the step down by component (``os``,
        ``ewise``, ``is``, ``extra``, ``memory``); ``None`` for fill
        charges and single-stream steps without an IS stage.
        """

    def on_transfer(self, category: str, n_bytes: float) -> None:
        """One DRAM transfer was accounted to ``category``."""

    def on_evict(self, step: int, n_bytes: float) -> None:
        """The buffer evicted ``n_bytes`` under OOM during ``step``."""

    def on_repack(self, step: int) -> None:
        """The buffer repacked consumed elements during ``step``."""

    def on_prefetch(self, step: int, n_bytes: float) -> None:
        """The eager CSR loader prefetched ``n_bytes`` during ``step``."""

    def on_diagnostic(self, diag) -> None:
        """The static verifier reported a (possibly suppressed)
        :class:`~repro.errors.Diagnostic` during this run."""


class Instrumentation:
    """Fan-out dispatcher the simulator drives.

    Truthiness is the fast-path test: ``if instr:`` guards every event
    emission, so an empty observer set costs one branch per use.
    """

    __slots__ = ("observers",)

    def __init__(self, observers: Sequence[Observer] = ()) -> None:
        self.observers = tuple(observers)

    def __bool__(self) -> bool:
        return bool(self.observers)

    def step(
        self,
        step: int,
        cycles: float,
        moved: Mapping[str, float],
        stage_cycles: Optional[Mapping[str, float]] = None,
    ) -> None:
        for o in self.observers:
            o.on_step(step, cycles, moved, stage_cycles)

    def transfer(self, category: str, n_bytes: float) -> None:
        for o in self.observers:
            o.on_transfer(category, n_bytes)

    def evict(self, step: int, n_bytes: float) -> None:
        for o in self.observers:
            o.on_evict(step, n_bytes)

    def repack(self, step: int) -> None:
        for o in self.observers:
            o.on_repack(step)

    def prefetch(self, step: int, n_bytes: float) -> None:
        for o in self.observers:
            o.on_prefetch(step, n_bytes)

    def diagnostic(self, diag) -> None:
        for o in self.observers:
            o.on_diagnostic(diag)

    def find(self, cls: type) -> Optional[Observer]:
        """First registered observer of ``cls`` (or None)."""
        for o in self.observers:
            if isinstance(o, cls):
                return o
        return None


class StepTraceObserver(Observer):
    """Accumulates the per-step :class:`StepTrace` — the record behind
    Fig 15's bandwidth-over-progress samples. Registered by default
    when ``run`` is called without an explicit observer list, so the
    default :class:`~repro.arch.stats.SimResult` is unchanged."""

    def __init__(self) -> None:
        self.trace = StepTrace()

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        self.trace.record(cycles, moved)

    def samples(self, bytes_per_cycle: float, n_bins: int = 25):
        return self.trace.samples(bytes_per_cycle, n_bins=n_bins)


class CounterObserver(Observer):
    """Per-category event counters: how *often* each mechanism fired,
    not just how many bytes it moved (the byte totals already live in
    :class:`~repro.arch.stats.TrafficBreakdown`)."""

    def __init__(self) -> None:
        self.steps = 0
        self.cycles = 0.0
        self.transfer_events: Dict[str, int] = {}
        self.transfer_bytes: Dict[str, float] = {}
        self.evict_events = 0
        self.evict_bytes = 0.0
        self.repack_events = 0
        self.prefetch_events = 0
        self.prefetch_bytes = 0.0

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        if step != FILL_STEP:
            self.steps += 1
        self.cycles += cycles

    def on_transfer(self, category, n_bytes) -> None:
        self.transfer_events[category] = self.transfer_events.get(category, 0) + 1
        self.transfer_bytes[category] = (
            self.transfer_bytes.get(category, 0.0) + n_bytes
        )

    def on_evict(self, step, n_bytes) -> None:
        self.evict_events += 1
        self.evict_bytes += n_bytes

    def on_repack(self, step) -> None:
        self.repack_events += 1

    def on_prefetch(self, step, n_bytes) -> None:
        self.prefetch_events += 1
        self.prefetch_bytes += n_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports / JSON export."""
        out: Dict[str, float] = {
            "steps": float(self.steps),
            "cycles": float(self.cycles),
            "evict_events": float(self.evict_events),
            "evict_bytes": float(self.evict_bytes),
            "repack_events": float(self.repack_events),
            "prefetch_events": float(self.prefetch_events),
            "prefetch_bytes": float(self.prefetch_bytes),
        }
        for cat, n in sorted(self.transfer_events.items()):
            out[f"transfers[{cat}]"] = float(n)
            out[f"transfer_bytes[{cat}]"] = float(self.transfer_bytes[cat])
        return out


class DiagnosticsObserver(Observer):
    """Counts verifier diagnostics that surfaced (or were suppressed)
    during a run, by severity and by code — a sweep over many workloads
    can report lint health alongside its performance numbers instead of
    silently discarding warnings.

    ``registry`` (any object with a ``counter(name).inc()`` interface,
    duck-typed to avoid an import cycle with :mod:`repro.obs.metrics`)
    mirrors every count into the shared metrics registry under
    ``diagnostics.total`` / ``diagnostics.severity.<sev>`` /
    ``diagnostics.code.<code>``.
    """

    def __init__(self, registry=None) -> None:
        self.total = 0
        self.by_severity: Dict[str, int] = {}
        self.by_code: Dict[str, int] = {}
        self.registry = registry

    def on_diagnostic(self, diag) -> None:
        self.total += 1
        sev = diag.severity.value
        self.by_severity[sev] = self.by_severity.get(sev, 0) + 1
        self.by_code[diag.code] = self.by_code.get(diag.code, 0) + 1
        if self.registry is not None:
            self.registry.counter("diagnostics.total").inc()
            self.registry.counter(f"diagnostics.severity.{sev}").inc()
            self.registry.counter(f"diagnostics.code.{diag.code}").inc()

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports / JSON export."""
        out: Dict[str, float] = {"diagnostics": float(self.total)}
        for sev, n in sorted(self.by_severity.items()):
            out[f"diagnostics[{sev}]"] = float(n)
        for code, n in sorted(self.by_code.items()):
            out[f"diagnostics[{code}]"] = float(n)
        return out


class EventLogObserver(Observer):
    """Records the raw ordered event stream as ``(kind, ...)`` tuples —
    the ground truth for event-ordering tests and ad-hoc debugging."""

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        self.events.append(("step", step, cycles, dict(moved)))

    def on_transfer(self, category, n_bytes) -> None:
        self.events.append(("transfer", category, n_bytes))

    def on_evict(self, step, n_bytes) -> None:
        self.events.append(("evict", step, n_bytes))

    def on_repack(self, step) -> None:
        self.events.append(("repack", step))

    def on_prefetch(self, step, n_bytes) -> None:
        self.events.append(("prefetch", step, n_bytes))
