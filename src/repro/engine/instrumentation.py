"""Pluggable simulator instrumentation.

The Sparsepipe pipeline simulator emits five event kinds while it
walks the OEI schedule:

- ``transfer(category, bytes)`` — one DRAM transfer was accounted,
- ``prefetch(step, bytes)``     — the eager CSR loader pulled future
  column bytes forward with leftover bandwidth (Fig 9),
- ``evict(step, bytes)``        — the buffer spilled far-reload rows
  under OOM (the ping-pong traffic of Fig 15d),
- ``repack(step)``              — the buffer compacted consumed
  elements (Section IV-D3),
- ``step(index, cycles, moved, stage_cycles)`` — the step committed;
  always the **last** event of its step, after every transfer /
  prefetch / evict / repack it contains. ``index`` is the pipeline
  step, or ``FILL_STEP`` for the once-per-pair pipeline-fill charge.

Observers subclass :class:`Observer` and override only the hooks they
care about; :class:`~repro.arch.simulator.SparsepipeSimulator.run`
takes a sequence of them. With **no observers registered the simulator
skips event construction entirely** (the zero-observer fast path), so
instrumentation costs nothing unless asked for.

The vectorized backend does not walk steps one at a time, so it
delivers the same event stream as a :class:`ReplayBatch` — one pair or
stream worth of pre-synthesized, step-aligned event records — through
:meth:`Instrumentation.replay`. Observers that define an ``on_replay``
method consume the batch wholesale (and may cache derived templates on
``batch.cache``, since batches are memoized per kernel and replayed
once per iteration); everything else receives the exact per-event hook
sequence via :meth:`ReplayBatch.dispatch`. Either way the observable
event order is the reference loop's, byte for byte.

:class:`StepTraceObserver` reproduces the historical hard-wired
accumulators (the per-step :class:`~repro.arch.stats.StepTrace` behind
Fig 15's bandwidth samples); :class:`CounterObserver` adds per-category
event counters; :class:`EventLogObserver` records the raw event stream
(tests, debugging). :class:`~repro.arch.pipeline_viz.
PipelineActivityObserver` renders per-step bottlenecks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arch.stats import StepTrace

#: Step index used for the once-per-pair pipeline-fill latency charge
#: (first DRAM access + adder-tree drain), which belongs to no
#: sub-tensor step.
FILL_STEP = -1


class Observer:
    """Base observer: every hook is a no-op; override what you need."""

    def on_step(
        self,
        step: int,
        cycles: float,
        moved: Mapping[str, float],
        stage_cycles: Optional[Mapping[str, float]] = None,
    ) -> None:
        """One pipeline step committed (``FILL_STEP`` for fill charges).

        ``stage_cycles`` breaks the step down by component (``os``,
        ``ewise``, ``is``, ``extra``, ``memory``); ``None`` for fill
        charges and single-stream steps without an IS stage.
        """

    def on_transfer(self, category: str, n_bytes: float) -> None:
        """One DRAM transfer was accounted to ``category``."""

    def on_evict(self, step: int, n_bytes: float) -> None:
        """The buffer evicted ``n_bytes`` under OOM during ``step``."""

    def on_repack(self, step: int) -> None:
        """The buffer repacked consumed elements during ``step``."""

    def on_prefetch(self, step: int, n_bytes: float) -> None:
        """The eager CSR loader prefetched ``n_bytes`` during ``step``."""

    def on_diagnostic(self, diag) -> None:
        """The static verifier reported a (possibly suppressed)
        :class:`~repro.errors.Diagnostic` during this run."""

    # Observers may additionally define ``on_replay(batch)`` — NOT a
    # base-class method, its *absence* is how ``Instrumentation.replay``
    # detects that an observer needs per-event dispatch — to consume a
    # whole :class:`ReplayBatch` at once. An ``on_replay`` MUST leave
    # the observer in exactly the state the equivalent per-event hook
    # sequence would have.


class ReplayBatch:
    """One pre-synthesized, step-aligned span of the event stream — a
    single pair (plus its fill charge) or stream replay.

    ``steps`` holds one record per committed step, in commit order::

        (step, cycles, prefetch_bytes, transfers, evict_bytes,
         repack, moved, stage_cycles)

    where ``transfers`` is a tuple of ``(category, n_bytes)`` in firing
    order, ``repack`` is a bool, and zero/empty fields mean the
    corresponding event never fired. Batches are memoized by the
    vectorized backend (one per kernel) and replayed once per
    iteration, so ``cache`` gives observers a stable home for derived
    templates keyed by consumer (``batch.cache["timeline"]`` etc.).

    ``columns`` is the same event stream as per-counter float64 arrays
    (see :meth:`column_data`): the producer passes the kernel's own
    vectors through so numeric observers can fold whole batches with
    ``cumsum`` instead of walking ``steps``. Folding a full column —
    zero amounts included — equals the reference hook sequence bit for
    bit, because the skipped hooks would have added ``0.0``, the
    float-addition identity for the non-negative totals involved.
    """

    __slots__ = ("steps", "columns", "cache")

    def __init__(
        self, steps: Sequence[tuple], columns: Optional[dict] = None
    ) -> None:
        self.steps = tuple(steps)
        self.columns = columns
        self.cache: Dict[object, object] = {}

    def column_data(self) -> dict:
        """The columnar view of the batch, derived from ``steps`` (and
        cached) when the producer did not supply one:

        - ``cycles`` — per-step durations, every step including fills,
        - ``dram`` — ``(category, amounts)`` pairs, amounts per step,
        - ``stages`` — ``(stage, busy, stall)`` per reported stage,
          with ``stall = max(0.0, cycles - busy)`` already folded in,
        - ``evict`` / ``prefetch`` — per-event byte amounts,
        - ``n_real`` / ``n_evict`` / ``n_prefetch`` / ``n_repack`` —
          exact integer event counts.
        """
        cols = self.columns
        if cols is None:
            cols = self._derive_columns()
            self.columns = cols
        return cols

    def _derive_columns(self) -> dict:
        cycles: List[float] = []
        dram: Dict[str, List[float]] = {}
        busy: Dict[str, List[float]] = {}
        stall: Dict[str, List[float]] = {}
        evict: List[float] = []
        prefetch: List[float] = []
        n_real = n_evict = n_prefetch = n_repack = 0
        for (step, cyc, pref, transfers, ev, repack,
             moved, stage_cycles) in self.steps:
            cycles.append(cyc)
            if pref:
                prefetch.append(pref)
                n_prefetch += 1
            for cat, val in transfers:
                dram.setdefault(cat, []).append(val)
            if ev:
                evict.append(ev)
                n_evict += 1
            if repack:
                n_repack += 1
            if step != FILL_STEP:
                n_real += 1
            if stage_cycles:
                for stage, b in stage_cycles.items():
                    busy.setdefault(stage, []).append(b)
                    stall.setdefault(stage, []).append(max(0.0, cyc - b))
        arr = lambda xs: np.asarray(xs, dtype=np.float64)  # noqa: E731
        return {
            "cycles": arr(cycles),
            "dram": tuple((c, arr(v)) for c, v in dram.items()),
            "stages": tuple(
                (s, arr(v), arr(stall[s])) for s, v in busy.items()
            ),
            "evict": arr(evict),
            "prefetch": arr(prefetch),
            "n_real": n_real,
            "n_evict": n_evict,
            "n_prefetch": n_prefetch,
            "n_repack": n_repack,
        }

    def dispatch(self, instr: "Instrumentation") -> None:
        """Fire the batch as the exact per-event hook sequence the
        reference loop would emit (the PR-3 event contract order)."""
        for (step, cycles, prefetch, transfers, evict, repack,
             moved, stage_cycles) in self.steps:
            if prefetch:
                instr.prefetch(step, prefetch)
            for cat, val in transfers:
                instr.transfer(cat, val)
            if evict:
                instr.evict(step, evict)
            if repack:
                instr.repack(step)
            instr.step(step, cycles, moved, stage_cycles)


class Instrumentation:
    """Fan-out dispatcher the simulator drives.

    Truthiness is the fast-path test: ``if instr:`` guards every event
    emission, so an empty observer set costs one branch per use.
    """

    __slots__ = ("observers",)

    def __init__(self, observers: Sequence[Observer] = ()) -> None:
        self.observers = tuple(observers)

    def __bool__(self) -> bool:
        return bool(self.observers)

    def step(
        self,
        step: int,
        cycles: float,
        moved: Mapping[str, float],
        stage_cycles: Optional[Mapping[str, float]] = None,
    ) -> None:
        for o in self.observers:
            o.on_step(step, cycles, moved, stage_cycles)

    def transfer(self, category: str, n_bytes: float) -> None:
        for o in self.observers:
            o.on_transfer(category, n_bytes)

    def evict(self, step: int, n_bytes: float) -> None:
        for o in self.observers:
            o.on_evict(step, n_bytes)

    def repack(self, step: int) -> None:
        for o in self.observers:
            o.on_repack(step)

    def prefetch(self, step: int, n_bytes: float) -> None:
        for o in self.observers:
            o.on_prefetch(step, n_bytes)

    def replay(self, batch: ReplayBatch) -> None:
        """Deliver a synthesized batch: observers with ``on_replay``
        consume it wholesale; the rest get per-event dispatch in the
        reference loop's exact order."""
        generic: List[Observer] = []
        for o in self.observers:
            on_replay = getattr(o, "on_replay", None)
            if on_replay is not None:
                on_replay(batch)
            else:
                generic.append(o)
        if generic:
            batch.dispatch(
                self if len(generic) == len(self.observers)
                else Instrumentation(generic)
            )

    def diagnostic(self, diag) -> None:
        for o in self.observers:
            o.on_diagnostic(diag)

    def find(self, cls: type) -> Optional[Observer]:
        """First registered observer of ``cls`` (or None)."""
        for o in self.observers:
            if isinstance(o, cls):
                return o
        return None


class StepTraceObserver(Observer):
    """Accumulates the per-step :class:`StepTrace` — the record behind
    Fig 15's bandwidth-over-progress samples. Registered by default
    when ``run`` is called without an explicit observer list, so the
    default :class:`~repro.arch.stats.SimResult` is unchanged."""

    def __init__(self) -> None:
        self.trace = StepTrace()

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        self.trace.record(cycles, moved)

    def on_replay(self, batch: ReplayBatch) -> None:
        # Same record() calls in the same order, minus the no-op hook
        # dispatch for every transfer/prefetch/evict in between.
        record = self.trace.record
        for rec in batch.steps:
            record(rec[1], rec[6])

    def samples(self, bytes_per_cycle: float, n_bins: int = 25):
        return self.trace.samples(bytes_per_cycle, n_bins=n_bins)


class CounterObserver(Observer):
    """Per-category event counters: how *often* each mechanism fired,
    not just how many bytes it moved (the byte totals already live in
    :class:`~repro.arch.stats.TrafficBreakdown`)."""

    def __init__(self) -> None:
        self.steps = 0
        self.cycles = 0.0
        self.transfer_events: Dict[str, int] = {}
        self.transfer_bytes: Dict[str, float] = {}
        self.evict_events = 0
        self.evict_bytes = 0.0
        self.repack_events = 0
        self.prefetch_events = 0
        self.prefetch_bytes = 0.0

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        if step != FILL_STEP:
            self.steps += 1
        self.cycles += cycles

    def on_transfer(self, category, n_bytes) -> None:
        self.transfer_events[category] = self.transfer_events.get(category, 0) + 1
        self.transfer_bytes[category] = (
            self.transfer_bytes.get(category, 0.0) + n_bytes
        )

    def on_evict(self, step, n_bytes) -> None:
        self.evict_events += 1
        self.evict_bytes += n_bytes

    def on_repack(self, step) -> None:
        self.repack_events += 1

    def on_prefetch(self, step, n_bytes) -> None:
        self.prefetch_events += 1
        self.prefetch_bytes += n_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports / JSON export."""
        out: Dict[str, float] = {
            "steps": float(self.steps),
            "cycles": float(self.cycles),
            "evict_events": float(self.evict_events),
            "evict_bytes": float(self.evict_bytes),
            "repack_events": float(self.repack_events),
            "prefetch_events": float(self.prefetch_events),
            "prefetch_bytes": float(self.prefetch_bytes),
        }
        for cat, n in sorted(self.transfer_events.items()):
            out[f"transfers[{cat}]"] = float(n)
            out[f"transfer_bytes[{cat}]"] = float(self.transfer_bytes[cat])
        return out


class DiagnosticsObserver(Observer):
    """Counts verifier diagnostics that surfaced (or were suppressed)
    during a run, by severity and by code — a sweep over many workloads
    can report lint health alongside its performance numbers instead of
    silently discarding warnings.

    ``registry`` (any object with a ``counter(name).inc()`` interface,
    duck-typed to avoid an import cycle with :mod:`repro.obs.metrics`)
    mirrors every count into the shared metrics registry under
    ``diagnostics.total`` / ``diagnostics.severity.<sev>`` /
    ``diagnostics.code.<code>``.
    """

    def __init__(self, registry=None) -> None:
        self.total = 0
        self.by_severity: Dict[str, int] = {}
        self.by_code: Dict[str, int] = {}
        self.registry = registry

    def on_diagnostic(self, diag) -> None:
        self.total += 1
        sev = diag.severity.value
        self.by_severity[sev] = self.by_severity.get(sev, 0) + 1
        self.by_code[diag.code] = self.by_code.get(diag.code, 0) + 1
        if self.registry is not None:
            self.registry.counter("diagnostics.total").inc()
            self.registry.counter(f"diagnostics.severity.{sev}").inc()
            self.registry.counter(f"diagnostics.code.{diag.code}").inc()

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports / JSON export."""
        out: Dict[str, float] = {"diagnostics": float(self.total)}
        for sev, n in sorted(self.by_severity.items()):
            out[f"diagnostics[{sev}]"] = float(n)
        for code, n in sorted(self.by_code.items()):
            out[f"diagnostics[{code}]"] = float(n)
        return out


class EventLogObserver(Observer):
    """Records the raw ordered event stream as ``(kind, ...)`` tuples —
    the ground truth for event-ordering tests and ad-hoc debugging."""

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        self.events.append(("step", step, cycles, dict(moved)))

    def on_transfer(self, category, n_bytes) -> None:
        self.events.append(("transfer", category, n_bytes))

    def on_evict(self, step, n_bytes) -> None:
        self.events.append(("evict", step, n_bytes))

    def on_repack(self, step) -> None:
        self.events.append(("repack", step))

    def on_prefetch(self, step, n_bytes) -> None:
        self.events.append(("prefetch", step, n_bytes))
