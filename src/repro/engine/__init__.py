"""The unified execution-engine layer.

Three concerns every backend and every experiment share, factored out
of the individual models and drivers:

- :mod:`repro.engine.registry` — the :class:`Engine` protocol and the
  architecture registry (``register_arch`` / ``create_engine``);
  every model the evaluation compares plugs in here,
- :mod:`repro.engine.instrumentation` — the observer protocol for
  simulator events (step / transfer / evict / repack / prefetch) with
  a zero-observer fast path,
- :mod:`repro.engine.cache` — the persistent on-disk result cache
  keyed by content (config hash + code version), and
- :mod:`repro.engine.parallel` — order-preserving process-pool fan-out
  behind ``ExperimentContext.simulate_many``; its supervised sibling
  (retries, watchdog, broken-pool degradation) lives in
  :mod:`repro.resilience.supervisor`.
"""

from repro.engine.cache import CODE_VERSION, CacheEntry, ResultCache
from repro.engine.instrumentation import (
    FILL_STEP,
    CounterObserver,
    DiagnosticsObserver,
    EventLogObserver,
    Instrumentation,
    Observer,
    StepTraceObserver,
)
from repro.engine.parallel import parallel_map, pool_chunksize, serial_map
from repro.engine.registry import (
    ArchSpec,
    Engine,
    arch_names,
    create_engine,
    get_arch,
    register_arch,
)

__all__ = [
    "ArchSpec",
    "CODE_VERSION",
    "CacheEntry",
    "CounterObserver",
    "DiagnosticsObserver",
    "Engine",
    "EventLogObserver",
    "FILL_STEP",
    "Instrumentation",
    "Observer",
    "ResultCache",
    "StepTraceObserver",
    "arch_names",
    "create_engine",
    "get_arch",
    "parallel_map",
    "pool_chunksize",
    "register_arch",
    "serial_map",
]
