"""Persistent on-disk result cache: sharded, bounded, concurrency-safe.

Repeated figure/benchmark runs re-simulate the identical 495-point
cross product; this cache makes warm reruns near-free. One JSON file
per simulated point, content-addressed by

``(code_version, arch, workload, matrix, config_key, reorder, block_size)``

where ``config_key`` is :meth:`SparsepipeConfig.cache_key` (a frozen
content hash, never ``id()``) and ``code_version`` is this module's
:data:`CODE_VERSION` — bump it whenever simulator semantics change and
every stale entry misses.

The store is the service arc's shared substrate (``repro.service``
fans every client out onto one warm store), so it is built for
concurrent access:

- **Sharding** — entries live under ``shard-NN/`` directories chosen
  by the key digest's prefix (:data:`DEFAULT_SHARDS` shards by
  default), each protected by its own in-process lock, so concurrent
  readers/writers on different shards never contend. Cross-process
  writers are safe regardless: every write goes through a per-process,
  per-write temp file (pid plus a process-wide counter) and an atomic
  rename, so a concurrent reader can never observe a torn entry.
- **Byte budget with LRU eviction** — ``max_bytes`` bounds the live
  entry bytes across all shards. Recency is stamped into each entry's
  mtime from a store-wide logical clock (monotone integers seeded
  above everything already on disk — never the wall clock: the engine
  package is a deterministic hot path), so least-recently-*used* order
  survives process restarts and is shared between processes. When a
  put pushes the store over budget, entries are unlinked oldest-first
  until the invariant ``live bytes <= max_bytes`` holds again.
- **Metrics** — pass a :class:`~repro.obs.metrics.MetricsRegistry` and
  the store reports ``cache.hits`` / ``cache.misses`` counters,
  ``cache.evicted`` / ``cache.evicted_bytes`` eviction counters, and a
  ``cache.bytes`` gauge (live bytes after the last budget sweep); see
  docs/observability.md.

Each entry stores its full key alongside the serialized
:class:`~repro.arch.stats.SimResult`, so hash collisions and
hand-edited files degrade to a miss, never a wrong result — and the
offending file is **quarantined** per shard (moved under the shard's
``quarantine/`` with an ``SP604`` diagnostic in
:attr:`ResultCache.diagnostics`), so a corrupt entry can never be
silently re-missed forever: the next ``put`` re-populates the slot.
Entries may also carry a :class:`~repro.obs.manifest.RunManifest`
recording the producing run's provenance;
:meth:`ResultCache.get_entry` returns it marked ``from_cache=True`` so
served and fresh results stay distinguishable.
:meth:`ResultCache.clear` also sweeps the ``*.tmp`` debris a crashed
writer may have left behind.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.arch.stats import SimResult
from repro.errors import ConfigError, Diagnostic
from repro.obs.manifest import RunManifest
from repro.resilience.faults import maybe_corrupt_file

#: Distinguishes temp files of concurrent threads in one process.
_TMP_COUNTER = itertools.count()

#: Bump whenever a change to the simulators alters results — every
#: cache entry written under another version becomes a miss.
CODE_VERSION = "1"

#: Default shard count: 16 shards keep per-shard lock contention
#: negligible for the worker fleets the service runs while staying a
#: trivial number of directories to scan.
DEFAULT_SHARDS = 16


@dataclass(frozen=True)
class CacheEntry:
    """One cache hit: the result plus its (optional) run manifest."""

    result: SimResult
    manifest: Optional[RunManifest] = None


class ResultCache:
    """Sharded directory of per-point SimResult JSON documents."""

    def __init__(
        self,
        root: Union[str, Path],
        code_version: Optional[str] = None,
        shards: Optional[int] = None,
        max_bytes: Optional[int] = None,
        metrics=None,
    ) -> None:
        self.root = Path(root)
        self.n_shards = DEFAULT_SHARDS if shards is None else int(shards)
        if self.n_shards < 1:
            raise ConfigError(
                f"ResultCache needs at least one shard, got {shards!r}")
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigError(
                f"ResultCache max_bytes must be positive, got {max_bytes!r}")
        self.max_bytes = max_bytes
        #: Optional MetricsRegistry the store reports through
        #: (``cache.hits`` / ``cache.misses`` / ``cache.evicted`` /
        #: ``cache.evicted_bytes`` / ``cache.bytes``).
        self.metrics = metrics
        self.root.mkdir(parents=True, exist_ok=True)
        for index in range(self.n_shards):
            self.shard_dir(index).mkdir(parents=True, exist_ok=True)
        # Resolved at construction so tests can monkeypatch CODE_VERSION.
        self.code_version = str(
            CODE_VERSION if code_version is None else code_version
        )
        #: SP604 quarantine diagnostics since the last
        #: :meth:`pop_diagnostics` (consumers: ExperimentContext
        #: metrics / run manifests).
        self.diagnostics: List[Diagnostic] = []
        self._diag_lock = threading.Lock()
        #: One lock per shard: in-process readers/writers of different
        #: shards never contend; same-shard operations serialize.
        self._shard_locks = tuple(
            threading.RLock() for _ in range(self.n_shards)
        )
        #: Serializes budget sweeps (which may touch every shard).
        #: Lock order is always evict-lock -> shard-lock; entry
        #: operations take only their shard lock, so no cycle exists.
        self._evict_lock = threading.Lock()
        #: Store-wide logical recency clock. Seeded above every mtime
        #: already on disk so a restarted process keeps appending to
        #: the same total order; per-process monotone thereafter.
        self._recency = itertools.count(self._initial_stamp())

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def shard_dir(self, index: int) -> Path:
        return self.root / f"shard-{index:02d}"

    def shard_dirs(self) -> List[Path]:
        return [self.shard_dir(i) for i in range(self.n_shards)]

    def quarantine_dirs(self) -> List[Path]:
        """Per-shard quarantine directories (existing ones only)."""
        dirs = [d / "quarantine" for d in self.shard_dirs()]
        return [d for d in dirs if d.is_dir()]

    def quarantine_paths(self) -> List[Path]:
        """Every quarantined entry file, across all shards."""
        return sorted(
            path for d in self.quarantine_dirs() for path in d.glob("*.json")
        )

    def _entries(self) -> Iterator[Path]:
        """Live entry files (excludes quarantine and tmp debris)."""
        for shard in self.shard_dirs():
            yield from shard.glob("*.json")

    def _initial_stamp(self) -> int:
        """First logical recency stamp: one past everything on disk."""
        newest = 0
        for path in self.root.rglob("*.json"):
            try:
                newest = max(newest, path.stat().st_mtime_ns)
            except OSError:
                continue
        return newest + 1

    def _touch(self, path: Path) -> None:
        """Stamp ``path`` as most-recently-used (logical clock, not
        wall clock — eviction order is deterministic and replayable)."""
        stamp = next(self._recency)
        try:
            os.utime(path, ns=(stamp, stamp))
        except OSError:
            pass  # racing eviction/quarantine; recency is best-effort

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry out of its shard so it misses exactly
        once, and record why. Called with the shard lock held."""
        dest_dir = path.parent / "quarantine"
        dest = dest_dir / path.name
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            path.replace(dest)
        except OSError:
            return  # racing reader already moved it; either outcome is a miss
        with self._diag_lock:
            self.diagnostics.append(Diagnostic.warning(
                "SP604", f"corrupt cache entry ({reason}) quarantined",
                str(dest),
            ))

    def pop_diagnostics(self) -> List[Diagnostic]:
        """Quarantine diagnostics accumulated so far (cleared on read)."""
        with self._diag_lock:
            out = list(self.diagnostics)
            self.diagnostics.clear()
        return out

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _entry(self, arch, workload, matrix, config_key, reorder, block_size):
        key = json.dumps(
            [
                self.code_version,
                str(arch),
                str(workload),
                str(matrix),
                str(config_key),
                str(reorder),
                str(block_size),
            ]
        )
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        shard = int(digest[:8], 16) % self.n_shards
        path = self.shard_dir(shard) / (
            f"{arch}-{workload}-{matrix}-{digest}.json"
        )
        return path, key, self._shard_locks[shard]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(
        self, arch, workload, matrix, config_key, reorder, block_size
    ) -> Optional[SimResult]:
        """Cached result for one point, or None on any kind of miss."""
        entry = self.get_entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        return None if entry is None else entry.result

    def get_entry(
        self, arch, workload, matrix, config_key, reorder, block_size
    ) -> Optional["CacheEntry"]:
        """Cached result *with provenance*: the stored run manifest is
        returned marked ``from_cache=True`` (``None`` for entries
        written before manifests existed, or by manifest-less callers).
        """
        path, key, lock = self._entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        with lock:
            entry = self._read_entry(path, key)
        if entry is None:
            self._count("cache.misses")
        else:
            self._count("cache.hits")
        return entry

    def _read_entry(self, path: Path, key: str) -> Optional["CacheEntry"]:
        """One locked probe: read, validate, quarantine on corruption,
        stamp recency on a hit."""
        maybe_corrupt_file("cache.get", path.name, path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None  # a plain miss, nothing to quarantine
        except OSError:
            self._quarantine(path, "unreadable file")
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if not isinstance(doc, dict) or doc.get("key") != key:
            self._quarantine(path, "key mismatch")
            return None
        try:
            result = SimResult.from_dict(doc["result"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "undecodable result")
            return None
        manifest = None
        if doc.get("manifest") is not None:
            try:
                manifest = RunManifest.from_dict(
                    doc["manifest"]
                ).served_from_cache()
            except (KeyError, TypeError, ValueError):
                manifest = None  # auditing data is best-effort
        self._touch(path)
        return CacheEntry(result=result, manifest=manifest)

    def put(
        self, arch, workload, matrix, config_key, reorder, block_size,
        result: SimResult, manifest: Optional[RunManifest] = None,
    ) -> Path:
        """Store one result; atomic against concurrent readers/writers.

        When a byte budget is configured, the put is followed by an
        LRU sweep restoring ``live bytes <= max_bytes``.
        """
        path, key, lock = self._entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        doc = {
            "key": key,
            "result": result.to_dict(),
            "manifest": None if manifest is None else manifest.to_dict(),
        }
        text = json.dumps(doc, sort_keys=True)
        with lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
            )
            tmp.write_text(text)
            tmp.replace(path)
            self._touch(path)
        self._enforce_budget()
        return path

    # ------------------------------------------------------------------
    # Budget / eviction
    # ------------------------------------------------------------------
    def live_bytes(self) -> int:
        """Total bytes of live entries (authoritative: from disk, so
        it also sees entries written by other processes)."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _enforce_budget(self) -> None:
        """Evict least-recently-used entries until the live bytes fit
        the budget again. Scans the disk (not in-memory bookkeeping)
        so concurrent writer *processes* cannot overshoot the budget
        between each other's sweeps."""
        if self.max_bytes is None:
            return
        with self._evict_lock:
            entries: List[Tuple[int, str, int, Path, int]] = []
            total = 0
            for index in range(self.n_shards):
                with self._shard_locks[index]:
                    for path in self.shard_dir(index).glob("*.json"):
                        try:
                            st = path.stat()
                        except OSError:
                            continue
                        entries.append(
                            (st.st_mtime_ns, path.name, index, path,
                             st.st_size)
                        )
                        total += st.st_size
            evicted = 0
            evicted_bytes = 0
            if total > self.max_bytes:
                entries.sort(key=lambda e: (e[0], e[1]))
                for _stamp, _name, index, path, size in entries:
                    if total <= self.max_bytes:
                        break
                    with self._shard_locks[index]:
                        try:
                            path.unlink()
                        except OSError:
                            continue  # racing eviction already took it
                    total -= size
                    evicted += 1
                    evicted_bytes += size
            if evicted:
                self._count("cache.evicted", evicted)
                self._count("cache.evicted_bytes", evicted_bytes)
            if self.metrics is not None:
                self.metrics.gauge(
                    "cache.bytes", "live result-store bytes"
                ).set(total)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every live entry (plus any ``*.tmp`` debris crashed
        writers left behind, in any shard); returns the number of
        entries removed. Quarantined corpses are kept for auditing."""
        n = 0
        for path in list(self._entries()) + list(self.root.glob("*.json")):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        for tmp in self.root.rglob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
        return n
