"""Persistent on-disk result cache.

Repeated figure/benchmark runs re-simulate the identical 495-point
cross product; this cache makes warm reruns near-free. One JSON file
per simulated point under a cache root (``.repro_cache/`` by
convention), content-addressed by

``(code_version, arch, workload, matrix, config_key, reorder, block_size)``

where ``config_key`` is :meth:`SparsepipeConfig.cache_key` (a frozen
content hash, never ``id()``) and ``code_version`` is this module's
:data:`CODE_VERSION` — bump it whenever simulator semantics change and
every stale entry misses. Each file stores its full key alongside the
serialized :class:`~repro.arch.stats.SimResult`, so hash collisions
and hand-edited files degrade to a miss, never a wrong result. Entries
may also carry a :class:`~repro.obs.manifest.RunManifest` recording
the producing run's provenance; :meth:`ResultCache.get_entry` returns
it marked ``from_cache=True`` so served and fresh results stay
distinguishable. Writes
go through a per-process temp file and an atomic rename, so concurrent
writers (e.g. ``simulate_many`` fan-out parents) cannot tear entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.arch.stats import SimResult
from repro.obs.manifest import RunManifest

#: Bump whenever a change to the simulators alters results — every
#: cache entry written under another version becomes a miss.
CODE_VERSION = "1"


@dataclass(frozen=True)
class CacheEntry:
    """One cache hit: the result plus its (optional) run manifest."""

    result: SimResult
    manifest: Optional[RunManifest] = None


class ResultCache:
    """Directory of per-point SimResult JSON documents."""

    def __init__(
        self,
        root: Union[str, Path],
        code_version: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Resolved at construction so tests can monkeypatch CODE_VERSION.
        self.code_version = str(
            CODE_VERSION if code_version is None else code_version
        )

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _entry(self, arch, workload, matrix, config_key, reorder, block_size):
        key = json.dumps(
            [
                self.code_version,
                str(arch),
                str(workload),
                str(matrix),
                str(config_key),
                str(reorder),
                str(block_size),
            ]
        )
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        path = self.root / f"{arch}-{workload}-{matrix}-{digest}.json"
        return path, key

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(
        self, arch, workload, matrix, config_key, reorder, block_size
    ) -> Optional[SimResult]:
        """Cached result for one point, or None on any kind of miss."""
        entry = self.get_entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        return None if entry is None else entry.result

    def get_entry(
        self, arch, workload, matrix, config_key, reorder, block_size
    ) -> Optional["CacheEntry"]:
        """Cached result *with provenance*: the stored run manifest is
        returned marked ``from_cache=True`` (``None`` for entries
        written before manifests existed, or by manifest-less callers).
        """
        path, key = self._entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("key") != key:
            return None
        try:
            result = SimResult.from_dict(doc["result"])
        except (KeyError, TypeError, ValueError):
            return None
        manifest = None
        if doc.get("manifest") is not None:
            try:
                manifest = RunManifest.from_dict(
                    doc["manifest"]
                ).served_from_cache()
            except (KeyError, TypeError, ValueError):
                manifest = None  # auditing data is best-effort
        return CacheEntry(result=result, manifest=manifest)

    def put(
        self, arch, workload, matrix, config_key, reorder, block_size,
        result: SimResult, manifest: Optional[RunManifest] = None,
    ) -> Path:
        """Store one result; atomic against concurrent readers/writers."""
        path, key = self._entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        doc = {
            "key": key,
            "result": result.to_dict(),
            "manifest": None if manifest is None else manifest.to_dict(),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        tmp.replace(path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
