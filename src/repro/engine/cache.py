"""Persistent on-disk result cache.

Repeated figure/benchmark runs re-simulate the identical 495-point
cross product; this cache makes warm reruns near-free. One JSON file
per simulated point under a cache root (``.repro_cache/`` by
convention), content-addressed by

``(code_version, arch, workload, matrix, config_key, reorder, block_size)``

where ``config_key`` is :meth:`SparsepipeConfig.cache_key` (a frozen
content hash, never ``id()``) and ``code_version`` is this module's
:data:`CODE_VERSION` — bump it whenever simulator semantics change and
every stale entry misses. Each file stores its full key alongside the
serialized :class:`~repro.arch.stats.SimResult`, so hash collisions
and hand-edited files degrade to a miss, never a wrong result — and the
offending file is **quarantined** (moved under ``quarantine/`` with an
``SP604`` diagnostic in :attr:`ResultCache.diagnostics`), so a corrupt
entry can never be silently re-missed forever: the next ``put``
re-populates the slot. Entries
may also carry a :class:`~repro.obs.manifest.RunManifest` recording
the producing run's provenance; :meth:`ResultCache.get_entry` returns
it marked ``from_cache=True`` so served and fresh results stay
distinguishable. Writes
go through a per-process, per-write temp file (pid plus a process-wide
counter, so concurrent threads of one process cannot tear each
other's temp) and an atomic rename, so concurrent writers (e.g.
``simulate_many`` fan-out parents) cannot tear entries;
:meth:`ResultCache.clear` also sweeps the ``*.tmp`` debris a crashed
writer may have left behind.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.arch.stats import SimResult
from repro.errors import Diagnostic
from repro.obs.manifest import RunManifest
from repro.resilience.faults import maybe_corrupt_file

#: Distinguishes temp files of concurrent threads in one process.
_TMP_COUNTER = itertools.count()

#: Bump whenever a change to the simulators alters results — every
#: cache entry written under another version becomes a miss.
CODE_VERSION = "1"


@dataclass(frozen=True)
class CacheEntry:
    """One cache hit: the result plus its (optional) run manifest."""

    result: SimResult
    manifest: Optional[RunManifest] = None


class ResultCache:
    """Directory of per-point SimResult JSON documents."""

    def __init__(
        self,
        root: Union[str, Path],
        code_version: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Resolved at construction so tests can monkeypatch CODE_VERSION.
        self.code_version = str(
            CODE_VERSION if code_version is None else code_version
        )
        #: SP604 quarantine diagnostics since the last
        #: :meth:`pop_diagnostics` (consumers: ExperimentContext
        #: metrics / run manifests).
        self.diagnostics: List[Diagnostic] = []

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry out of the live cache so it misses
        exactly once, and record why."""
        dest = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            path.replace(dest)
        except OSError:
            return  # racing reader already moved it; either outcome is a miss
        self.diagnostics.append(Diagnostic.warning(
            "SP604", f"corrupt cache entry ({reason}) quarantined",
            str(dest),
        ))

    def pop_diagnostics(self) -> List[Diagnostic]:
        """Quarantine diagnostics accumulated so far (cleared on read)."""
        out = list(self.diagnostics)
        self.diagnostics.clear()
        return out

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _entry(self, arch, workload, matrix, config_key, reorder, block_size):
        key = json.dumps(
            [
                self.code_version,
                str(arch),
                str(workload),
                str(matrix),
                str(config_key),
                str(reorder),
                str(block_size),
            ]
        )
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        path = self.root / f"{arch}-{workload}-{matrix}-{digest}.json"
        return path, key

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(
        self, arch, workload, matrix, config_key, reorder, block_size
    ) -> Optional[SimResult]:
        """Cached result for one point, or None on any kind of miss."""
        entry = self.get_entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        return None if entry is None else entry.result

    def get_entry(
        self, arch, workload, matrix, config_key, reorder, block_size
    ) -> Optional["CacheEntry"]:
        """Cached result *with provenance*: the stored run manifest is
        returned marked ``from_cache=True`` (``None`` for entries
        written before manifests existed, or by manifest-less callers).
        """
        path, key = self._entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        maybe_corrupt_file("cache.get", path.name, path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None  # a plain miss, nothing to quarantine
        except OSError:
            self._quarantine(path, "unreadable file")
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if not isinstance(doc, dict) or doc.get("key") != key:
            self._quarantine(path, "key mismatch")
            return None
        try:
            result = SimResult.from_dict(doc["result"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "undecodable result")
            return None
        manifest = None
        if doc.get("manifest") is not None:
            try:
                manifest = RunManifest.from_dict(
                    doc["manifest"]
                ).served_from_cache()
            except (KeyError, TypeError, ValueError):
                manifest = None  # auditing data is best-effort
        return CacheEntry(result=result, manifest=manifest)

    def put(
        self, arch, workload, matrix, config_key, reorder, block_size,
        result: SimResult, manifest: Optional[RunManifest] = None,
    ) -> Path:
        """Store one result; atomic against concurrent readers/writers."""
        path, key = self._entry(
            arch, workload, matrix, config_key, reorder, block_size
        )
        doc = {
            "key": key,
            "result": result.to_dict(),
            "manifest": None if manifest is None else manifest.to_dict(),
        }
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )
        tmp.write_text(json.dumps(doc, sort_keys=True))
        tmp.replace(path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry (plus any ``*.tmp`` debris crashed
        writers left behind); returns the number of entries removed."""
        n = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        for tmp in self.root.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
        return n
