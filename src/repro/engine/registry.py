"""The architecture registry: one uniform entry point for every model.

Every architecture the evaluation compares — the Sparsepipe pipeline
simulator, the roofline baselines, the CPU/GPU framework models, and
the software-OEI study of Section VIII — registers itself under a short
name with :func:`register_arch`. Consumers (:class:`~repro.experiments.
runner.ExperimentContext`, the CLI, :mod:`repro.arch.sweep`,
:mod:`repro.arch.autotune`) obtain a ready-to-run engine with
:func:`create_engine` instead of hard-coding an ``if/elif`` chain per
model, so adding a backend is one decorator, not five call-site edits.

Every engine satisfies the :class:`Engine` protocol::

    engine = create_engine("sparsepipe", config)
    engine.prepare(profile, matrix)          # optional warm-up hook
    result = engine.run(profile, matrix, paper_nnz=...)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

try:  # pragma: no cover - always present on >= 3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object

    def runtime_checkable(cls):
        return cls

from repro.errors import ConfigError
from repro.resilience.faults import maybe_raise

if TYPE_CHECKING:  # pragma: no cover
    from repro.arch.config import SparsepipeConfig
    from repro.arch.stats import SimResult


@runtime_checkable
class Engine(Protocol):
    """What every architecture model must provide.

    ``prepare`` derives the structure-dependent load plan from a
    (preprocessed) matrix — the part a caller may want to do once and
    inspect; ``run`` times the workload over it and returns a
    :class:`~repro.arch.stats.SimResult`. ``paper_nnz`` enables the
    per-matrix capacity/overhead scaling of DESIGN.md.
    """

    def prepare(self, profile, matrix):
        ...  # pragma: no cover

    def run(self, profile, matrix, paper_nnz=None) -> "SimResult":
        ...  # pragma: no cover


@dataclass(frozen=True)
class ArchSpec:
    """One registered architecture.

    ``observable`` marks engines whose ``run`` accepts an
    ``observers=`` sequence and streams instrumentation events
    (:mod:`repro.engine.instrumentation`) — the ones ``python -m repro
    trace`` and the observability layer (:mod:`repro.obs`) can attach
    timelines and live metrics to.
    """

    name: str
    factory: Callable[[Optional["SparsepipeConfig"]], Engine]
    takes_config: bool
    description: str = ""
    observable: bool = False


_REGISTRY: Dict[str, ArchSpec] = {}
_BUILTIN_LOADED = False

#: Display order of the built-in architectures (matching the paper's
#: evaluation narrative). Third-party registrations list after these,
#: in registration order — import order must not change the CLI.
_BUILTIN_ORDER = ("sparsepipe", "ideal", "oracle", "cpu", "gpu", "software_oei")


def register_arch(
    name: str, *, takes_config: bool = True, description: str = "",
    observable: bool = False,
) -> Callable[[type], type]:
    """Class decorator registering an architecture model.

    ``takes_config=True`` engines are constructed as ``cls(config)``
    (or ``cls()`` when no config is supplied); ``takes_config=False``
    engines are constructed as ``cls()`` and the config is ignored —
    the CPU/GPU framework models carry their own hardware constants.
    ``observable=True`` declares that ``run`` accepts ``observers=``
    and streams the instrumentation event contract.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"architecture name must be a non-empty string, got {name!r}")

    def decorate(cls: type) -> type:
        if name in _REGISTRY:
            raise ConfigError(f"architecture {name!r} is already registered")
        if takes_config:
            def factory(config=None, _cls=cls):
                return _cls() if config is None else _cls(config)
        else:
            def factory(config=None, _cls=cls):
                return _cls()
        _REGISTRY[name] = ArchSpec(
            name=name,
            factory=factory,
            takes_config=takes_config,
            description=description or (cls.__doc__ or "").strip().splitlines()[0],
            observable=observable,
        )
        return cls

    return decorate


def _ensure_builtin() -> None:
    """Import every module that self-registers a built-in architecture.

    Lazy so that ``repro.engine`` itself stays import-cycle-free: the
    model modules import :func:`register_arch` from here.
    """
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    import repro.arch.simulator            # noqa: F401  (sparsepipe)
    import repro.baselines.ideal_accelerator  # noqa: F401  (ideal)
    import repro.baselines.oracle          # noqa: F401  (oracle)
    import repro.baselines.cpu             # noqa: F401  (cpu)
    import repro.baselines.gpu             # noqa: F401  (gpu)
    import repro.baselines.software_oei    # noqa: F401  (software_oei)


def arch_names() -> Tuple[str, ...]:
    """Registered architecture names: built-ins in canonical order,
    then third-party registrations in registration order."""
    _ensure_builtin()
    builtin = [n for n in _BUILTIN_ORDER if n in _REGISTRY]
    extra = [n for n in _REGISTRY if n not in _BUILTIN_ORDER]
    return tuple(builtin + extra)


def get_arch(name: str) -> ArchSpec:
    """Look up one registered architecture; raises ConfigError if unknown."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown architecture {name!r}; expected one of {arch_names()}"
        ) from None


def create_engine(name: str, config: Optional["SparsepipeConfig"] = None) -> Engine:
    """Instantiate a ready-to-run engine for one architecture."""
    spec = get_arch(name)
    return spec.factory(config)


#: Sentinel distinguishing "caller passed no observers argument" from an
#: explicit ``observers=None`` (which asks for the engine's default
#: step-trace observer and therefore bandwidth samples).
_OBSERVERS_UNSET = object()


def _default_backend() -> str:
    """The documented backend default — read from ``SparsepipeConfig``
    itself so the config stays the single source of truth (lazy import:
    the registry must not import arch modules at module scope)."""
    from repro.arch.config import SparsepipeConfig

    return SparsepipeConfig.backend


def run_engine(
    name: str,
    config: Optional["SparsepipeConfig"],
    profile,
    matrix,
    paper_nnz: Optional[int] = None,
    observers=_OBSERVERS_UNSET,
) -> "SimResult":
    """Run one architecture on one point — the *only* backend-selection
    point, observed or not.

    Every caller routes through here (sweeps, the trace CLI,
    ``capture_run``, the fig drivers), so the ``engine.run`` chaos site
    covers observed and unobserved runs alike, and backend selection is
    never made twice. With ``observers`` given, the request is forwarded
    to the engine verbatim — the vectorized backend synthesizes the
    event stream post-hoc at full speed, so observers never force a
    downgrade; asking a non-observable architecture for observers raises
    SP907 instead of being silently ignored. Without ``observers``,
    observable engines on the vectorized backend run with ``observers=()``
    (the zero-observer contract — ``bandwidth_samples=[]``) and
    everything else takes the engine's plain ``run``. The backend
    default comes from ``SparsepipeConfig`` — config objects missing the
    attribute inherit the documented ``"vectorized"`` default, never a
    silent reference-loop pin.
    """
    spec = get_arch(name)
    # Chaos-test site: lets the fault-injection harness prove the
    # sweep-level retry path without a purpose-built flaky engine.
    maybe_raise("engine.run", f"{name}/{getattr(profile, 'name', '?')}")
    engine = spec.factory(config)
    cfg = config if config is not None else getattr(engine, "config", None)
    if observers is not _OBSERVERS_UNSET:
        if not spec.observable:
            raise ConfigError(
                f"[SP907] architecture {name!r} is not observable: it has "
                "no event stream to honor an observers= request with "
                f"(observable architectures: "
                f"{tuple(n for n in arch_names() if get_arch(n).observable)})"
            )
        return engine.run(
            profile, matrix, paper_nnz=paper_nnz, observers=observers
        )
    if (
        spec.observable
        and cfg is not None
        and getattr(cfg, "backend", _default_backend()) == "vectorized"
    ):
        return engine.run(profile, matrix, paper_nnz=paper_nnz, observers=())
    return engine.run(profile, matrix, paper_nnz=paper_nnz)
