"""The spool backend: one subprocess per job, over a spool directory.

The SSH-free stand-in for a remote/cluster backend (the reframe-style
launch / wait / stream-logs / delete lifecycle): every submitted job
is serialized to a **job file** in the spool directory, executed by a
fresh ``python -m repro worker <jobfile>`` process, and its artifacts
are reattached on collect. Per job the directory holds:

``<job_id>.job``
    The pickled payload: ``{"job_id", "index", "label", "fn", "item",
    "initializer", "initargs", "plan"}`` — ``plan`` ships the parent's
    active :class:`~repro.resilience.faults.FaultPlan` so chaos
    injection crosses the process boundary exactly like the pool
    backend's fork does.
``<job_id>.out``
    The worker's pickled verdict: ``{"status": "done"|"failed",
    "result" | "exception"}``; written tmp-rename, so a half-written
    verdict is indistinguishable from a dead worker.
``<job_id>.manifest.json``
    Backend-side provenance (status, error, worker pid), reattached
    as ``job.manifest``.
``<job_id>.log``
    The worker's real stdout+stderr (the process writes it directly;
    no in-worker capture), reattached via ``collect_logs``.

Failure semantics: an exception inside ``fn`` is a *result* (the
worker exits 0 with a ``failed`` verdict); a worker that dies without
a verdict — killed, OOM, crashed mid-pickle — is a substrate
degradation: SP601 is recorded and the job's first attempt completes
in-process, mirroring the pool backend's broken-pool path. A worker
exceeding ``timeout_s`` is killed by the parent and fails with
:class:`~repro.errors.WatchdogTimeout` (SP606).

Workers see ``REPRO_SPOOL_WORKER=1`` in their environment — tests use
it to misbehave only on the substrate side.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import Diagnostic, WatchdogTimeout
from repro.resilience import faults
from repro.scheduler.base import (
    DONE,
    FAILED,
    PENDING,
    Scheduler,
    SchedulerJob,
    register_scheduler,
)

#: Environment variable naming a directory to keep spool job artifacts
#: under (CI uploads it on failure); per-run spool dirs are created
#: inside it and never deleted.
SPOOL_DIR_ENV = "REPRO_SPOOL_DIR"

#: Set in every spool worker's environment.
WORKER_ENV = "REPRO_SPOOL_WORKER"

#: Parent-side wait quantum per running worker (bounded, not a poll
#: sleep: the wait returns the instant the process exits).
_WAIT_SLICE_S = 0.05


@register_scheduler
class SpoolScheduler(Scheduler):
    """Subprocess-per-job execution over a spool directory."""

    name = "spool"
    distributed = True

    def __init__(
        self,
        spool_dir: Optional[Union[str, Path]] = None,
        keep: Optional[bool] = None,
        **options,
    ) -> None:
        super().__init__(**options)
        env_root = os.environ.get(SPOOL_DIR_ENV)
        if spool_dir is not None:
            self.spool_dir = Path(spool_dir)
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            self._keep = True if keep is None else keep
        elif env_root:
            Path(env_root).mkdir(parents=True, exist_ok=True)
            self.spool_dir = Path(tempfile.mkdtemp(
                prefix="spool-", dir=env_root))
            self._keep = True if keep is None else keep
        else:
            self.spool_dir = Path(tempfile.mkdtemp(prefix="repro-spool-"))
            self._keep = False if keep is None else keep

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def submit(self, fn, item, index=0, label=None) -> SchedulerJob:
        job = super().submit(fn, item, index=index, label=label)
        self._write_job_file(job)
        return job

    def shutdown(self) -> None:
        if not self._keep:
            shutil.rmtree(self.spool_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def _drive(self, job: SchedulerJob) -> None:
        queue = [j for j in self._jobs if j.status == PENDING]
        slots = self.max_workers or (os.cpu_count() or 1)
        running: List[tuple] = []
        while queue or running:
            while queue and len(running) < max(1, slots):
                nxt = queue.pop(0)
                running.append((nxt,) + self._launch(nxt))
            still_running: List[tuple] = []
            for active, proc, log_handle, started in running:
                timed_out = False
                try:
                    proc.wait(timeout=_WAIT_SLICE_S)
                except subprocess.TimeoutExpired:
                    if (self.timeout_s is not None
                            and time.monotonic() - started > self.timeout_s):
                        proc.kill()
                        proc.wait(timeout=30.0)
                        timed_out = True
                    else:
                        still_running.append(
                            (active, proc, log_handle, started))
                        continue
                log_handle.close()
                self._collect(active, proc, timed_out=timed_out)
            running = still_running

    def _launch(self, job: SchedulerJob) -> tuple:
        env = dict(os.environ)
        env[WORKER_ENV] = "1"
        # The worker must resolve the same library the parent runs.
        lib_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            lib_root if not existing
            else lib_root + os.pathsep + existing)
        log_handle = self._path(job, ".log").open("wb")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             str(self._path(job, ".job"))],
            stdout=log_handle, stderr=subprocess.STDOUT, env=env,
        )
        return (proc, log_handle, time.monotonic())

    def _collect(self, job: SchedulerJob, proc, timed_out: bool) -> None:
        """Reattach the worker's verdict, manifest, and log."""
        log_path = self._path(job, ".log")
        if log_path.exists():
            text = log_path.read_text(encoding="utf-8", errors="replace")
            if text:
                job.logs.append(text)
        manifest_path = self._path(job, ".manifest.json")
        if manifest_path.exists():
            try:
                job.manifest = json.loads(manifest_path.read_text())
            except ValueError:
                job.manifest = None
        if timed_out:
            job.exception = WatchdogTimeout(
                f"item exceeded the {self.timeout_s}s watchdog budget",
                diagnostics=(Diagnostic.error(
                    "SP606",
                    f"watchdog expired after {self.timeout_s}s",
                    job.label,
                ),),
            )
            job.status = FAILED
            return
        verdict = self._read_verdict(job)
        if verdict is None:
            # No verdict: the worker died (killed, OOM, crashed). Same
            # degradation contract as a broken pool — SP601, then the
            # first attempt completes in the parent.
            self._degrade(
                f"spool worker for {job.job_id} died "
                f"(exit {proc.returncode}) without a verdict; "
                "completing the job in-process")
            self._execute_inprocess(job)
            return
        if verdict.get("status") == "done":
            job.result = verdict.get("result")
            job.status = DONE
        else:
            exc = verdict.get("exception")
            if not isinstance(exc, BaseException):
                exc = RuntimeError(str(verdict.get("error", "worker failed")))
            job.exception = exc
            job.status = FAILED

    def _read_verdict(self, job: SchedulerJob) -> Optional[dict]:
        out_path = self._path(job, ".out")
        if not out_path.exists():
            return None
        try:
            verdict = pickle.loads(out_path.read_bytes())
        except Exception:
            return None
        return verdict if isinstance(verdict, dict) else None

    # ------------------------------------------------------------------
    # Job files
    # ------------------------------------------------------------------
    def _path(self, job: SchedulerJob, suffix: str) -> Path:
        return self.spool_dir / f"{job.job_id}{suffix}"

    def _write_job_file(self, job: SchedulerJob) -> None:
        payload = {
            "job_id": job.job_id,
            "index": job.index,
            "label": job.label,
            "fn": job.fn,
            "item": job.item,
            "initializer": self.initializer,
            "initargs": self.initargs,
            "plan": faults.active_plan(),
        }
        path = self._path(job, ".job")
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(payload))
        tmp.replace(path)


# ----------------------------------------------------------------------
# The worker side: ``python -m repro worker <jobfile>``
# ----------------------------------------------------------------------
def run_worker(job_file: Union[str, Path]) -> int:
    """Execute one spooled job file and write its verdict + manifest
    beside it (both tmp-rename: the parent never reads a torn file).

    Exit code 0 covers both verdicts — a ``failed`` verdict is a
    *result*, not a dead worker; nonzero exits are reserved for real
    worker death (which the parent degrades on).
    """
    path = Path(job_file)
    payload = pickle.loads(path.read_bytes())
    faults.mark_worker()
    if payload.get("plan") is not None:
        faults.install(payload["plan"])
    if payload.get("initializer") is not None:
        payload["initializer"](*payload.get("initargs", ()))
    try:
        result = payload["fn"](payload["item"])
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(repr(exc))
        verdict = {"status": "failed", "exception": exc, "error": repr(exc)}
    else:
        verdict = {"status": "done", "result": result}
    out_path = path.with_suffix(".out")
    tmp = out_path.with_name(f"{out_path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(pickle.dumps(verdict))
    tmp.replace(out_path)
    manifest = {
        "job_id": payload.get("job_id"),
        "index": payload.get("index"),
        "label": payload.get("label"),
        "status": verdict["status"],
        "error": verdict.get("error"),
        "backend": "spool",
        "worker_pid": os.getpid(),
    }
    manifest_path = path.with_suffix(".manifest.json")
    tmp = manifest_path.with_name(f"{manifest_path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(manifest, sort_keys=True))
    tmp.replace(manifest_path)
    return 0
