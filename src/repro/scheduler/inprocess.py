"""The in-process backend: serial, deterministic, debuggable.

Every job runs in the submitting process, one ``poll`` at a time, in
submission order — no pickling, no forks, breakpoints work. This is
the reference implementation of the protocol semantics: the other
backends must be observationally equivalent to it for pure functions
(the conformance suite enforces exactly that).

Driving is *lazy and per-job*: ``poll(job)`` executes that job and
nothing else, so an ``on_error="raise"`` fan-out stops at the first
failure without touching later items — the historical serial
short-circuit behavior.
"""

from __future__ import annotations

from repro.scheduler.base import Scheduler, SchedulerJob, register_scheduler


@register_scheduler
class InprocessScheduler(Scheduler):
    """Serial execution in the submitting process."""

    name = "inprocess"
    distributed = False

    def _drive(self, job: SchedulerJob) -> None:
        self._execute_inprocess(job)
