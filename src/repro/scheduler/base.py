"""The scheduler protocol: one job-lifecycle contract, many substrates.

A :class:`Scheduler` owns the *execution substrate* of a fan-out —
where each job's first attempt physically runs — behind five verbs:

``submit``
    Enqueue one ``(fn, item)`` as a :class:`SchedulerJob` (PENDING).
    Nothing executes yet; submission is cheap and never fails on the
    item's behalf.
``poll``
    Drive the substrate far enough to know the job's status and
    return it. A terminal status (DONE / FAILED / CANCELLED) means
    ``result`` / ``exception`` / ``logs`` are populated.
``collect_logs``
    Everything the job printed (stdout + stderr), reattached as one
    string — pool workers capture it in-worker, spool workers stream
    it to a ``.log`` file that is read back on collect.
``cancel``
    Withdraw a PENDING job (True). A job that already ran — or is
    running — cannot be abandoned (False): simulators are not
    interruptible mid-point.
``shutdown``
    Release the substrate (pools, spool directories).

The **policy layer** — retries (SP602), skip/raise (SP603), watchdog
(SP606), degrade accounting (SP601) — lives here in
:func:`run_fanout` and is deliberately *backend-agnostic*: every
re-attempt runs in the submitting process via
:meth:`Scheduler.rerun`, so the at-most-once-per-process fault
semantics of :mod:`repro.resilience.faults` hold identically on every
backend, and the chaos suite doubles as the scheduler-conformance
oracle. Backends supply only the first attempt.

Backends register themselves with :func:`register_scheduler` and are
resolved by name through :func:`create_scheduler`; see
``docs/scheduling.md`` for the backend matrix.
"""

from __future__ import annotations

import io
import itertools
import threading
from abc import ABC, abstractmethod
from contextlib import redirect_stderr, redirect_stdout
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Type, TypeVar,
    Union,
)

from repro.errors import ConfigError, Diagnostic, WatchdogTimeout

T = TypeVar("T")

#: Valid ``on_error`` policies of :func:`run_fanout`.
POLICIES = ("raise", "skip", "retry")

#: Default bounded re-attempts under ``on_error="retry"``.
DEFAULT_RETRIES = 2

#: Job lifecycle states. PENDING jobs may be cancelled; the other
#: states are terminal except RUNNING (transient, substrate-side).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclass(frozen=True)
class PointFailure:
    """One item that exhausted its attempts."""

    index: int
    item: Any
    error: str
    attempts: int
    diagnostic: Diagnostic


@dataclass
class FanoutOutcome:
    """Everything one supervised fan-out produced."""

    #: Per-input-slot results; ``None`` where the item failed.
    results: List[Any] = field(default_factory=list)
    #: Items that exhausted their attempts (empty under ``"raise"``).
    failures: List[PointFailure] = field(default_factory=list)
    #: Retry diagnostics (SP602) by item index — non-empty entries mean
    #: the item eventually succeeded but not on its first attempt.
    retried: Dict[int, List[Diagnostic]] = field(default_factory=dict)
    #: Fan-out-wide diagnostics (SP601 substrate degradations).
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: True when the substrate degraded and attempts ran in-process.
    pool_broken: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_indices(self) -> Dict[int, PointFailure]:
        return {f.index: f for f in self.failures}


@dataclass
class SchedulerJob:
    """One submitted unit of work, owned by exactly one scheduler."""

    job_id: str
    index: int
    fn: Callable
    item: Any
    label: str
    status: str = PENDING
    result: Any = None
    #: The exception behind a FAILED status (always set on failure —
    #: spool workers that cannot pickle theirs send a wrapped repr).
    exception: Optional[BaseException] = None
    #: Captured stdout/stderr fragments, reattached by collect_logs.
    logs: List[str] = field(default_factory=list)
    #: Backend-side provenance (the spool backend reattaches the job
    #: manifest written by its worker process here).
    manifest: Optional[Dict[str, Any]] = None

    @property
    def error(self) -> Optional[str]:
        return None if self.exception is None else str(self.exception)


def _call_with_watchdog(fn: Callable[[T], Any], item: T,
                        timeout_s: Optional[float]) -> Any:
    """Run one item, bounded by a watchdog thread when ``timeout_s``
    is set. A timed-out attempt raises :class:`WatchdogTimeout`; the
    stuck thread is a daemon and cannot block interpreter exit."""
    if timeout_s is None:
        return fn(item)
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = fn(item)
        except BaseException as exc:  # re-raised in the caller below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise WatchdogTimeout(
            f"item exceeded the {timeout_s}s watchdog budget",
            diagnostics=(Diagnostic.error(
                "SP606", f"watchdog expired after {timeout_s}s",
            ),),
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


class Scheduler(ABC):
    """One execution substrate behind the five-verb protocol.

    Every backend shares the constructor surface (``max_workers``,
    ``initializer``/``initargs``, ``chunksize``, ``timeout_s``) so the
    policy layer can swap substrates without renegotiating options;
    backend-specific knobs ride on subclasses (the spool backend's
    ``spool_dir``). ``distributed`` tells callers whether ``fn`` must
    be picklable (it leaves the submitting process).
    """

    #: Registry name; subclasses override.
    name: str = "abstract"
    #: True when jobs leave the submitting process (fn must pickle).
    distributed: bool = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        initializer: Optional[Callable] = None,
        initargs: Sequence = (),
        chunksize: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.max_workers = max_workers
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.chunksize = chunksize
        self.timeout_s = timeout_s
        #: Substrate degradations (SP601) drained by the policy layer.
        self._diagnostics: List[Diagnostic] = []
        self.degraded = False
        self._ids = itertools.count(1)
        self._jobs: List[SchedulerJob] = []
        self._initialized = False

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, item: Any, index: int = 0,
               label: Optional[str] = None) -> SchedulerJob:
        """Enqueue one ``(fn, item)``; returns the PENDING job."""
        job = SchedulerJob(
            job_id=f"{self.name}-{next(self._ids):06d}",
            index=index, fn=fn, item=item,
            label=label if label is not None else repr(item),
        )
        self._jobs.append(job)
        return job

    def poll(self, job: SchedulerJob) -> str:
        """Drive the substrate until ``job``'s status is known."""
        if job.status == PENDING:
            self._drive(job)
        return job.status

    def collect_logs(self, job: SchedulerJob) -> str:
        """Everything the job printed, as one reattached string."""
        return "".join(job.logs)

    def cancel(self, job: SchedulerJob) -> bool:
        """Withdraw a PENDING job; False once it ran (or is running)."""
        if job.status != PENDING:
            return False
        job.status = CANCELLED
        return True

    def shutdown(self) -> None:
        """Release the substrate. Idempotent; the base class holds no
        external resources."""

    # ------------------------------------------------------------------
    # Policy-layer hooks
    # ------------------------------------------------------------------
    def rerun(self, job: SchedulerJob) -> None:
        """Re-attempt one failed job **in the submitting process** —
        uniform across backends so retry semantics (and the fault
        harness's per-process at-most-once firing) never depend on the
        substrate."""
        job.status = PENDING
        job.result = None
        job.exception = None
        self._execute_inprocess(job)

    def drain_diagnostics(self) -> List[Diagnostic]:
        """Substrate diagnostics (SP601) accumulated since last drain."""
        drained, self._diagnostics = self._diagnostics, []
        return drained

    # ------------------------------------------------------------------
    # Shared machinery for subclasses
    # ------------------------------------------------------------------
    @abstractmethod
    def _drive(self, job: SchedulerJob) -> None:
        """Execute enough pending work for ``job`` to be terminal."""

    def _degrade(self, message: str) -> None:
        self.degraded = True
        self._diagnostics.append(Diagnostic.warning("SP601", message))

    def _ensure_worker_init(self) -> None:
        """Run the caller's initializer once in this process (the
        in-process attempts are all siblings of the submitter)."""
        if self._initialized:
            return
        self._initialized = True
        if self.initializer is not None:
            self.initializer(*self.initargs)

    def _execute_inprocess(self, job: SchedulerJob) -> None:
        """Run one job here, under the watchdog, capturing output."""
        self._ensure_worker_init()
        job.status = RUNNING
        buf = io.StringIO()
        try:
            with redirect_stdout(buf), redirect_stderr(buf):
                result = _call_with_watchdog(job.fn, job.item, self.timeout_s)
        except Exception as exc:
            job.exception = exc
            job.status = FAILED
        else:
            job.result = result
            job.status = DONE
        if buf.getvalue():
            job.logs.append(buf.getvalue())


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Scheduler]] = {}


def register_scheduler(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Class decorator: publish a backend under ``cls.name``."""
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_backends() -> None:
    """Import the built-in backends (registration is import-driven);
    deferred so ``base`` never imports its own subclasses at load."""
    from repro.scheduler import inprocess, localpool, spool  # noqa: F401


def scheduler_names() -> Sequence[str]:
    _ensure_backends()
    return tuple(sorted(_REGISTRY))


def create_scheduler(name: str, **options: Any) -> Scheduler:
    """Instantiate a backend by registry name."""
    _ensure_backends()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown scheduler backend {name!r}; "
            f"expected one of {scheduler_names()}")
    return cls(**options)


def is_distributed(scheduler: Union[str, Scheduler]) -> bool:
    """Whether jobs leave the submitting process (fn must pickle)."""
    if isinstance(scheduler, Scheduler):
        return scheduler.distributed
    _ensure_backends()
    cls = _REGISTRY.get(str(scheduler))
    if cls is None:
        raise ConfigError(
            f"unknown scheduler backend {scheduler!r}; "
            f"expected one of {scheduler_names()}")
    return cls.distributed


# ----------------------------------------------------------------------
# The backend-agnostic policy driver
# ----------------------------------------------------------------------
def _count(metrics, name: str, n: int = 1) -> None:
    if metrics is not None and n:
        metrics.counter(name).inc(n)


def run_fanout(
    scheduler: Scheduler,
    fn: Callable[[T], Any],
    items: Iterable[T],
    on_error: str = "raise",
    retries: int = DEFAULT_RETRIES,
    labels: Optional[Sequence[str]] = None,
    metrics=None,
) -> FanoutOutcome:
    """Map ``fn`` over ``items`` on ``scheduler`` under the supervised
    failure policy; the backend-independent core of
    :func:`repro.resilience.supervisor.supervised_map`.

    First attempts run on the scheduler's substrate; every re-attempt
    (``on_error="retry"``) runs in the submitting process via
    :meth:`Scheduler.rerun`. Order-preserving and, for pure ``fn``,
    bit-identical to a serial run regardless of backend or
    degradation path. ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the
    ``scheduler.*`` counters when given.
    """
    if on_error not in POLICIES:
        raise ValueError(
            f"on_error must be one of {POLICIES}, got {on_error!r}")
    items = list(items)
    outcome = FanoutOutcome(results=[None] * len(items))
    if not items:
        return outcome
    jobs = []
    for index, item in enumerate(items):
        label = labels[index] if labels else repr(item)
        jobs.append(scheduler.submit(fn, item, index=index, label=label))
    _count(metrics, "scheduler.submitted", len(jobs))
    _count(metrics, f"scheduler.backend.{scheduler.name}")
    budget = 1 + (retries if on_error == "retry" else 0)
    for job in jobs:
        status = scheduler.poll(job)
        attempt = 1
        while status == FAILED and attempt < budget:
            outcome.retried.setdefault(job.index, []).append(
                Diagnostic.warning(
                    "SP602",
                    f"attempt {attempt}/{budget} failed "
                    f"({job.error}); retrying", job.label,
                ))
            _count(metrics, "scheduler.retries")
            scheduler.rerun(job)
            status = scheduler.poll(job)
            attempt += 1
        if status == DONE:
            outcome.results[job.index] = job.result
            _count(metrics, "scheduler.completed")
        elif status == FAILED:
            _count(metrics, "scheduler.failed")
            if on_error == "raise":
                _absorb_substrate(scheduler, outcome, metrics)
                raise job.exception
            diag = Diagnostic.error(
                "SP603",
                f"failed after {attempt} attempt(s): {job.error}", job.label,
            )
            outcome.failures.append(PointFailure(
                index=job.index, item=job.item, error=repr(job.exception),
                attempts=attempt, diagnostic=diag,
            ))
        elif status == CANCELLED:
            _count(metrics, "scheduler.cancelled")
    _absorb_substrate(scheduler, outcome, metrics)
    return outcome


def _absorb_substrate(scheduler: Scheduler, outcome: FanoutOutcome,
                      metrics) -> None:
    drained = scheduler.drain_diagnostics()
    outcome.diagnostics.extend(drained)
    outcome.pool_broken = outcome.pool_broken or scheduler.degraded
    _count(metrics, "scheduler.degraded", len(drained))
