"""Pluggable execution substrates behind one job-lifecycle protocol.

``submit / poll / collect_logs / cancel / shutdown`` — see
:mod:`repro.scheduler.base` for the contract and ``docs/scheduling.md``
for the backend matrix (``inprocess`` / ``localpool`` / ``spool``).
"""

from repro.scheduler.base import (
    CANCELLED,
    DEFAULT_RETRIES,
    DONE,
    FAILED,
    FanoutOutcome,
    PENDING,
    POLICIES,
    PointFailure,
    RUNNING,
    Scheduler,
    SchedulerJob,
    create_scheduler,
    is_distributed,
    register_scheduler,
    run_fanout,
    scheduler_names,
)
from repro.scheduler.inprocess import InprocessScheduler
from repro.scheduler.localpool import LocalPoolScheduler, pool_chunksize
from repro.scheduler.spool import SpoolScheduler, run_worker

__all__ = [
    "CANCELLED",
    "DEFAULT_RETRIES",
    "DONE",
    "FAILED",
    "FanoutOutcome",
    "InprocessScheduler",
    "LocalPoolScheduler",
    "PENDING",
    "POLICIES",
    "PointFailure",
    "RUNNING",
    "Scheduler",
    "SchedulerJob",
    "SpoolScheduler",
    "create_scheduler",
    "is_distributed",
    "pool_chunksize",
    "register_scheduler",
    "run_fanout",
    "run_worker",
    "scheduler_names",
]
