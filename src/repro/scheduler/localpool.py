"""The local process-pool backend: ``ProcessPoolExecutor`` behind the
scheduler protocol.

This is the **only** module in the supervised execution stack allowed
to name ``ProcessPoolExecutor`` (selfcheck rule SP914) — the substrate
that used to be hard-coded into ``supervised_map`` and
``parallel_map`` now lives entirely behind the protocol boundary.

Driving is *batched*: the first ``poll`` ships every pending job
through one pool pass. Per-item exceptions are captured in-worker by
the :func:`_pooled_call` wrapper (one raising item no longer kills the
chunked map for its neighbors); a broken pool (worker OOM-killed:
``BrokenProcessPool``) records an SP601 degradation and the remaining
jobs complete in-process. With one pending job or ``max_workers <= 1``
the pool is skipped outright — parallelism would not pay, and the
in-process path keeps the per-item watchdog applicable.
"""

from __future__ import annotations

import io
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import redirect_stderr, redirect_stdout
from typing import List, Optional, Tuple

from repro.resilience import faults
from repro.scheduler.base import (
    DONE,
    FAILED,
    PENDING,
    Scheduler,
    SchedulerJob,
    register_scheduler,
)


def pool_chunksize(n_items: int, max_workers: Optional[int]) -> int:
    """Chunk size giving each worker ~2 chunks for tail-balancing.

    ``ProcessPoolExecutor`` defaults ``max_workers`` to
    ``os.cpu_count()``, so that — not a guess from the item count — is
    the worker count the heuristic must divide by.
    """
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, -(-n_items // (max(1, workers) * 2)))


def _worker_boot(initializer, initargs, plan) -> None:
    """Pool-worker initializer: mark the process as a worker (arms
    ``worker_death`` faults), install the parent's fault plan (fork
    inherits it, spawn would not), then run the caller's init."""
    faults.mark_worker()
    if plan is not None:
        faults.install(plan)
    if initializer is not None:
        initializer(*initargs)


def _pooled_call(payload: Tuple) -> Tuple:
    """In-worker wrapper: run one item, capture its output, and return
    ``("ok", result, log)`` or ``("err", exception, log)`` — so a
    raising item is a *value*, not a dead map iterator."""
    fn, item = payload
    buf = io.StringIO()
    try:
        with redirect_stdout(buf), redirect_stderr(buf):
            result = fn(item)
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(repr(exc))
        return ("err", exc, buf.getvalue())
    return ("ok", result, buf.getvalue())


@register_scheduler
class LocalPoolScheduler(Scheduler):
    """Process-pool execution with in-process degrade."""

    name = "localpool"
    distributed = True

    def _drive(self, job: SchedulerJob) -> None:
        pending = [j for j in self._jobs if j.status == PENDING]
        if len(pending) > 1 and (
            self.max_workers is None or self.max_workers > 1
        ):
            self._pool_pass(pending)
        for tail in pending:
            if tail.status == PENDING:
                self._execute_inprocess(tail)

    def _pool_pass(self, pending: List[SchedulerJob]) -> None:
        """Ship every pending job through one pool map; jobs the pool
        never answered for (break, result-pickling failure, no pool at
        all) stay PENDING for the in-process tail."""
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = pool_chunksize(len(pending), self.max_workers)
        done = 0
        try:
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_worker_boot,
                initargs=(self.initializer, self.initargs,
                          faults.active_plan()),
            ) as pool:
                results = pool.map(
                    _pooled_call,
                    [(j.fn, j.item) for j in pending],
                    chunksize=chunksize,
                )
                try:
                    for job in pending:
                        tag, value, log = next(results)
                        if log:
                            job.logs.append(log)
                        if tag == "ok":
                            job.result = value
                            job.status = DONE
                        else:
                            job.exception = value
                            job.status = FAILED
                        done += 1
                except BrokenProcessPool:
                    self._degrade(
                        f"process pool broke after {done}/{len(pending)} "
                        "item(s) (worker killed?); completing the sweep "
                        "serially in-process")
                except Exception:
                    # A result failed to come back (e.g. unpicklable);
                    # the chunked iterator is dead — the tail re-runs
                    # in-process under the policy layer.
                    pass
        except (OSError, PermissionError, ValueError):
            # No semaphores / fork denied: silent in-process degrade,
            # the historical parallel_map behavior.
            return
