"""Breadth-first search over the And-Or semiring (Table III).

Each level expands the frontier with ``vxm`` under (and, or) and masks
out already-visited vertices; the masking e-wise keeps sub-tensor
dependency, so consecutive level expansions fuse under OEI. Activity
per iteration is the frontier occupancy, which the profile feeds to
the timing models.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.mask import Mask
from repro.graphblas.ops import vxm
from repro.graphblas.vector import Vector
from repro.semiring.semirings import AND_OR
from repro.workloads.base import FunctionalResult, Workload


class BFS(Workload):
    name = "bfs"
    semiring = "and_or"
    domain = "Graph Analytics"

    def __init__(self, source: int = None) -> None:
        #: ``None`` selects the highest-out-degree vertex at run time
        #: (GAP-benchmark style), avoiding degenerate one-level runs.
        self.source = source

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("bfs")
        a = g.matrix("A")
        frontier = g.vector("frontier")
        reached = g.vector("reached")
        visited = g.vector("visited")
        fresh = g.vector("fresh")
        g.vxm("expand", frontier, a, reached, self.semiring)
        # Fused path: keep only unvisited vertices -> next frontier.
        not_visited = g.vector("not_visited")
        g.ewise("invert_visited", "abs_diff", [visited], not_visited, immediate=1.0)
        g.ewise("mask_out", "aril", [not_visited, reached], fresh)
        # Side group: fold the visited update.
        new_visited = g.vector("new_visited")
        g.ewise("mark", "lor", [visited, fresh], new_visited)
        g.carry(fresh, frontier)
        g.carry(new_visited, visited)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        source = params.get("source", self.source)
        if source is None:
            source = int(np.argmax(matrix.row_degrees()))
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range for {n} vertices")
        level = np.full(n, -1, dtype=np.int64)
        level[source] = 0
        frontier = Vector.from_entries(n, [source], [1.0])
        visited = Vector.from_entries(n, [source], [1.0])
        activity = []
        depth = 0
        for depth in range(1, self.max_iterations + 1):
            activity.append(frontier.nvals / n)
            reached = vxm(frontier, matrix, AND_OR, mask=Mask(visited, complement=True))
            idx, _ = reached.entries()
            if idx.size == 0:
                break
            level[idx] = depth
            visited.values[idx] = 1.0
            visited.present[idx] = True
            frontier = reached
        return FunctionalResult(
            output=level.astype(np.float64),
            n_iterations=max(1, len(activity)),
            activity=tuple(activity),
        )
