"""Workload registry: the paper's Table III, in order."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.pagerank import PageRank
from repro.workloads.kcore import KCore
from repro.workloads.bfs import BFS
from repro.workloads.sssp import SSSP
from repro.workloads.kpp import KMeansPlusPlus
from repro.workloads.knn import KNN
from repro.workloads.label_prop import LabelPropagation
from repro.workloads.gcn import GCN
from repro.workloads.solvers import BiCGStab, ConjugateGradient, GMRES


def _build_registry() -> Dict[str, Workload]:
    workloads = (
        PageRank(),
        KCore(),
        BFS(),
        SSSP(),
        KMeansPlusPlus(),
        KNN(),
        LabelPropagation(),
        GCN(),
        GMRES(),
        ConjugateGradient(),
        BiCGStab(),
    )
    return {w.name: w for w in workloads}


#: Singleton instances keyed by Table-III short name.
WORKLOADS: Dict[str, Workload] = _build_registry()


def workload_names() -> List[str]:
    """Table-III order."""
    return list(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a workload; raises with the available names on a miss."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None


def lint_registry(names: List[str] = None) -> Dict[str, "DiagnosticReport"]:
    """Static-analysis report for every (or the named) registered
    workload, keyed by Table-III short name."""
    from repro.analysis.diagnostics import DiagnosticReport  # noqa: F401

    targets = workload_names() if not names else list(names)
    return {name: get_workload(name).lint() for name in targets}
