"""OEI execution bindings for the workloads.

An :class:`OEIBindings` packages everything the functional OEI executor
needs to run a workload's *compiled program* on a real matrix: the dual
CSC/CSR images, the initial vector, and the per-iteration auxiliary
vector / runtime scalar providers. ``Workload.validate_oei`` uses a
binding to prove, numerically, that executing the workload under the
OEI pair schedule is indistinguishable from sequential execution — the
per-workload instantiation of the Section III legality argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.graphblas.matrix import Matrix


@dataclass(frozen=True)
class OEIBindings:
    """Inputs for :func:`repro.oei.executor.run_oei_pairs`.

    ``aux_provider`` / ``scalar_update`` must be pure functions of
    ``(iteration, x_iteration)`` so the reference and OEI runs, which
    call them in the same order, observe identical values.
    """

    csc: CSCMatrix
    csr: CSRMatrix
    x0: np.ndarray
    aux_provider: Callable[[int, np.ndarray], Mapping[str, np.ndarray]]
    scalar_update: Callable[[int, np.ndarray], Mapping[str, float]]


def _no_aux(iteration: int, x: np.ndarray) -> Mapping[str, np.ndarray]:
    return {}


def _no_scalars(iteration: int, x: np.ndarray) -> Mapping[str, float]:
    return {}


def _dual(matrix: Matrix):
    return CSCMatrix.from_coo(matrix.coo), CSRMatrix.from_coo(matrix.coo)


def pagerank_bindings(workload, matrix: Matrix) -> OEIBindings:
    """PageRank: the teleport scalar derives from the *input* vector of
    each iteration (dangling mass), keeping the e-wise chain legal."""
    from repro.workloads.pagerank import normalize_columns_out

    n = matrix.nrows
    link = normalize_columns_out(matrix)
    csc, csr = _dual(link)
    dangling = matrix.row_degrees() == 0
    damping = workload.damping

    def scalar_update(iteration: int, x: np.ndarray) -> Mapping[str, float]:
        return {
            "teleport": (1.0 - damping) / n + damping * float(x[dangling].sum()) / n
        }

    return OEIBindings(csc, csr, np.full(n, 1.0 / n), _no_aux, scalar_update)


def sssp_bindings(workload, matrix: Matrix) -> OEIBindings:
    """SSSP: the carried distance vector is its own auxiliary stream."""
    csc, csr = _dual(matrix)
    n = matrix.nrows
    source = workload.source
    if source is None:
        source = int(np.argmax(matrix.row_degrees()))
    x0 = np.full(n, np.inf)
    x0[source] = 0.0
    return OEIBindings(
        csc, csr, x0, lambda k, x: {"dist": x}, _no_scalars
    )


def kcore_bindings(workload, matrix: Matrix) -> OEIBindings:
    """k-core peel on the 0/1 pattern; the alive flags are the carried
    vector itself."""
    from repro.formats.coo import COOMatrix

    coo = matrix.coo
    pattern = Matrix(COOMatrix(coo.shape, coo.rows, coo.cols, np.ones(coo.nnz)))
    csc, csr = _dual(pattern)
    return OEIBindings(
        csc, csr, np.ones(matrix.nrows),
        lambda k, x: {"alive": x}, _no_scalars,
    )


def label_bindings(workload, matrix: Matrix) -> OEIBindings:
    """Label smoothing: the inverse weighted in-degree is a constant
    auxiliary vector."""
    csc, csr = _dual(matrix)
    n = matrix.nrows
    coo = matrix.coo
    weighted_indeg = np.zeros(n)
    np.add.at(weighted_indeg, coo.cols, coo.vals)
    inv_degree = np.where(
        weighted_indeg > 0, 1.0 / np.maximum(weighted_indeg, 1e-30), 0.0
    )
    labels0 = np.random.default_rng(0).random(n)
    return OEIBindings(
        csc, csr, labels0, lambda k, x: {"inv_degree": inv_degree}, _no_scalars
    )


def knn_bindings(workload, matrix: Matrix) -> OEIBindings:
    """KNN two-hop expansion: a pure no-op path, no aux, no scalars."""
    csc, csr = _dual(matrix)
    n = matrix.nrows
    rng = np.random.default_rng(0)
    x0 = np.zeros(n)
    x0[rng.choice(n, size=min(workload.seeds, n), replace=False)] = 1.0
    return OEIBindings(csc, csr, x0, _no_aux, _no_scalars)


#: Workload name -> binding factory (workload, Matrix) -> OEIBindings.
BINDING_FACTORIES = {
    "pr": pagerank_bindings,
    "sssp": sssp_bindings,
    "kcore": kcore_bindings,
    "label": label_bindings,
    "knn": knn_bindings,
}
