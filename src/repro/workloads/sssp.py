"""Single-source shortest path over the Min-Add (tropical) semiring.

Bellman-Ford relaxation: ``dist' = min(dist, dist (min.+) A)``. The
single fused e-wise (``min`` against the carried distance vector) is
element-wise, so consecutive relaxation rounds fuse under OEI — the
paper's representative bandwidth-friendly workload (Fig 15a).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import vxm
from repro.graphblas.vector import Vector
from repro.semiring.semirings import MIN_ADD
from repro.workloads.base import FunctionalResult, Workload


class SSSP(Workload):
    name = "sssp"
    semiring = "min_add"
    domain = "Graph Analytics"

    def __init__(self, source: int = None) -> None:
        #: ``None`` selects the highest-out-degree vertex at run time.
        self.source = source

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("sssp")
        a = g.matrix("A")
        dist = g.vector("dist")
        relaxed = g.vector("relaxed")
        new = g.vector("new_dist")
        g.vxm("relax", dist, a, relaxed, self.semiring)
        g.ewise("take_min", "min", [relaxed, dist], new)
        # Side group: change detection for convergence.
        delta = g.vector("delta")
        g.ewise("change", "abs_diff", [new, dist], delta)
        changed = g.scalar("changed")
        g.reduce("any_change", delta, changed, "max")
        g.carry(new, dist)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        source = params.get("source", self.source)
        if source is None:
            source = int(np.argmax(matrix.row_degrees()))
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range for {n} vertices")
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        iterations = 0
        for _ in range(self.max_iterations):
            relaxed = vxm(Vector(n, dist), matrix, MIN_ADD)
            new = np.minimum(dist, relaxed.to_dense(fill=np.inf))
            iterations += 1
            finite = np.isfinite(new) & np.isfinite(dist)
            unchanged = np.array_equal(np.isfinite(new), np.isfinite(dist)) and np.allclose(
                new[finite], dist[finite]
            )
            dist = new
            if unchanged:
                break
        return FunctionalResult(output=dist, n_iterations=iterations)
