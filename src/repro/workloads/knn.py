"""K-nearest-neighbor graph expansion (Fig 4 of the paper).

Two ``vxm`` operations per iteration over the And-Or semiring expand a
candidate set by two hops (NN-Descent style neighborhood exploration).
The circular dependency between the two contractions forms the
``vxm -> no-op -> vxm`` OEI subgraph the paper highlights: matrix reuse
happens *within* an iteration as well as across iterations.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import vxm
from repro.graphblas.vector import Vector
from repro.semiring.semirings import AND_OR
from repro.workloads.base import FunctionalResult, Workload


class KNN(Workload):
    name = "knn"
    semiring = "and_or"
    domain = "Clustering"
    max_iterations = 12

    def __init__(self, seeds: int = 4) -> None:
        if seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {seeds}")
        self.seeds = seeds

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("knn")
        a = g.matrix("A")
        candidates = g.vector("candidates")
        hop1 = g.vector("hop1")
        hop2 = g.vector("hop2")
        g.vxm("expand1", candidates, a, hop1, self.semiring)
        g.vxm("expand2", hop1, a, hop2, self.semiring)
        g.carry(hop2, candidates)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        seeds = params.get("seeds", self.seeds)
        rng = np.random.default_rng(params.get("seed", 0))
        start = rng.choice(n, size=min(seeds, n), replace=False)
        reach = np.zeros(n)
        reach[start] = 1.0
        activity = []
        iterations = 0
        for _ in range(self.max_iterations):
            activity.append(float(np.count_nonzero(reach)) / n)
            hop1 = vxm(Vector(n, reach), matrix, AND_OR).to_dense()
            hop2 = vxm(Vector(n, hop1), matrix, AND_OR).to_dense()
            merged = np.maximum(reach, hop2)
            iterations += 1
            if np.array_equal(merged, reach):
                break
            reach = merged
        return FunctionalResult(
            output=reach,
            n_iterations=iterations,
            activity=tuple(activity),
        )
