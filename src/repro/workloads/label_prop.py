"""Label propagation (Table III: Mul-Add, clustering domain).

Synchronous weighted label smoothing: each round every vertex averages
its neighbors' labels, ``label' = (label x A) / degree`` realized as a
``vxm`` followed by an element-wise multiply with the precomputed
inverse in-degree vector. Labels converge toward community-consistent
values; the e-wise chain is fully element-wise so rounds fuse under
OEI.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import vxm
from repro.graphblas.vector import Vector
from repro.semiring.semirings import MUL_ADD
from repro.workloads.base import FunctionalResult, Workload


class LabelPropagation(Workload):
    name = "label"
    semiring = "mul_add"
    domain = "Clustering"

    def __init__(self, n_rounds: int = 15, tolerance: float = 1e-6) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = n_rounds
        self.tolerance = tolerance

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("label")
        a = g.matrix("A")
        labels = g.vector("labels")
        spread = g.vector("spread")
        inv_degree = g.vector("inv_degree")
        new_labels = g.vector("new_labels")
        g.vxm("spread_labels", labels, a, spread, self.semiring)
        g.ewise("normalize", "times", [spread, inv_degree], new_labels)
        # Side group: movement for the convergence check.
        moved = g.vector("moved")
        g.ewise("movement", "abs_diff", [new_labels, labels], moved)
        total_moved = g.scalar("total_moved")
        g.reduce("fold_movement", moved, total_moved, "plus")
        g.carry(new_labels, labels)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        n_rounds = params.get("n_rounds", self.n_rounds)
        rng = np.random.default_rng(params.get("seed", 0))
        weighted_indeg = np.zeros(n)
        coo = matrix.coo
        np.add.at(weighted_indeg, coo.cols, coo.vals)
        inv_degree = np.where(weighted_indeg > 0, 1.0 / np.maximum(weighted_indeg, 1e-30), 0.0)
        labels = rng.random(n)
        iterations = 0
        for _ in range(min(n_rounds, self.max_iterations)):
            spread = vxm(Vector(n, labels), matrix, MUL_ADD).to_dense()
            new_labels = spread * inv_degree
            iterations += 1
            moved = np.abs(new_labels - labels).sum()
            labels = new_labels
            if moved < self.tolerance:
                break
        return FunctionalResult(output=labels, n_iterations=iterations)
