"""The benchmark STA applications of Table III.

Each workload provides three coordinated views of the same algorithm:

1. a **functional implementation** on GraphBLAS-mini (used for
   correctness tests and to measure iteration counts / per-iteration
   activity),
2. a **dataflow graph** of its loop body (compiled by
   :mod:`repro.dataflow` into an OEI program — this determines whether
   the workload can use cross-iteration reuse),
3. a **workload profile** for the timing models.
"""

from repro.workloads.base import FunctionalResult, Workload
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__all__ = [
    "Workload",
    "FunctionalResult",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
