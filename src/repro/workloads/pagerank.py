"""PageRank (Fig 1 / Fig 2 of the paper).

The inner loop is ``pr_next = d * (pr x L) + (1 - d) / n + d * dangling
/ n`` over the out-degree-normalized link matrix ``L``. The teleport
term uses the dangling mass of the *previous* vector (the standard
GraphBLAS formulation), which is what keeps every e-wise operation
sub-tensor dependent and the OEI path legal.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.semiring.semirings import MUL_ADD
from repro.workloads.base import FunctionalResult, Workload


def normalize_columns_out(matrix: Matrix) -> Matrix:
    """Out-degree-normalize: L[i, j] = A[i, j] / outdeg(i), pattern-wise."""
    coo = matrix.coo
    outdeg = np.bincount(coo.rows, minlength=matrix.nrows).astype(np.float64)
    vals = 1.0 / outdeg[coo.rows]
    from repro.formats.coo import COOMatrix

    return Matrix(COOMatrix(coo.shape, coo.rows, coo.cols, vals))


class PageRank(Workload):
    name = "pr"
    semiring = "mul_add"
    domain = "Graph Analytics"

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-7) -> None:
        self.damping = damping
        self.tolerance = tolerance

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("pr")
        link = g.matrix("L")
        pr = g.vector("pr_next")
        y = g.vector("pr_nextnext")
        scaled = g.vector("scaled")
        new = g.vector("pr_new")
        g.scalar("teleport")
        g.vxm("spmv", pr, link, y, self.semiring)
        # Fused OEI path: damp then add the teleport + dangling term.
        g.ewise("damp", "times", [y], scaled, immediate=self.damping)
        g.ewise("teleport_add", "plus", [scaled], new, scalar_operand="teleport")
        # Side group: residual |pr_new - pr| for the convergence check.
        diff = g.vector("diff")
        g.ewise("residual_diff", "abs_diff", [new, pr], diff)
        res = g.scalar("res")
        g.reduce("residual_fold", diff, res, "plus")
        g.carry(new, pr)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        link = normalize_columns_out(matrix)
        dangling_nodes = matrix.row_degrees() == 0
        pr = np.full(n, 1.0 / n)
        iterations = 0
        for _ in range(self.max_iterations):
            dangling = pr[dangling_nodes].sum()
            teleport = (1.0 - self.damping) / n + self.damping * dangling / n
            from repro.graphblas.ops import vxm

            y = vxm(Vector(n, pr), link, MUL_ADD)
            new = self.damping * y.to_dense() + teleport
            iterations += 1
            residual = np.abs(new - pr).sum()
            pr = new
            if residual < self.tolerance:
                break
        return FunctionalResult(output=pr, n_iterations=iterations)
