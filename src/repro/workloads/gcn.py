"""Graph convolutional network inference (Fig 5 of the paper).

Each layer computes ``H' = ReLU((A x H) W)``: a sparse-times-dense SpMM
against the normalized adjacency, a dense feature transform, and a
ReLU. Since the SpMM decomposes into per-feature ``vxm`` and neither
the MM nor the ReLU blocks individual elements, layers fuse under OEI
(the paper's cross-*stage* variant of cross-iteration reuse). The
profile carries ``feature_dim`` and the dense-MM op count.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import mxm_dense
from repro.semiring.semirings import MUL_ADD
from repro.workloads.base import FunctionalResult, Workload


class GCN(Workload):
    name = "gcn"
    semiring = "mul_add"
    domain = "Machine Learning"

    def __init__(self, feature_dim: int = 16, n_layers: int = 4) -> None:
        if feature_dim < 1 or n_layers < 1:
            raise ValueError("feature_dim and n_layers must be >= 1")
        self.feature_dim = feature_dim
        self.n_layers = n_layers

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("gcn")
        a = g.matrix("A")
        h = g.vector("H")          # feature rows, width = feature_dim
        agg = g.vector("AH")
        activated = g.vector("H_next")
        g.vxm("aggregate", h, a, agg, self.semiring)
        # The dense transform is modeled as per-element work (a row of
        # H times W touches only that row) followed by ReLU.
        transformed = g.vector("HW")
        g.ewise("transform", "times", [agg], transformed, scalar_operand="w_scale")
        g.ewise("relu", "relu", [transformed], activated)
        g.carry(activated, h)
        return g

    def _profile_overrides(self) -> Dict[str, object]:
        # Dense MM: n x F x F multiply-adds per layer, plus the weight
        # matrix fetch (F x F x 8 bytes, negligible but accounted).
        return {
            "feature_dim": self.feature_dim,
            "extra_ops_per_iteration": 0.0,  # filled per matrix in profile()
        }

    def profile(self, matrix=None, n_iterations=None, **params):
        prof = super().profile(matrix=matrix, n_iterations=n_iterations, **params)
        n = matrix.nrows if matrix is not None else 0
        from dataclasses import replace

        return replace(
            prof,
            feature_dim=self.feature_dim,
            extra_ops_per_iteration=2.0 * n * self.feature_dim * self.feature_dim,
            extra_dram_bytes_per_iteration=8.0 * self.feature_dim * self.feature_dim,
        )

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        rng = np.random.default_rng(params.get("seed", 0))
        features = rng.random((n, self.feature_dim))
        weights = [
            rng.normal(0, 1.0 / np.sqrt(self.feature_dim), (self.feature_dim, self.feature_dim))
            for _ in range(self.n_layers)
        ]
        norm = self._normalized(matrix)
        h = features
        for w in weights:
            h = np.maximum(mxm_dense(norm, h, MUL_ADD) @ w, 0.0)
        return FunctionalResult(
            output=h,
            n_iterations=self.n_layers,
            extras={"weights": weights, "features": features},
        )

    @staticmethod
    def _normalized(matrix: Matrix) -> Matrix:
        """Symmetric degree normalization D^-1/2 (A + I) D^-1/2."""
        from repro.formats.coo import COOMatrix

        coo = matrix.coo
        n = matrix.nrows
        rows = np.concatenate((coo.rows, np.arange(n)))
        cols = np.concatenate((coo.cols, np.arange(n)))
        vals = np.concatenate((np.ones(coo.nnz), np.ones(n)))
        deg = np.bincount(rows, minlength=n).astype(np.float64)
        scale = 1.0 / np.sqrt(np.maximum(deg, 1.0))
        vals = vals * scale[rows] * scale[cols]
        return Matrix(COOMatrix((n, n), rows, cols, vals))
