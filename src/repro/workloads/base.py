"""Workload base class shared by all Table-III applications."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.profile import WorkloadProfile
from repro.dataflow.compiler import compile_program
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.program import OEIProgram
from repro.graphblas.matrix import Matrix


@dataclass
class FunctionalResult:
    """Outcome of a functional (GraphBLAS-mini) run."""

    output: np.ndarray
    n_iterations: int
    #: per-iteration active fraction of the iterated vector (1.0 when
    #: the workload is always dense)
    activity: Tuple[float, ...] = ()
    extras: Dict[str, object] = field(default_factory=dict)


class Workload(ABC):
    """One STA application: functional semantics + dataflow shape.

    Subclasses set the Table-III metadata (``name``, ``semiring``,
    ``reuse_pattern``, ``domain``) and implement :meth:`build_graph`
    and :meth:`run_functional`.
    """

    name: str = ""
    semiring: str = ""
    reuse_pattern: str = "cross-iteration, producer-consumer"
    domain: str = ""
    #: Iteration cap for convergence-driven algorithms; road-scale
    #: graphs would otherwise need thousands of Bellman-Ford rounds.
    max_iterations: int = 30

    # ------------------------------------------------------------------
    # Dataflow view
    # ------------------------------------------------------------------
    @abstractmethod
    def build_graph(self) -> DataflowGraph:
        """The loop-body dataflow graph (Fig 2 style)."""

    def program(self) -> OEIProgram:
        """Compiled OEI program (cached per instance)."""
        if not hasattr(self, "_program"):
            self._program = compile_program(self.build_graph())
        return self._program

    def lint(self):
        """Full static-analysis report for this workload — graph
        verifier, then (when the graph is clean) program and schedule
        checks on the compiled output. See :mod:`repro.analysis`."""
        from repro.analysis.passes import lint_workload

        return lint_workload(self)

    # ------------------------------------------------------------------
    # Functional view
    # ------------------------------------------------------------------
    @abstractmethod
    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        """Run the real algorithm on GraphBLAS-mini."""

    # ------------------------------------------------------------------
    # Timing view
    # ------------------------------------------------------------------
    def profile(
        self,
        matrix: Optional[Matrix] = None,
        n_iterations: Optional[int] = None,
        **params,
    ) -> WorkloadProfile:
        """Build the timing profile.

        With a matrix, the functional implementation runs first and its
        measured iteration count and activity drive the profile; with
        ``n_iterations`` the functional run is skipped.
        """
        activity: Tuple[float, ...] = ()
        if n_iterations is None:
            if matrix is None:
                raise ValueError(
                    f"workload {self.name!r} needs a matrix or an explicit "
                    "n_iterations to build a profile"
                )
            result = self.run_functional(matrix, **params)
            n_iterations = result.n_iterations
            activity = result.activity
        return WorkloadProfile.from_program(
            self.program(),
            n_iterations=max(1, n_iterations),
            activity=activity,
            **self._profile_overrides(),
        )

    def _profile_overrides(self) -> Dict[str, object]:
        """Per-workload profile fields (feature_dim, extra ops, ...)."""
        return {}

    # ------------------------------------------------------------------
    # OEI legality validation
    # ------------------------------------------------------------------
    def oei_bindings(self, matrix: Matrix):
        """Executor inputs for this workload's compiled program, or
        ``NotImplementedError`` for workloads whose iterated operand is
        not a plain vector (GCN) or has no OEI path (cg, bgs)."""
        from repro.workloads.bindings import BINDING_FACTORIES

        factory = BINDING_FACTORIES.get(self.name)
        if factory is None:
            raise NotImplementedError(
                f"workload {self.name!r} has no OEI executor bindings"
            )
        return factory(self, matrix)

    def validate_oei(
        self, matrix: Matrix, n_iterations: int = 6, subtensor_cols: int = 32
    ):
        """Prove numerically that this workload under the OEI pair
        schedule matches sequential execution on ``matrix``; returns the
        OEI trace (see :func:`repro.oei.validate
        .assert_oei_matches_reference`)."""
        from repro.oei.validate import assert_oei_matches_reference

        bindings = self.oei_bindings(matrix)
        return assert_oei_matches_reference(
            bindings.csc,
            bindings.csr,
            self.program(),
            bindings.x0,
            n_iterations,
            aux_provider=bindings.aux_provider,
            scalar_update=bindings.scalar_update,
            subtensor_cols=subtensor_cols,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
