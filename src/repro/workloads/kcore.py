"""k-core decomposition (Table III: Mul-Add, graph analytics).

Iterative peeling: count each vertex's alive neighbors with a
``vxm`` over (x, +) against the 0/1 alive vector, then prune vertices
whose count falls below ``k`` until a fixpoint. The peeling e-wise
chain (threshold, combine with the alive flags, detect deletions) is
the longest of the graph workloads, making kcore the paper's
representative *compute-intensive* case (Fig 15c).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import vxm
from repro.graphblas.vector import Vector
from repro.semiring.semirings import MUL_ADD
from repro.workloads.base import FunctionalResult, Workload


class KCore(Workload):
    name = "kcore"
    semiring = "mul_add"
    domain = "Graph Analytics"
    max_iterations = 40

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("kcore")
        a = g.matrix("A")
        alive = g.vector("alive")
        counts = g.vector("counts")
        g.vxm("count_neighbors", alive, a, counts, self.semiring)
        # Fused path: alive' = alive and (count >= k). Realized as
        # max(count - (k - 1), 0) -> nonzero iff count >= k, then gated
        # by the previous alive flags and renormalized to {0, 1}.
        shifted = g.vector("shifted")
        clipped = g.vector("clipped")
        gated = g.vector("gated")
        new_alive = g.vector("new_alive")
        g.ewise("shift", "minus", [counts], shifted, immediate=float(self.k) - 0.5)
        g.ewise("clip", "max", [shifted], clipped, immediate=0.0)
        g.ewise("gate", "aril", [alive, clipped], gated)
        g.ewise("binarize", "lor", [gated], new_alive, immediate=0.0)
        # Side group: count the deletions this round.
        removed = g.vector("removed")
        g.ewise("deleted", "abs_diff", [new_alive, alive], removed)
        n_removed = g.scalar("n_removed")
        g.reduce("sum_removed", removed, n_removed, "plus")
        g.carry(new_alive, alive)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        k = params.get("k", self.k)
        alive = np.ones(n)
        iterations = 0
        activity = []
        for _ in range(self.max_iterations):
            activity.append(float(alive.sum()) / n)
            counts = vxm(Vector(n, alive), matrix, MUL_ADD).to_dense()
            # Pattern-wise neighbor count: use 0/1 weights.
            new_alive = ((counts >= k) & (alive > 0)).astype(np.float64)
            iterations += 1
            if np.array_equal(new_alive, alive):
                break
            alive = new_alive
        return FunctionalResult(
            output=alive,
            n_iterations=iterations,
            activity=tuple(activity),
        )

    def decompose(self, matrix: Matrix, max_k: int = None) -> FunctionalResult:
        """Full k-core decomposition: the core number of every vertex
        (the largest ``k`` whose k-core contains it), by running the
        peel for increasing ``k`` until the core empties.

        Core numbers use in-degree semantics on the 0/1 pattern, like
        :meth:`run_functional_pattern`.
        """
        import numpy as np

        from repro.formats.coo import COOMatrix

        coo = matrix.coo
        pattern = Matrix(COOMatrix(coo.shape, coo.rows, coo.cols, np.ones(coo.nnz)))
        n = matrix.nrows
        core_number = np.zeros(n, dtype=np.int64)
        total_rounds = 0
        k = 1
        while max_k is None or k <= max_k:
            result = self.run_functional(pattern, k=k)
            total_rounds += result.n_iterations
            alive = result.output > 0
            if not alive.any():
                break
            core_number[alive] = k
            k += 1
        return FunctionalResult(
            output=core_number.astype(np.float64),
            n_iterations=total_rounds,
            extras={"max_core": int(core_number.max())},
        )

    def run_functional_pattern(self, matrix: Matrix, **params) -> FunctionalResult:
        """k-core on the 0/1 pattern of the matrix (degree semantics
        independent of edge weights) — the textbook definition."""
        from repro.formats.coo import COOMatrix

        coo = matrix.coo
        pattern = Matrix(
            COOMatrix(coo.shape, coo.rows, coo.cols, np.ones(coo.nnz))
        )
        return self.run_functional(pattern, **params)
