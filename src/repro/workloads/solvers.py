"""Krylov solvers: CG, BiCGStab, and GMRES (Table III, Solver/HPC).

All three solve ``M x = b`` where ``M`` is the graph's SPD Laplacian
plus identity (``M = D - (A + A^T)/2 + I``) — the standard way to turn
an arbitrary graph into a well-conditioned sparse system.

Dataflow shapes:

- **cg** and **bgs**: the step size ``alpha`` needs a dot product of
  the *fresh* ``vxm`` output, a reduction that blocks sub-tensor
  dependency — no OEI path exists (the paper lists them as
  producer-consumer only).
- **gmres**: modeled in its pipelined form, where orthogonalization
  coefficients lag one iteration (Ghysels-style p1-GMRES). The lagged
  scalars keep the e-wise chain element-wise, so consecutive Arnoldi
  SpMVs fuse under OEI — matching the paper's classification of gmres
  as a cross-iteration-reuse application.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.errors import ConvergenceError
from repro.formats.coo import COOMatrix
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import mxv
from repro.graphblas.vector import Vector
from repro.semiring.semirings import MUL_ADD
from repro.workloads.base import FunctionalResult, Workload


def spd_system(matrix: Matrix) -> Matrix:
    """``M = D - (A + A^T) / 2 + I`` — symmetric positive definite."""
    coo = matrix.coo
    n = matrix.nrows
    rows = np.concatenate((coo.rows, coo.cols))
    cols = np.concatenate((coo.cols, coo.rows))
    vals = np.concatenate((coo.vals, coo.vals)) * -0.5
    sym = COOMatrix((n, n), rows, cols, vals).deduplicate()
    degree = np.zeros(n)
    np.add.at(degree, sym.rows, -sym.vals)
    diag = np.arange(n)
    full = COOMatrix(
        (n, n),
        np.concatenate((sym.rows, diag)),
        np.concatenate((sym.cols, diag)),
        np.concatenate((sym.vals, degree + 1.0)),
    )
    return Matrix(full)


def _matvec(m: Matrix, x: np.ndarray) -> np.ndarray:
    return mxv(m, Vector(x.size, x), MUL_ADD).to_dense()


class ConjugateGradient(Workload):
    name = "cg"
    semiring = "mul_add"
    reuse_pattern = "producer-consumer"
    domain = "Solver, HPC"
    max_iterations = 60

    def __init__(self, tolerance: float = 1e-8) -> None:
        self.tolerance = tolerance

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("cg")
        m = g.matrix("M")
        p, q = g.vector("p"), g.vector("q")
        x, r = g.vector("x"), g.vector("r")
        alpha = g.scalar("alpha")
        beta = g.scalar("beta")
        g.vxm("spmv", p, m, q, self.semiring)
        g.dot("pq_dot", p, q, alpha)          # blocks the OEI path
        ap = g.vector("alpha_p")
        aq = g.vector("alpha_q")
        x_new, r_new, p_new = g.vector("x_new"), g.vector("r_new"), g.vector("p_new")
        g.ewise("scale_p", "times", [p], ap, scalar_operand="alpha")
        g.ewise("scale_q", "times", [q], aq, scalar_operand="alpha")
        g.ewise("update_x", "plus", [x, ap], x_new)
        g.ewise("update_r", "minus", [r, aq], r_new)
        bp = g.vector("beta_p")
        g.ewise("scale_p_beta", "times", [p], bp, scalar_operand="beta")
        g.ewise("update_p", "plus", [r_new, bp], p_new)
        g.carry(p_new, p)
        g.carry(x_new, x)
        g.carry(r_new, r)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        m = spd_system(matrix)
        n = m.nrows
        rng = np.random.default_rng(params.get("seed", 0))
        b = rng.random(n)
        x = np.zeros(n)
        r = b.copy()
        p = r.copy()
        rr = float(r @ r)
        iterations = 0
        for _ in range(min(self.max_iterations, 10 * n)):
            q = _matvec(m, p)
            alpha = rr / float(p @ q)
            x += alpha * p
            r -= alpha * q
            rr_new = float(r @ r)
            iterations += 1
            if np.sqrt(rr_new) < self.tolerance:
                break
            p = r + (rr_new / rr) * p
            rr = rr_new
        return FunctionalResult(
            output=x,
            n_iterations=iterations,
            extras={"residual": float(np.linalg.norm(_matvec(m, x) - b)), "b": b},
        )


class BiCGStab(Workload):
    name = "bgs"
    semiring = "mul_add"
    reuse_pattern = "producer-consumer"
    domain = "Solver, HPC"
    max_iterations = 60

    def __init__(self, tolerance: float = 1e-8) -> None:
        self.tolerance = tolerance

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("bgs")
        m = g.matrix("M")
        p, v = g.vector("p"), g.vector("v")
        r, s = g.vector("r"), g.vector("s")
        x = g.vector("x")
        alpha = g.scalar("alpha")
        omega = g.scalar("omega")
        beta = g.scalar("beta")
        g.vxm("spmv_p", p, m, v, self.semiring)
        g.dot("rv_dot", r, v, alpha)          # blocks the OEI path
        av = g.vector("alpha_v")
        g.ewise("scale_v", "times", [v], av, scalar_operand="alpha")
        g.ewise("form_s", "minus", [r, av], s)
        t = g.vector("t")
        g.vxm("spmv_s", s, m, t, self.semiring)
        g.dot("ts_dot", t, s, omega)
        x_new, r_new, p_new = g.vector("x_new"), g.vector("r_new"), g.vector("p_new")
        os_ = g.vector("omega_s")
        ot = g.vector("omega_t")
        ap = g.vector("alpha_p")
        g.ewise("scale_s", "times", [s], os_, scalar_operand="omega")
        g.ewise("scale_t", "times", [t], ot, scalar_operand="omega")
        g.ewise("scale_p", "times", [p], ap, scalar_operand="alpha")
        half_x = g.vector("half_x")
        g.ewise("update_x1", "plus", [x, ap], half_x)
        g.ewise("update_x2", "plus", [half_x, os_], x_new)
        g.ewise("update_r", "minus", [s, ot], r_new)
        bp = g.vector("beta_p")
        g.ewise("scale_p_beta", "times", [p], bp, scalar_operand="beta")
        g.ewise("update_p", "plus", [r_new, bp], p_new)
        g.carry(p_new, p)
        g.carry(x_new, x)
        g.carry(r_new, r)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        m = spd_system(matrix)
        n = m.nrows
        rng = np.random.default_rng(params.get("seed", 0))
        b = rng.random(n)
        x = np.zeros(n)
        r = b.copy()
        r_hat = r.copy()
        rho = alpha = omega = 1.0
        v = np.zeros(n)
        p = np.zeros(n)
        iterations = 0
        for _ in range(self.max_iterations):
            rho_new = float(r_hat @ r)
            if rho_new == 0.0:
                break
            beta = (rho_new / rho) * (alpha / omega) if iterations else 0.0
            p = r + beta * (p - omega * v) if iterations else r.copy()
            rho = rho_new
            v = _matvec(m, p)
            alpha = rho / float(r_hat @ v)
            s = r - alpha * v
            t = _matvec(m, s)
            tt = float(t @ t)
            omega = float(t @ s) / tt if tt > 0 else 0.0
            x = x + alpha * p + omega * s
            r = s - omega * t
            iterations += 1
            if np.linalg.norm(r) < self.tolerance:
                break
        return FunctionalResult(
            output=x,
            n_iterations=max(1, iterations),
            extras={"residual": float(np.linalg.norm(_matvec(m, x) - b)), "b": b},
        )


class GMRES(Workload):
    name = "gmres"
    semiring = "mul_add"
    domain = "Solver, HPC"
    max_iterations = 40

    def __init__(self, restart: int = 20, tolerance: float = 1e-8) -> None:
        if restart < 1:
            raise ValueError(f"restart must be >= 1, got {restart}")
        self.restart = restart
        self.tolerance = tolerance

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("gmres")
        m = g.matrix("M")
        v = g.vector("v")            # current Arnoldi basis vector
        w = g.vector("w")
        g.vxm("spmv", v, m, w, self.semiring)
        # Pipelined (lagged) orthogonalization: coefficients h1, h2 and
        # the normalization scale come from the previous iteration's
        # dots, so the chain stays element-wise.
        prev1 = g.vector("v_prev1")
        prev2 = g.vector("v_prev2")
        c1 = g.vector("c1")
        c2 = g.vector("c2")
        ortho1 = g.vector("ortho1")
        ortho2 = g.vector("ortho2")
        v_next = g.vector("v_next")
        g.ewise("coeff1", "times", [prev1], c1, scalar_operand="h1")
        g.ewise("coeff2", "times", [prev2], c2, scalar_operand="h2")
        g.ewise("sub1", "minus", [w, c1], ortho1)
        g.ewise("sub2", "minus", [ortho1, c2], ortho2)
        g.ewise("normalize", "times", [ortho2], v_next, scalar_operand="inv_norm")
        # Side group: the dots that produce next iteration's h's.
        h1 = g.scalar("h1_next")
        h2 = g.scalar("h2_next")
        g.dot("dot_h1", w, prev1, h1)
        g.dot("dot_h2", w, prev2, h2)
        g.carry(v_next, v)
        g.carry(v, prev1)
        g.carry(prev1, prev2)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        m = spd_system(matrix)
        n = m.nrows
        rng = np.random.default_rng(params.get("seed", 0))
        b = rng.random(n)
        x = np.zeros(n)
        iterations = 0
        for _restart in range(4):
            r = b - _matvec(m, x)
            beta = float(np.linalg.norm(r))
            if beta < self.tolerance:
                break
            k = min(self.restart, self.max_iterations - iterations)
            if k <= 0:
                break
            basis = np.zeros((k + 1, n))
            basis[0] = r / beta
            h = np.zeros((k + 1, k))
            width = 0
            for j in range(k):
                w = _matvec(m, basis[j])
                for i in range(j + 1):
                    h[i, j] = float(w @ basis[i])
                    w -= h[i, j] * basis[i]
                h[j + 1, j] = float(np.linalg.norm(w))
                iterations += 1
                width = j + 1
                if h[j + 1, j] < 1e-14:
                    break
                basis[j + 1] = w / h[j + 1, j]
            e1 = np.zeros(width + 1)
            e1[0] = beta
            y, *_ = np.linalg.lstsq(h[: width + 1, :width], e1, rcond=None)
            x = x + basis[:width].T @ y
            if np.linalg.norm(b - _matvec(m, x)) < self.tolerance:
                break
        return FunctionalResult(
            output=x,
            n_iterations=max(1, iterations),
            extras={"residual": float(np.linalg.norm(_matvec(m, x) - b)), "b": b},
        )
