"""k-means++ initialization over the Aril-Add semiring (Table III).

Each round picks a new center and folds its graph-distance row into the
running minimum-distance vector: ``y = indicator (aril.+) D`` selects
the chosen center's distance row (``aril`` assigns the right-hand input
where the left is true), and the fused ``min`` merges it. The next
center is sampled proportionally to the squared distances — the side
e-wise/reduce group.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import vxm
from repro.graphblas.vector import Vector
from repro.semiring.semirings import ARIL_ADD
from repro.workloads.base import FunctionalResult, Workload


class KMeansPlusPlus(Workload):
    name = "kpp"
    semiring = "aril_add"
    domain = "Clustering"

    def __init__(self, n_centers: int = 8) -> None:
        if n_centers < 1:
            raise ValueError(f"n_centers must be >= 1, got {n_centers}")
        self.n_centers = n_centers

    def build_graph(self) -> DataflowGraph:
        g = DataflowGraph("kpp")
        d = g.matrix("D")
        indicator = g.vector("indicator")
        row = g.vector("selected_row")
        dist = g.vector("dist")
        new_dist = g.vector("new_dist")
        g.vxm("select_row", indicator, d, row, self.semiring)
        g.ewise("fold_min", "min", [row, dist], new_dist)
        # Side group: squared distances for the sampling weights.
        sq = g.vector("sq")
        g.ewise("square", "times", [new_dist, new_dist], sq)
        total = g.scalar("total")
        g.reduce("weight_sum", sq, total, "plus")
        # The next indicator is a one-hot at the sampled index: the
        # sub-tensor dispatcher gates each element against the sampled
        # index (``chosen`` is drawn from the *previous* round's
        # weights, so it is available before this round's e-wise runs
        # and the chain stays sub-tensor dependent).
        new_indicator = g.vector("new_indicator")
        g.ewise("select_center", "aril", [new_dist], new_indicator,
                scalar_operand="chosen")
        g.carry(new_dist, dist)
        g.carry(new_indicator, indicator)
        return g

    def run_functional(self, matrix: Matrix, **params) -> FunctionalResult:
        n = matrix.nrows
        n_centers = params.get("n_centers", self.n_centers)
        rng = np.random.default_rng(params.get("seed", 0))
        # Treat missing edges as far-away (large distance).
        far = 1e9
        dist = np.full(n, far)
        centers = [int(rng.integers(0, n))]
        dist_update = self._center_row(matrix, centers[0], far)
        dist = np.minimum(dist, dist_update)
        dist[centers[0]] = 0.0
        for _ in range(n_centers - 1):
            weights = dist * dist
            total = weights.sum()
            if total <= 0:
                break
            probs = weights / total
            choice = int(rng.choice(n, p=probs))
            centers.append(choice)
            dist = np.minimum(dist, self._center_row(matrix, choice, far))
            dist[choice] = 0.0
        return FunctionalResult(
            output=dist,
            n_iterations=len(centers),
            extras={"centers": centers},
        )

    @staticmethod
    def _center_row(matrix: Matrix, center: int, far: float) -> np.ndarray:
        """Distance row of one center via the Aril-Add ``vxm``."""
        n = matrix.nrows
        indicator = Vector.from_entries(n, [center], [1.0])
        row = vxm(indicator, matrix, ARIL_ADD)
        out = np.full(n, far)
        idx, vals = row.entries()
        out[idx] = vals
        return out
