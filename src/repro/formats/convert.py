"""Conversions between the sparse formats.

The core kernel :func:`coo_to_compressed` compresses sorted coordinates
into (indptr, indices, data); both CSR and CSC construction and the
CSR<->CSC transposing conversions reduce to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.formats.csc import CSCMatrix
    from repro.formats.csr import CSRMatrix


def coo_to_compressed(
    n_major: int,
    major: np.ndarray,
    minor: np.ndarray,
    vals: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compress coordinate arrays along ``major``.

    Input need not be sorted or deduplicated; duplicates are summed.
    Returns ``(indptr, indices, data)`` with indices sorted within each
    major slice.
    """
    major = np.asarray(major, dtype=np.int64)
    minor = np.asarray(minor, dtype=np.int64)
    vals = np.asarray(vals)
    order = np.lexsort((minor, major))
    major, minor, vals = major[order], minor[order], vals[order]
    if major.size:
        keys_equal = (major[1:] == major[:-1]) & (minor[1:] == minor[:-1])
        if keys_equal.any():
            boundaries = np.concatenate(([True], ~keys_equal))
            group = np.cumsum(boundaries) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=vals.dtype)
            np.add.at(summed, group, vals)
            major, minor, vals = major[boundaries], minor[boundaries], summed
    counts = np.bincount(major, minlength=n_major)
    indptr = np.zeros(n_major + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, minor, vals


def csr_to_csc(csr: "CSRMatrix") -> "CSCMatrix":
    """Transpose-convert CSR to CSC without changing the logical matrix."""
    from repro.formats.csc import CSCMatrix

    rows, cols, vals = csr.to_coo_arrays()
    indptr, indices, data = coo_to_compressed(csr.ncols, cols, rows, vals)
    return CSCMatrix(csr.shape, indptr, indices, data)


def csc_to_csr(csc: "CSCMatrix") -> "CSRMatrix":
    """Transpose-convert CSC to CSR without changing the logical matrix."""
    from repro.formats.csr import CSRMatrix

    rows, cols, vals = csc.to_coo_arrays()
    indptr, indices, data = coo_to_compressed(csc.nrows, rows, cols, vals)
    return CSRMatrix(csc.shape, indptr, indices, data)
