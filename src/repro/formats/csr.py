"""Compressed Sparse Row (CSR) matrix.

CSR serves the IS stage of the OEI dataflow: the IS ``vxm`` scatters one
input-vector element against one matrix *row* at a time, so it needs
fast row access (Section IV-B).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.formats.compressed import _Compressed
from repro.formats.convert import coo_to_compressed
from repro.formats.coo import COOMatrix


class CSRMatrix(_Compressed):
    """Sparse matrix with compressed rows (major dimension = rows)."""

    _row_major = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        indptr, indices, data = coo_to_compressed(
            coo.nrows, coo.rows, coo.cols, coo.vals
        )
        return cls(coo.shape, indptr, indices, data)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=np.float64) -> "CSRMatrix":
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=dtype),
        )

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(col_indices, values)`` of row ``i`` as views."""
        return self.major_slice(i)

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return self.major_nnz()

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = self.to_coo_arrays()
        return COOMatrix(self.shape, rows, cols, vals)

    def to_csc(self):
        from repro.formats.convert import csr_to_csc

        return csr_to_csc(self)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, still in CSR."""
        return CSRMatrix.from_coo(self.to_coo().transpose())

    # ------------------------------------------------------------------
    # Reference kernels (used by GraphBLAS-mini and by tests)
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Plain arithmetic ``A @ x`` over the (+, *) semiring.

        GraphBLAS-mini implements the general semiring version; this is
        the fast reference path for numeric workloads and tests.
        """
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise ValueError(f"vector length {x.shape} does not match ncols {self.ncols}")
        products = self.data * x[self.indices]
        out = np.zeros(self.nrows, dtype=np.result_type(self.data, x))
        row_ids = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        np.add.at(out, row_ids, products)
        return out
