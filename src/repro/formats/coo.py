"""Coordinate-list (COO) sparse matrix.

COO is the interchange format of this library: generators emit COO,
MatrixMarket I/O reads and writes COO, and the compressed formats are
built from it. The paper explicitly rejects COO for the on-chip buffer
(Section IV-B) because it only serves the sorted dimension efficiently;
we keep it purely as a host-side construction format.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError


class COOMatrix:
    """An ``nrows x ncols`` sparse matrix as parallel coordinate arrays.

    Duplicate coordinates are allowed on construction and summed by
    :meth:`deduplicate`; the compressed formats require deduplicated,
    sorted input and call it internally.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        nrows, ncols = shape
        if nrows < 0 or ncols < 0:
            raise ShapeError(f"matrix shape must be non-negative, got {shape}")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise FormatError(
                "rows, cols, vals must be 1-D arrays of equal length, got "
                f"shapes {rows.shape}, {cols.shape}, {vals.shape}"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= nrows):
            raise FormatError("row coordinate out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= ncols):
            raise FormatError("column coordinate out of range")
        self.shape = (int(nrows), int(ncols))
        self.rows = rows
        self.cols = cols
        self.vals = vals

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (including any duplicates)."""
        return int(self.rows.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.vals.dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array, dropping zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"expected a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=np.float64) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        zero = np.zeros(0, dtype=np.int64)
        return cls(shape, zero, zero.copy(), np.zeros(0, dtype=dtype))

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates are summed)."""
        out = np.zeros(self.shape, dtype=self.vals.dtype)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def deduplicate(self) -> "COOMatrix":
        """Return a copy with duplicates summed, sorted row-major, and
        explicit zeros removed."""
        if self.nnz == 0:
            return COOMatrix(self.shape, self.rows, self.cols, self.vals)
        order = np.lexsort((self.cols, self.rows))
        rows, cols, vals = self.rows[order], self.cols[order], self.vals[order]
        keys = rows * self.ncols + cols
        boundaries = np.concatenate(([True], keys[1:] != keys[:-1]))
        group = np.cumsum(boundaries) - 1
        summed = np.zeros(int(group[-1]) + 1, dtype=vals.dtype)
        np.add.at(summed, group, vals)
        urows = rows[boundaries]
        ucols = cols[boundaries]
        keep = summed != 0
        return COOMatrix(self.shape, urows[keep], ucols[keep], summed[keep])

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (swaps coordinate arrays)."""
        return COOMatrix(
            (self.ncols, self.nrows), self.cols.copy(), self.rows.copy(), self.vals.copy()
        )

    def permute(self, row_perm: np.ndarray = None, col_perm: np.ndarray = None) -> "COOMatrix":
        """Relabel coordinates: new_row = row_perm[old_row], etc.

        ``row_perm``/``col_perm`` map *old* index to *new* index; ``None``
        leaves that dimension unchanged. Used by the reordering passes.
        """
        rows = self.rows if row_perm is None else np.asarray(row_perm)[self.rows]
        cols = self.cols if col_perm is None else np.asarray(col_perm)[self.cols]
        return COOMatrix(self.shape, rows, cols, self.vals.copy())
