"""Minimal MatrixMarket coordinate-format reader and writer.

SuiteSparse distributes its matrices in this format; the library reads
``real``, ``integer``, and ``pattern`` coordinate files with ``general``
or ``symmetric`` symmetry, which covers every matrix the paper uses.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import FormatError
from repro.formats.coo import COOMatrix

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


def read_matrix_market(source: Union[str, Path, io.TextIOBase]) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`COOMatrix`.

    ``pattern`` entries get value 1.0; ``symmetric`` files are expanded
    by mirroring off-diagonal entries.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_matrix_market(handle)

    header = source.readline().strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
        raise FormatError(f"not a MatrixMarket matrix header: {' '.join(header)!r}")
    layout, field, symmetry = header[2], header[3].lower(), header[4].lower()
    if layout != "coordinate":
        raise FormatError(f"only coordinate layout is supported, got {layout!r}")
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    size_line = None
    for line in source:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if size_line is None:
        raise FormatError("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise FormatError(f"malformed size line: {size_line!r}")
    nrows, ncols, nnz = (int(p) for p in parts)

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz, dtype=np.float64)
    seen = 0
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if seen >= nnz:
            raise FormatError("more entries than declared in the size line")
        fields = stripped.split()
        rows[seen] = int(fields[0]) - 1  # MatrixMarket is 1-based
        cols[seen] = int(fields[1]) - 1
        if field != "pattern":
            if len(fields) < 3:
                raise FormatError(f"missing value on entry line: {stripped!r}")
            vals[seen] = float(fields[2])
        seen += 1
    if seen != nnz:
        raise FormatError(f"declared {nnz} entries but found {seen}")

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirror_rows, mirror_cols, mirror_vals = cols[off_diag], rows[off_diag], vals[off_diag]
        rows = np.concatenate((rows, mirror_rows))
        cols = np.concatenate((cols, mirror_cols))
        vals = np.concatenate((vals, mirror_vals))
    return COOMatrix((nrows, ncols), rows, cols, vals)


def write_matrix_market(
    matrix: COOMatrix, destination: Union[str, Path, io.TextIOBase]
) -> None:
    """Write a :class:`COOMatrix` as a ``general real`` coordinate file."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            write_matrix_market(matrix, handle)
        return

    dedup = matrix.deduplicate()
    destination.write("%%MatrixMarket matrix coordinate real general\n")
    destination.write(f"{dedup.nrows} {dedup.ncols} {dedup.nnz}\n")
    for r, c, v in zip(dedup.rows, dedup.cols, dedup.vals):
        destination.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
