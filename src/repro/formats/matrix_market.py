"""Minimal MatrixMarket coordinate-format reader and writer.

SuiteSparse distributes its matrices in this format; the library reads
``real``, ``integer``, and ``pattern`` coordinate files with ``general``
or ``symmetric`` symmetry, which covers every matrix the paper uses.

Every :class:`~repro.errors.FormatError` the reader raises carries
``line <n>`` context (message, ``SP605`` diagnostic) naming the
offending line, so a malformed multi-gigabyte download points at the
byte that broke instead of aborting a figure run with a context-free
error. ``symmetric`` headers on non-square matrices are rejected up
front — mirroring such a file either crashes deep inside
:class:`~repro.formats.coo.COOMatrix` or silently produces a wrong
matrix. ``strict=True`` additionally rejects out-of-bounds indices,
trailing tokens, duplicate coordinates, and non-finite values, which
is the right mode for untrusted downloads.
"""

from __future__ import annotations

import io
import math
from pathlib import Path
from typing import NoReturn, Union

import numpy as np

from repro.errors import Diagnostic, FormatError
from repro.formats.coo import COOMatrix
from repro.resilience.faults import maybe_corrupt_text

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


def _fail(lineno: int, message: str) -> NoReturn:
    raise FormatError(
        f"line {lineno}: {message}",
        diagnostics=(Diagnostic.error("SP605", message, f"line {lineno}"),),
    )


def read_matrix_market(
    source: Union[str, Path, io.TextIOBase], strict: bool = False
) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`COOMatrix`.

    ``pattern`` entries get value 1.0; ``symmetric`` files must be
    square and are expanded by mirroring off-diagonal entries.
    ``strict`` adds the untrusted-input checks described in the module
    docs. Malformed input raises :class:`FormatError` with ``line <n>``
    context and an ``SP605`` diagnostic.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_matrix_market(handle, strict=strict)
    try:
        return _read_stream(source, strict)
    except UnicodeDecodeError as exc:
        raise FormatError(
            f"non-ASCII byte in MatrixMarket stream: {exc}",
            diagnostics=(Diagnostic.error(
                "SP605", "non-ASCII byte in MatrixMarket stream"),),
        ) from exc


def _read_stream(source, strict: bool) -> COOMatrix:
    lines = enumerate(source, start=1)
    lineno, raw = next(lines, (1, ""))
    header = raw.strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
        _fail(lineno, f"not a MatrixMarket matrix header: {' '.join(header)!r}")
    layout, field, symmetry = header[2], header[3].lower(), header[4].lower()
    if layout != "coordinate":
        _fail(lineno, f"only coordinate layout is supported, got {layout!r}")
    if field not in _SUPPORTED_FIELDS:
        _fail(lineno, f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        _fail(lineno, f"unsupported symmetry {symmetry!r}")

    size_line = None
    for lineno, raw in lines:
        stripped = raw.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if size_line is None:
        _fail(lineno + 1, "missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        _fail(lineno, f"malformed size line: {size_line!r}")
    try:
        nrows, ncols, nnz = (int(p) for p in parts)
    except ValueError:
        _fail(lineno, f"non-integer size line: {size_line!r}")
    if nrows < 0 or ncols < 0 or nnz < 0:
        _fail(lineno, f"negative dimension in size line: {size_line!r}")
    if symmetry == "symmetric" and nrows != ncols:
        _fail(lineno,
              f"symmetric symmetry requires a square matrix, "
              f"got {nrows} x {ncols}")

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz, dtype=np.float64)
    n_tokens = 2 if field == "pattern" else 3
    seen = 0
    coords = set() if strict else None
    for lineno, raw in lines:
        stripped = raw.strip()
        if not stripped or stripped.startswith("%"):
            continue
        stripped = maybe_corrupt_text("ingest.entry", lineno, stripped)
        if seen >= nnz:
            _fail(lineno, f"more entries than the declared {nnz}")
        tokens = stripped.split()
        if len(tokens) < n_tokens:
            _fail(lineno,
                  f"entry line has {len(tokens)} token(s), expected "
                  f"{n_tokens}: {stripped!r}")
        if strict and len(tokens) != n_tokens:
            _fail(lineno, f"trailing tokens on entry line: {stripped!r}")
        try:
            r, c = int(tokens[0]), int(tokens[1])
        except ValueError:
            _fail(lineno, f"non-integer coordinates: {stripped!r}")
        if not (1 <= r <= nrows) or not (1 <= c <= ncols):
            _fail(lineno,
                  f"coordinate ({r}, {c}) outside the declared "
                  f"{nrows} x {ncols} shape")
        if coords is not None:
            if (r, c) in coords:
                _fail(lineno, f"duplicate coordinate ({r}, {c})")
            coords.add((r, c))
        rows[seen] = r - 1  # MatrixMarket is 1-based
        cols[seen] = c - 1
        if field != "pattern":
            try:
                value = float(tokens[2])
            except ValueError:
                _fail(lineno, f"non-numeric value: {stripped!r}")
            if strict and not math.isfinite(value):
                _fail(lineno, f"non-finite value: {stripped!r}")
            vals[seen] = value
        seen += 1
    if seen != nnz:
        _fail(lineno, f"declared {nnz} entries but found {seen}")

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirror_rows, mirror_cols, mirror_vals = cols[off_diag], rows[off_diag], vals[off_diag]
        rows = np.concatenate((rows, mirror_rows))
        cols = np.concatenate((cols, mirror_cols))
        vals = np.concatenate((vals, mirror_vals))
    return COOMatrix((nrows, ncols), rows, cols, vals)


def write_matrix_market(
    matrix: COOMatrix, destination: Union[str, Path, io.TextIOBase]
) -> None:
    """Write a :class:`COOMatrix` as a ``general real`` coordinate file."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            write_matrix_market(matrix, handle)
        return

    dedup = matrix.deduplicate()
    destination.write("%%MatrixMarket matrix coordinate real general\n")
    destination.write(f"{dedup.nrows} {dedup.ncols} {dedup.nnz}\n")
    for r, c, v in zip(dedup.rows, dedup.cols, dedup.vals):
        destination.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
