"""Shared machinery for the two compressed formats (CSR and CSC).

CSR and CSC are the same data structure with the roles of the two
dimensions swapped; :class:`_Compressed` implements everything once in
terms of a *major* dimension (rows for CSR, columns for CSC) and a
*minor* dimension.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

INDEX_BYTES = 4  # the paper assumes >= 4-byte coordinates (Section IV-E2)
VALUE_BYTES = 8  # 64-bit data type, as in the paper's evaluation (Section VI-C)


class _Compressed:
    """Common base of :class:`CSRMatrix` and :class:`CSCMatrix`.

    Attributes
    ----------
    indptr:
        ``n_major + 1`` offsets into ``indices``/``data``.
    indices:
        Minor-dimension coordinate of each stored entry, sorted within
        each major slice.
    data:
        Stored values, aligned with ``indices``.
    """

    #: True for CSR (major = rows), False for CSC (major = columns).
    _row_major: bool = True

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        nrows, ncols = shape
        if nrows < 0 or ncols < 0:
            raise ShapeError(f"matrix shape must be non-negative, got {shape}")
        self.shape = (int(nrows), int(ncols))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        self._validate()

    # ------------------------------------------------------------------
    # Dimension bookkeeping
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def n_major(self) -> int:
        """Length of the compressed dimension (rows for CSR)."""
        return self.shape[0] if self._row_major else self.shape[1]

    @property
    def n_minor(self) -> int:
        return self.shape[1] if self._row_major else self.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size != self.n_major + 1:
            raise FormatError(
                f"indptr must have length {self.n_major + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise FormatError("indices and data must be 1-D arrays of equal length")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n_minor:
                raise FormatError("minor index out of range")

    # ------------------------------------------------------------------
    # Slice access
    # ------------------------------------------------------------------
    def major_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(minor_indices, values)`` of major slice ``i``
        (row ``i`` for CSR, column ``i`` for CSC) as views."""
        if not 0 <= i < self.n_major:
            raise IndexError(f"slice {i} out of range for {self.n_major}")
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def major_nnz(self) -> np.ndarray:
        """Number of stored entries in each major slice."""
        return np.diff(self.indptr)

    def slice_bytes(self) -> np.ndarray:
        """Bytes occupied by each major slice: one coordinate plus one
        value per stored entry. This is the traffic unit of the
        Sparsepipe loaders."""
        return self.major_nnz() * (INDEX_BYTES + VALUE_BYTES)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand to ``(rows, cols, vals)`` coordinate arrays."""
        major = np.repeat(np.arange(self.n_major, dtype=np.int64), self.major_nnz())
        if self._row_major:
            return major, self.indices.copy(), self.data.copy()
        return self.indices.copy(), major, self.data.copy()

    def to_dense(self) -> np.ndarray:
        rows, cols, vals = self.to_coo_arrays()
        out = np.zeros(self.shape, dtype=self.data.dtype)
        out[rows, cols] = vals
        return out

    def storage_bytes(self) -> int:
        """Exact in-memory footprint: indptr + indices + data.

        Coordinates are counted at ``INDEX_BYTES`` each and values at
        ``VALUE_BYTES`` each, matching the accounting the paper uses
        when sizing the dual storage (Section IV-E2).
        """
        return (
            self.indptr.size * INDEX_BYTES
            + self.indices.size * INDEX_BYTES
            + self.data.size * VALUE_BYTES
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Compressed) or self._row_major != other._row_major:
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "CSR" if self._row_major else "CSC"
        return f"{kind}Matrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"
