"""Naive dual CSC+CSR storage (Section IV-B).

Sparsepipe's OS and IS stages traverse the same matrix in opposite
orders, so the on-chip buffer keeps both a CSC and a CSR image. The
naive realization simply duplicates coordinates and values; its byte
cost is the baseline that the blocked format of Section IV-E2
(:class:`repro.formats.blocked.BlockedDualStorage`) is measured against
in Fig 20(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


@dataclass(frozen=True)
class DualStorage:
    """A matrix held simultaneously in CSC (for the OS stage) and CSR
    (for the IS stage)."""

    csc: CSCMatrix
    csr: CSRMatrix

    def __post_init__(self) -> None:
        if self.csc.shape != self.csr.shape:
            raise ValueError(
                f"CSC shape {self.csc.shape} != CSR shape {self.csr.shape}"
            )
        if self.csc.nnz != self.csr.nnz:
            raise ValueError(
                f"CSC nnz {self.csc.nnz} != CSR nnz {self.csr.nnz}"
            )

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DualStorage":
        dedup = coo.deduplicate()
        return cls(csc=CSCMatrix.from_coo(dedup), csr=CSRMatrix.from_coo(dedup))

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DualStorage":
        return cls(csc=csr.to_csc(), csr=csr)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    def col(self, j: int):
        """Column access path, as used by the OS stage."""
        return self.csc.col(j)

    def row(self, i: int):
        """Row access path, as used by the IS stage."""
        return self.csr.row(i)

    def storage_bytes(self) -> int:
        """Total footprint: both images, fully duplicated."""
        return self.csc.storage_bytes() + self.csr.storage_bytes()

    def to_dense(self) -> np.ndarray:
        return self.csr.to_dense()
