"""Compressed Sparse Column (CSC) matrix.

CSC serves the OS stage of the OEI dataflow: the OS ``vxm`` computes one
output element at a time as a dot product of the input vector with one
matrix *column*, so it needs fast column access (Section IV-B).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.formats.compressed import _Compressed
from repro.formats.convert import coo_to_compressed
from repro.formats.coo import COOMatrix


class CSCMatrix(_Compressed):
    """Sparse matrix with compressed columns (major dimension = columns)."""

    _row_major = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        indptr, indices, data = coo_to_compressed(
            coo.ncols, coo.cols, coo.rows, coo.vals
        )
        return cls(coo.shape, indptr, indices, data)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=np.float64) -> "CSCMatrix":
        return cls(
            shape,
            np.zeros(shape[1] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=dtype),
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of column ``j`` as views."""
        return self.major_slice(j)

    def col_nnz(self) -> np.ndarray:
        """Stored entries per column."""
        return self.major_nnz()

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = self.to_coo_arrays()
        return COOMatrix(self.shape, rows, cols, vals)

    def to_csr(self):
        from repro.formats.convert import csc_to_csr

        return csc_to_csr(self)

    # ------------------------------------------------------------------
    # Reference kernels
    # ------------------------------------------------------------------
    def vecmat(self, x: np.ndarray) -> np.ndarray:
        """Plain arithmetic ``x^T A`` over the (+, *) semiring — the
        reference for the OS-dataflow ``vxm``."""
        x = np.asarray(x)
        if x.shape != (self.nrows,):
            raise ValueError(f"vector length {x.shape} does not match nrows {self.nrows}")
        products = self.data * x[self.indices]
        out = np.zeros(self.ncols, dtype=np.result_type(self.data, x))
        col_ids = np.repeat(np.arange(self.ncols, dtype=np.int64), self.col_nnz())
        np.add.at(out, col_ids, products)
        return out
