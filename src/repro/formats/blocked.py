"""Blocked dual sparse storage — the paper's UOP-CP-CP format.

Section IV-E2: the naive dual storage duplicates every coordinate and
value. The blocked format instead tiles the matrix into ``B x B``
non-zero blocks and

- stores the block *contents* once, shared by both orientations, with
  intra-block coordinates that fit in a single byte when ``B <= 256``;
- keeps two cheap block-level indices (a block-CSR and a block-CSC of
  *pointers to blocks*), whose size scales with the number of non-zero
  blocks rather than the number of non-zeros.

In FiberTree terms this is Uncompressed-Offset-Pointer over block rows
(or block columns), Compressed-Pointer over block coordinates, and
Compressed-Pointer over intra-block coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.compressed import INDEX_BYTES, VALUE_BYTES
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

#: Intra-block coordinates need one byte per dimension when B <= 256.
LOCAL_COORD_BYTES = 1


@dataclass
class BlockedDualStorage:
    """Shared-payload blocked dual storage.

    Attributes
    ----------
    shape:
        Logical matrix shape.
    block_size:
        Tile edge ``B`` (<= 256 so local coordinates fit in one byte).
    block_rows / block_cols:
        Block coordinates of each non-zero block, sorted row-major.
    block_ptr:
        ``n_blocks + 1`` offsets into the payload arrays.
    local_rows / local_cols / vals:
        Per-entry intra-block coordinates and values, stored once.
    row_block_indptr / row_block_ids:
        Block-level CSR: for each block row, which blocks it contains
        (ids index into ``block_rows``/``block_cols``/``block_ptr``).
    col_block_indptr / col_block_ids:
        Block-level CSC over the same shared payload.
    """

    shape: Tuple[int, int]
    block_size: int
    block_rows: np.ndarray
    block_cols: np.ndarray
    block_ptr: np.ndarray
    local_rows: np.ndarray
    local_cols: np.ndarray
    vals: np.ndarray
    row_block_indptr: np.ndarray = field(repr=False, default=None)
    row_block_ids: np.ndarray = field(repr=False, default=None)
    col_block_indptr: np.ndarray = field(repr=False, default=None)
    col_block_ids: np.ndarray = field(repr=False, default=None)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, block_size: int = 256) -> "BlockedDualStorage":
        if not 1 <= block_size <= 256:
            raise FormatError(
                f"block_size must be in [1, 256] for 1-byte local coordinates, "
                f"got {block_size}"
            )
        dedup = coo.deduplicate()
        brow = dedup.rows // block_size
        bcol = dedup.cols // block_size
        order = np.lexsort((dedup.cols, dedup.rows, bcol, brow))
        brow, bcol = brow[order], bcol[order]
        rows, cols, vals = dedup.rows[order], dedup.cols[order], dedup.vals[order]

        n_block_cols = max(1, -(-dedup.ncols // block_size))
        keys = brow * n_block_cols + bcol
        if keys.size:
            boundaries = np.concatenate(([True], keys[1:] != keys[:-1]))
        else:
            boundaries = np.zeros(0, dtype=bool)
        block_start = np.flatnonzero(boundaries)
        block_ptr = np.concatenate((block_start, [keys.size])).astype(np.int64)
        block_rows = brow[block_start]
        block_cols = bcol[block_start]

        out = cls(
            shape=dedup.shape,
            block_size=block_size,
            block_rows=block_rows.astype(np.int64),
            block_cols=block_cols.astype(np.int64),
            block_ptr=block_ptr,
            local_rows=(rows % block_size).astype(np.uint8),
            local_cols=(cols % block_size).astype(np.uint8),
            vals=vals,
        )
        out._build_block_indices()
        return out

    @classmethod
    def from_csr(cls, csr: CSRMatrix, block_size: int = 256) -> "BlockedDualStorage":
        return cls.from_coo(csr.to_coo(), block_size)

    def _build_block_indices(self) -> None:
        """Build the two block-level orientation indices."""
        n_brow = max(1, -(-self.shape[0] // self.block_size))
        n_bcol = max(1, -(-self.shape[1] // self.block_size))
        ids = np.arange(self.n_blocks, dtype=np.int64)

        counts = np.bincount(self.block_rows, minlength=n_brow)
        self.row_block_indptr = np.zeros(n_brow + 1, dtype=np.int64)
        np.cumsum(counts, out=self.row_block_indptr[1:])
        self.row_block_ids = ids  # blocks are already sorted row-major

        col_order = np.lexsort((self.block_rows, self.block_cols))
        counts = np.bincount(self.block_cols, minlength=n_bcol)
        self.col_block_indptr = np.zeros(n_bcol + 1, dtype=np.int64)
        np.cumsum(counts, out=self.col_block_indptr[1:])
        self.col_block_ids = ids[col_order]

    # ------------------------------------------------------------------
    # Properties and access
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return int(self.block_rows.size)

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def block(self, block_id: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(global_rows, global_cols, vals)`` of one block."""
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(f"block {block_id} out of range for {self.n_blocks}")
        lo, hi = int(self.block_ptr[block_id]), int(self.block_ptr[block_id + 1])
        base_r = int(self.block_rows[block_id]) * self.block_size
        base_c = int(self.block_cols[block_id]) * self.block_size
        return (
            base_r + self.local_rows[lo:hi].astype(np.int64),
            base_c + self.local_cols[lo:hi].astype(np.int64),
            self.vals[lo:hi],
        )

    def blocks_in_block_row(self, block_row: int) -> np.ndarray:
        """Block ids stored in one block row (IS-orientation access)."""
        lo = int(self.row_block_indptr[block_row])
        hi = int(self.row_block_indptr[block_row + 1])
        return self.row_block_ids[lo:hi]

    def blocks_in_block_col(self, block_col: int) -> np.ndarray:
        """Block ids stored in one block column (OS-orientation access)."""
        lo = int(self.col_block_indptr[block_col])
        hi = int(self.col_block_indptr[block_col + 1])
        return self.col_block_ids[lo:hi]

    def to_coo(self) -> COOMatrix:
        """Reconstruct the full matrix (round-trip check in tests)."""
        base_r = np.repeat(self.block_rows, np.diff(self.block_ptr)) * self.block_size
        base_c = np.repeat(self.block_cols, np.diff(self.block_ptr)) * self.block_size
        return COOMatrix(
            self.shape,
            base_r + self.local_rows.astype(np.int64),
            base_c + self.local_cols.astype(np.int64),
            self.vals.copy(),
        )

    # ------------------------------------------------------------------
    # Storage accounting (Fig 20a)
    # ------------------------------------------------------------------
    def payload_bytes(self) -> int:
        """Shared block payload: two 1-byte local coordinates + value per
        non-zero, plus block extent pointers."""
        per_entry = 2 * LOCAL_COORD_BYTES + VALUE_BYTES
        return self.nnz * per_entry + self.block_ptr.size * INDEX_BYTES

    def index_bytes(self) -> int:
        """Both block-level orientation indices: block coordinates plus
        block-id pointer lists plus the two uncompressed offset arrays."""
        block_coord = (self.block_rows.size + self.block_cols.size) * INDEX_BYTES
        pointer_lists = (self.row_block_ids.size + self.col_block_ids.size) * INDEX_BYTES
        offsets = (self.row_block_indptr.size + self.col_block_indptr.size) * INDEX_BYTES
        return block_coord + pointer_lists + offsets

    def storage_bytes(self) -> int:
        """Total footprint of the blocked dual storage."""
        return self.payload_bytes() + self.index_bytes()
