"""Sparse tensor storage formats, implemented from scratch.

The paper's Sparsepipe buffer keeps the input matrix in a *dual* CSC+CSR
layout (Section IV-B) and optionally compresses it with a blocked
UOP-CP-CP fibertree layout (Section IV-E2). This package provides:

- :class:`COOMatrix`, :class:`CSRMatrix`, :class:`CSCMatrix` - the basic
  formats with conversions between them,
- :class:`DualStorage` - the naive CSC+CSR duplication with exact byte
  accounting,
- :class:`BlockedDualStorage` - the blocked compressed dual storage,
- MatrixMarket I/O (:func:`read_matrix_market`, :func:`write_matrix_market`).
"""

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.convert import (
    coo_to_compressed,
    csr_to_csc,
    csc_to_csr,
)
from repro.formats.dual import DualStorage
from repro.formats.blocked import BlockedDualStorage
from repro.formats.matrix_market import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "DualStorage",
    "BlockedDualStorage",
    "coo_to_compressed",
    "csr_to_csc",
    "csc_to_csr",
    "read_matrix_market",
    "write_matrix_market",
]
