"""Shared experiment infrastructure.

:class:`ExperimentContext` memoizes the expensive intermediate products
(preprocessed matrices, functional characterization runs, simulation
results) so the per-figure drivers can share one cross-product sweep.

Architecture dispatch goes through the engine registry
(:mod:`repro.engine.registry`) — every registered model, including
``software_oei``, runs through the same :meth:`simulate` path. Result
keys are content hashes (:meth:`SparsepipeConfig.cache_key`), shared
by the optional on-disk cache (``cache_dir``) so repeated figure and
benchmark runs are near-free, and :meth:`simulate_many` fans a sweep
out over a process pool with deterministic, serial-identical results.

Resilience (:mod:`repro.resilience`): the fan-out is supervised — a
worker killed mid-sweep (``BrokenProcessPool``) degrades to in-process
execution instead of killing the sweep, and the ``on_error`` policy
(``"raise"`` | ``"skip"`` | ``"retry"``) governs per-point failures.
Skipped/exhausted points keep a ``status="failed"`` manifest (their
result slot is ``None``), retried points carry their SP602 records,
and corrupt disk-cache entries are quarantined (SP604) — partial
sweeps are first-class results.

Observability (:mod:`repro.obs`): every fresh simulation reports
through the context's :class:`~repro.obs.metrics.MetricsRegistry`
(``context.metrics`` / :meth:`ExperimentContext.metrics_report`), and
every produced or cache-served result carries a
:class:`~repro.obs.manifest.RunManifest`
(:meth:`ExperimentContext.manifest`) so sweeps stay auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult
from repro.engine.cache import ResultCache
from repro.engine.instrumentation import DiagnosticsObserver
from repro.engine.registry import arch_names, get_arch, run_engine
from repro.errors import Diagnostic
from repro.resilience.faults import maybe_die
from repro.resilience.supervisor import (
    DEFAULT_RETRIES,
    POLICIES,
    FanoutOutcome,
    supervised_map,
)
from repro.scheduler.base import is_distributed
from repro.graphblas.matrix import Matrix
from repro.matrices.suite import SUITE, load_suite_matrix, suite_names
from repro.obs.manifest import RunManifest, Stopwatch, build_manifest
from repro.obs.metrics import MetricsRegistry, registry_from_result
from repro.preprocess.pipeline import PreprocessResult, preprocess
from repro.workloads.registry import get_workload, workload_names

#: Architectures the experiments compare (the engine registry's view).
ARCHITECTURES = arch_names()

#: Workloads whose loop body is naturally memory-bound (Fig 21 separates
#: these from gmres/gcn).
MEMORY_BOUND_WORKLOADS = (
    "pr", "kcore", "bfs", "sssp", "kpp", "knn", "label", "cg", "bgs",
)

#: The four representative (workload, matrix) pairs of Fig 15.
FIG15_PAIRS = (("sssp", "bu"), ("knn", "eu"), ("kcore", "eu"), ("sssp", "wi"))

#: The four applications compared against the GPU (Fig 17).
GPU_WORKLOADS = ("bfs", "kcore", "pr", "sssp")

#: A simulation point: (architecture, workload, matrix).
Point = Tuple[str, str, str]


@dataclass
class ExperimentContext:
    """Memoizing driver for the full (workload x matrix x arch) sweep.

    ``workloads``/``matrices`` default to the full Table-III / Table-I
    sets; pass subsets for quick exploratory runs and tests.
    ``cache_dir`` enables the persistent on-disk result cache;
    ``max_workers`` sets the default process-pool width of
    :meth:`simulate_many` (``None`` = serial). ``on_error`` is the
    default per-point failure policy of :meth:`simulate_many`
    (``"raise"`` | ``"skip"`` | ``"retry"``), ``retries`` bounds the
    re-attempts under ``"retry"``, and ``timeout_s`` arms the
    per-point watchdog for in-process attempts.
    """

    config: SparsepipeConfig = field(default_factory=SparsepipeConfig)
    reorder: Optional[str] = "vanilla"
    block_size: Optional[int] = 256
    workloads: Optional[Tuple[str, ...]] = None
    matrices: Optional[Tuple[str, ...]] = None
    cache_dir: Optional[Union[str, Path]] = None
    #: Byte budget of the on-disk store (None = unbounded); the store
    #: LRU-evicts past it and reports ``cache.evicted`` metrics.
    cache_max_bytes: Optional[int] = None
    #: Shard count of the on-disk store (None = the store's default).
    cache_shards: Optional[int] = None
    max_workers: Optional[int] = None
    on_error: str = "raise"
    retries: int = DEFAULT_RETRIES
    timeout_s: Optional[float] = None
    #: Scheduler backend name for :meth:`simulate_many` fan-outs
    #: (``"inprocess"`` | ``"localpool"`` | ``"spool"``); ``None``
    #: keeps the historical heuristic — a local pool when both
    #: ``max_workers`` and the missing-point count exceed one.
    scheduler: Optional[str] = None

    def __post_init__(self) -> None:
        if self.on_error not in POLICIES:
            from repro.errors import ConfigError

            raise ConfigError(
                f"on_error must be one of {POLICIES}, got {self.on_error!r}")
        if self.scheduler is not None:
            is_distributed(self.scheduler)  # ConfigError on unknown names
        self._preps: Dict[Tuple, PreprocessResult] = {}
        self._graphblas: Dict[str, Matrix] = {}
        self._profiles: Dict[Tuple[str, str], WorkloadProfile] = {}
        self._results: Dict[Tuple, SimResult] = {}
        #: Sweep-wide metrics: every fresh simulation reports through
        #: the one-schema registry (cycles, DRAM bytes by category,
        #: buffer peaks, ...), plus cache hit/miss counters.
        self.metrics = MetricsRegistry()
        self._disk: Optional[ResultCache] = (
            ResultCache(
                self.cache_dir,
                shards=self.cache_shards,
                max_bytes=self.cache_max_bytes,
                metrics=self.metrics,
            )
            if self.cache_dir else None
        )
        #: Run manifests by result key — provenance for every result
        #: this context has produced or served (``from_cache`` marks
        #: disk-cache hits).
        self.manifests: Dict[Tuple, RunManifest] = {}
        #: Collects every verifier diagnostic the sweep would otherwise
        #: silently suppress (warnings on otherwise-clean workloads);
        #: counts mirror into :attr:`metrics` under ``diagnostics.*``.
        self.diagnostics = DiagnosticsObserver(registry=self.metrics)
        self._linted: set = set()
        #: SP6xx fault records awaiting the manifest of their point
        #: (cache quarantines seen on the miss, retries seen during the
        #: fan-out); :meth:`_record_fresh` folds them in.
        self._pending_faults: Dict[Tuple, List[Diagnostic]] = {}

    # ------------------------------------------------------------------
    # Cached intermediates
    # ------------------------------------------------------------------
    def graphblas_matrix(self, matrix_name: str) -> Matrix:
        if matrix_name not in self._graphblas:
            self._graphblas[matrix_name] = Matrix(load_suite_matrix(matrix_name))
        return self._graphblas[matrix_name]

    def prepared(
        self,
        matrix_name: str,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> PreprocessResult:
        """Preprocessed matrix; pass explicit ``reorder``/``block_size``
        for the Fig 19/20 sensitivity variants."""
        if reorder == "default":
            reorder = self.reorder
        if block_size == "default":
            block_size = self.block_size
        key = (matrix_name, reorder, block_size)
        if key not in self._preps:
            self._preps[key] = preprocess(
                load_suite_matrix(matrix_name), reorder=reorder, block_size=block_size
            )
        return self._preps[key]

    def profile(self, workload_name: str, matrix_name: str) -> WorkloadProfile:
        """Workload profile from the functional characterization run."""
        key = (workload_name, matrix_name)
        if key not in self._profiles:
            workload = get_workload(workload_name)
            self._lint_once(workload_name, workload)
            self._profiles[key] = workload.profile(self.graphblas_matrix(matrix_name))
        return self._profiles[key]

    def _lint_once(self, workload_name: str, workload) -> None:
        """Feed the workload's verifier diagnostics (warnings the
        default ``verify="error"`` mode suppresses) to the diagnostics
        observer — once per workload, not once per matrix."""
        if workload_name in self._linted:
            return
        self._linted.add(workload_name)
        from repro.analysis.passes import verify_graph

        for diag in verify_graph(workload.build_graph()):
            self.diagnostics.on_diagnostic(diag)

    def lint_health(self) -> Dict[str, float]:
        """Suppressed-diagnostic counts across every workload this
        context has profiled (severity and code histograms)."""
        return self.diagnostics.as_dict()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _result_key(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        cfg: SparsepipeConfig,
        reorder: Optional[str],
        block_size: Optional[int],
    ) -> Tuple:
        """Content-based result key (never ``id()``: equal-valued
        configs share one entry, distinct configs never collide)."""
        return (
            arch, workload_name, matrix_name,
            cfg.cache_key(), reorder, block_size,
        )

    def point_key(
        self,
        point: Point,
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> Tuple:
        """Public content key for one ``(arch, workload, matrix)``
        point under this context's configuration — the coalescing key
        of the service layer (:mod:`repro.service`): two submissions
        with equal keys are the same simulation."""
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        arch, workload, matrix = point
        return self._result_key(arch, workload, matrix, cfg, reorder, block_size)

    def result_for(self, key: Tuple) -> Optional[SimResult]:
        """Result already held in the in-memory layer for one
        :meth:`point_key`, ``None`` when the point has not been
        simulated (or cache-served) by this context yet. Never touches
        disk — the service layer uses this as its zero-cost fast path
        and for fanning a finished batch out to coalesced waiters."""
        return self._results.get(key)

    def _resolve(self, reorder, block_size):
        if reorder == "default":
            reorder = self.reorder
        if block_size == "default":
            block_size = self.block_size
        return reorder, block_size

    def _disk_lookup(self, key: Tuple):
        """On-disk cache probe that also accounts quarantine events:
        any SP604 diagnostic the probe produced feeds the sweep
        observer and is attached to the point's next fresh manifest."""
        if self._disk is None:
            return None
        entry = self._disk.get_entry(*key)
        for diag in self._disk.pop_diagnostics():
            self.diagnostics.on_diagnostic(diag)
            self.metrics.counter("cache.quarantined").inc()
            self._pending_faults.setdefault(key, []).append(diag)
        return entry

    def simulate(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> SimResult:
        """Run (and cache) one architecture on one (workload, matrix)."""
        get_arch(arch)  # raises ConfigError on unknown architectures
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        key = self._result_key(arch, workload_name, matrix_name, cfg, reorder, block_size)
        if key in self._results:
            self.metrics.counter("cache.memory_hits").inc()
            return self._results[key]
        entry = self._disk_lookup(key)
        if entry is not None:
            self.metrics.counter("cache.disk_hits").inc()
            self._results[key] = entry.result
            self.manifests[key] = (
                entry.manifest
                if entry.manifest is not None
                else self._manifest_for(key, entry.result, from_cache=True)
            )
            return entry.result
        profile = self.profile(workload_name, matrix_name)
        prep = self.prepared(matrix_name, reorder=reorder, block_size=block_size)
        paper_nnz = SUITE[matrix_name].paper_nnz
        with Stopwatch() as watch:
            result = run_engine(arch, cfg, profile, prep, paper_nnz=paper_nnz)
        self._record_fresh(key, result, wall_time_s=watch.elapsed)
        return result

    def _manifest_for(
        self, key: Tuple, result: SimResult,
        wall_time_s: Optional[float] = None, from_cache: bool = False,
    ) -> RunManifest:
        arch, workload, matrix, _config_key, reorder, block_size = key
        return build_manifest(
            arch, workload, matrix, _config_key, reorder, block_size,
            result=result, wall_time_s=wall_time_s, from_cache=from_cache,
        )

    def _record_fresh(
        self, key: Tuple, result: SimResult,
        wall_time_s: Optional[float] = None,
        faults: Sequence[Diagnostic] = (),
    ) -> None:
        """Account one freshly simulated result: aggregate its metrics
        into the sweep registry, build its manifest (folding in any
        SP6xx events the point survived), persist both."""
        self._results[key] = result
        registry_from_result(result, registry=self.metrics)
        events = self._pending_faults.pop(key, []) + list(faults)
        retried = any(d.code in ("SP601", "SP602") for d in events)
        arch, workload, matrix, config_key, reorder, block_size = key
        manifest = build_manifest(
            arch, workload, matrix, config_key, reorder, block_size,
            result=result, wall_time_s=wall_time_s,
            status="retried" if retried else "ok",
            faults=[d.as_dict() for d in events],
        )
        self.manifests[key] = manifest
        if self._disk is not None:
            self._disk.put(*key, result=result, manifest=manifest)

    def _record_failed(self, key: Tuple, error: str,
                       faults: Sequence[Diagnostic]) -> None:
        """Account one point that exhausted its attempts: no result,
        but a first-class ``status="failed"`` manifest carrying every
        SP6xx event behind the failure."""
        events = self._pending_faults.pop(key, []) + list(faults)
        arch, workload, matrix, config_key, reorder, block_size = key
        self.manifests[key] = build_manifest(
            arch, workload, matrix, config_key, reorder, block_size,
            status="failed",
            faults=[d.as_dict() for d in events] + [{"error": error}],
        )
        self.metrics.counter("resilience.failures").inc()

    def manifest(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> Optional[RunManifest]:
        """Provenance manifest for one already-simulated point (None
        if :meth:`simulate` has not produced or served it yet)."""
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        key = self._result_key(
            arch, workload_name, matrix_name, cfg, reorder, block_size
        )
        return self.manifests.get(key)

    def metrics_report(self) -> str:
        """The sweep-wide metrics registry as aligned text."""
        return self.metrics.format_text()

    def simulate_many(
        self,
        points: Iterable[Point],
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
        max_workers: Optional[int] = None,
        on_error: Optional[str] = None,
        scheduler: Optional[str] = None,
    ) -> List[Optional[SimResult]]:
        """Simulate many ``(arch, workload, matrix)`` points at once.

        Results come back in input order and are bit-identical to
        calling :meth:`simulate` serially — the fan-out only changes
        wall-clock time. Cached points (in-memory or on-disk) are never
        re-simulated; uncached points are grouped by matrix so each
        worker pre-materializes a matrix once and serves every point
        on it from its local caches. ``max_workers=None`` falls back
        to the context default (serial when that is unset too).

        The fan-out is supervised: a broken process pool (worker
        OOM-killed) degrades to in-process execution with an SP601
        diagnostic instead of raising. ``on_error`` (default: the
        context's policy) governs per-point failures — ``"raise"``
        propagates the first error; ``"skip"`` and ``"retry"`` (which
        re-attempts up to ``self.retries`` times first) record a
        ``status="failed"`` manifest and leave ``None`` in the failed
        point's result slot, so partial sweeps are first-class.

        ``scheduler`` (default: the context's) picks the execution
        substrate by backend name — ``"inprocess"``, ``"localpool"``,
        or ``"spool"`` (``docs/scheduling.md``); ``None`` keeps the
        historical heuristic. The policy layer, fault semantics, and
        results are identical on every backend; ``scheduler.*``
        counters land in :attr:`metrics` either way.
        """
        points = [tuple(p) for p in points]
        for arch, _, _ in points:
            get_arch(arch)
        policy = self.on_error if on_error is None else on_error
        if policy not in POLICIES:
            from repro.errors import ConfigError

            raise ConfigError(
                f"on_error must be one of {POLICIES}, got {policy!r}")
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        keys = [
            self._result_key(a, w, m, cfg, reorder, block_size)
            for a, w, m in points
        ]

        missing: List[Point] = []
        seen = set()
        for point, key in zip(points, keys):
            if key in self._results or key in seen:
                continue
            entry = self._disk_lookup(key)
            if entry is not None:
                self.metrics.counter("cache.disk_hits").inc()
                self._results[key] = entry.result
                self.manifests[key] = (
                    entry.manifest
                    if entry.manifest is not None
                    else self._manifest_for(key, entry.result, from_cache=True)
                )
                continue
            seen.add(key)
            missing.append(point)

        if missing:
            backend = self.scheduler if scheduler is None else scheduler
            workers = self.max_workers if max_workers is None else max_workers
            distributed = (
                is_distributed(backend) if backend is not None
                else workers is not None and workers > 1 and len(missing) > 1
            )
            if distributed:
                # Group by matrix so per-worker chunks reuse the
                # materialized matrix, profile, and preprocessing.
                ordered = sorted(missing, key=lambda p: (p[2], p[1], p[0]))
                outcome = supervised_map(
                    _simulate_one_point,
                    ordered,
                    max_workers=workers,
                    initializer=_init_worker_context,
                    initargs=(cfg, reorder, block_size),
                    on_error=policy,
                    retries=self.retries,
                    timeout_s=self.timeout_s,
                    labels=["/".join(p) for p in ordered],
                    scheduler=backend,
                    metrics=self.metrics,
                )
            else:
                ordered = missing
                outcome = supervised_map(
                    lambda p: self.simulate(
                        p[0], p[1], p[2],
                        config=cfg, reorder=reorder, block_size=block_size,
                    ),
                    ordered,
                    max_workers=1,
                    on_error=policy,
                    retries=self.retries,
                    timeout_s=self.timeout_s,
                    labels=["/".join(p) for p in ordered],
                    scheduler="inprocess" if backend is not None else None,
                    metrics=self.metrics,
                )
            self._absorb_outcome(outcome, ordered, cfg, reorder, block_size)
        return [self._results.get(key) for key in keys]

    def _absorb_outcome(
        self, outcome: FanoutOutcome, ordered: List[Point],
        cfg: SparsepipeConfig, reorder, block_size,
    ) -> None:
        """Fold one supervised fan-out into the context: fresh results
        with their retry records, failed points as failure manifests,
        fan-out-wide degradations into the sweep diagnostics."""
        for diag in outcome.diagnostics:
            self.diagnostics.on_diagnostic(diag)
            self.metrics.counter("resilience.pool_breaks").inc()
        failed = outcome.failed_indices()
        for index, point in enumerate(ordered):
            key = self._result_key(*point, cfg, reorder, block_size)
            retried = outcome.retried.get(index, [])
            for diag in retried:
                self.diagnostics.on_diagnostic(diag)
                self.metrics.counter("resilience.retries").inc()
            # Pool-wide degradation marks every affected point's manifest.
            events = list(outcome.diagnostics) + retried
            if index in failed:
                failure = failed[index]
                self.diagnostics.on_diagnostic(failure.diagnostic)
                self._record_failed(
                    key, failure.error, events + [failure.diagnostic])
            elif key in self._results:
                # The in-process path already recorded it via simulate();
                # fold late-arriving fault records into its manifest.
                if events:
                    self._amend_manifest(key, events)
            else:
                # Wall time is unknown per point in the fan-out;
                # the manifest records None rather than a guess.
                self._record_fresh(key, outcome.results[index], faults=events)

    def _amend_manifest(self, key: Tuple,
                        events: Sequence[Diagnostic]) -> None:
        from dataclasses import replace

        manifest = self.manifests.get(key)
        if manifest is None:
            return
        self.manifests[key] = replace(
            manifest,
            status="retried" if manifest.status == "ok" else manifest.status,
            faults=manifest.faults + tuple(d.as_dict() for d in events),
        )

    def speedup(
        self, workload_name: str, matrix_name: str, over: str,
        config: Optional[SparsepipeConfig] = None,
    ) -> float:
        """Sparsepipe speedup over a baseline architecture."""
        sp = self.simulate("sparsepipe", workload_name, matrix_name, config=config)
        base = self.simulate(over, workload_name, matrix_name, config=config)
        return sp.speedup_over(base)

    # ------------------------------------------------------------------
    # Sweep helpers
    # ------------------------------------------------------------------
    def all_workloads(self) -> Tuple[str, ...]:
        if self.workloads is not None:
            return self.workloads
        return tuple(workload_names())

    def all_matrices(self) -> Tuple[str, ...]:
        if self.matrices is not None:
            return self.matrices
        return tuple(suite_names())

    def cross_product(
        self, archs: Sequence[str], workloads: Optional[Sequence[str]] = None,
    ) -> List[Point]:
        """The (arch x workload x matrix) point list the fig drivers
        feed to :meth:`simulate_many`."""
        workloads = self.all_workloads() if workloads is None else workloads
        return [
            (arch, workload, matrix)
            for workload in workloads
            for matrix in self.all_matrices()
            for arch in archs
        ]


# ----------------------------------------------------------------------
# simulate_many worker side (module-level: must be picklable)
# ----------------------------------------------------------------------
_WORKER_CONTEXT: Optional[ExperimentContext] = None


def _init_worker_context(
    config: SparsepipeConfig, reorder: Optional[str], block_size: Optional[int]
) -> None:
    """Build one memoizing context per worker process — matrices,
    profiles, and preprocessing materialize once per worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExperimentContext(
        config=config, reorder=reorder, block_size=block_size
    )


def _simulate_one_point(point: Point) -> SimResult:
    arch, workload, matrix = point
    # Chaos-test site: no-op unless a FaultPlan with a worker_death
    # fault is active AND this process is a marked pool worker.
    maybe_die("parallel.worker", "/".join(point))
    return _WORKER_CONTEXT.simulate(arch, workload, matrix)
