"""Shared experiment infrastructure.

:class:`ExperimentContext` memoizes the expensive intermediate products
(preprocessed matrices, functional characterization runs, simulation
results) so the per-figure drivers can share one cross-product sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.simulator import SparsepipeSimulator
from repro.arch.stats import SimResult
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.baselines.ideal_accelerator import IdealAccelerator
from repro.baselines.oracle import OracleAccelerator
from repro.errors import ConfigError
from repro.graphblas.matrix import Matrix
from repro.matrices.suite import SUITE, load_suite_matrix, suite_names
from repro.preprocess.pipeline import PreprocessResult, preprocess
from repro.workloads.registry import get_workload, workload_names

#: Architectures the experiments compare.
ARCHITECTURES = ("sparsepipe", "ideal", "oracle", "cpu", "gpu")

#: Workloads whose loop body is naturally memory-bound (Fig 21 separates
#: these from gmres/gcn).
MEMORY_BOUND_WORKLOADS = tuple(
    w for w in ("pr", "kcore", "bfs", "sssp", "kpp", "knn", "label", "cg", "bgs")
)

#: The four representative (workload, matrix) pairs of Fig 15.
FIG15_PAIRS = (("sssp", "bu"), ("knn", "eu"), ("kcore", "eu"), ("sssp", "wi"))

#: The four applications compared against the GPU (Fig 17).
GPU_WORKLOADS = ("bfs", "kcore", "pr", "sssp")


@dataclass
class ExperimentContext:
    """Memoizing driver for the full (workload x matrix x arch) sweep.

    ``workloads``/``matrices`` default to the full Table-III / Table-I
    sets; pass subsets for quick exploratory runs and tests.
    """

    config: SparsepipeConfig = field(default_factory=SparsepipeConfig)
    reorder: Optional[str] = "vanilla"
    block_size: Optional[int] = 256
    workloads: Optional[Tuple[str, ...]] = None
    matrices: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        self._preps: Dict[Tuple, PreprocessResult] = {}
        self._graphblas: Dict[str, Matrix] = {}
        self._profiles: Dict[Tuple[str, str], WorkloadProfile] = {}
        self._results: Dict[Tuple, SimResult] = {}

    # ------------------------------------------------------------------
    # Cached intermediates
    # ------------------------------------------------------------------
    def graphblas_matrix(self, matrix_name: str) -> Matrix:
        if matrix_name not in self._graphblas:
            self._graphblas[matrix_name] = Matrix(load_suite_matrix(matrix_name))
        return self._graphblas[matrix_name]

    def prepared(
        self,
        matrix_name: str,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> PreprocessResult:
        """Preprocessed matrix; pass explicit ``reorder``/``block_size``
        for the Fig 19/20 sensitivity variants."""
        if reorder == "default":
            reorder = self.reorder
        if block_size == "default":
            block_size = self.block_size
        key = (matrix_name, reorder, block_size)
        if key not in self._preps:
            self._preps[key] = preprocess(
                load_suite_matrix(matrix_name), reorder=reorder, block_size=block_size
            )
        return self._preps[key]

    def profile(self, workload_name: str, matrix_name: str) -> WorkloadProfile:
        """Workload profile from the functional characterization run."""
        key = (workload_name, matrix_name)
        if key not in self._profiles:
            workload = get_workload(workload_name)
            self._profiles[key] = workload.profile(self.graphblas_matrix(matrix_name))
        return self._profiles[key]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> SimResult:
        """Run (and cache) one architecture on one (workload, matrix)."""
        if arch not in ARCHITECTURES:
            raise ConfigError(f"unknown architecture {arch!r}; expected {ARCHITECTURES}")
        cfg = config or self.config
        key = (arch, workload_name, matrix_name, id(config), reorder, block_size)
        if key in self._results:
            return self._results[key]
        profile = self.profile(workload_name, matrix_name)
        prep = self.prepared(matrix_name, reorder=reorder, block_size=block_size)
        paper_nnz = SUITE[matrix_name].paper_nnz
        if arch == "sparsepipe":
            result = SparsepipeSimulator(cfg).run(profile, prep, paper_nnz=paper_nnz)
        elif arch == "ideal":
            result = IdealAccelerator(cfg).run(profile, prep, paper_nnz=paper_nnz)
        elif arch == "oracle":
            result = OracleAccelerator(cfg).run(profile, prep, paper_nnz=paper_nnz)
        elif arch == "cpu":
            result = CPUModel().run(profile, prep, paper_nnz=paper_nnz)
        else:
            result = GPUModel().run(profile, prep, paper_nnz=paper_nnz)
        self._results[key] = result
        return result

    def speedup(
        self, workload_name: str, matrix_name: str, over: str,
        config: Optional[SparsepipeConfig] = None,
    ) -> float:
        """Sparsepipe speedup over a baseline architecture."""
        sp = self.simulate("sparsepipe", workload_name, matrix_name, config=config)
        base = self.simulate(over, workload_name, matrix_name, config=config)
        return sp.speedup_over(base)

    # ------------------------------------------------------------------
    # Sweep helpers
    # ------------------------------------------------------------------
    def all_workloads(self) -> Tuple[str, ...]:
        if self.workloads is not None:
            return self.workloads
        return tuple(workload_names())

    def all_matrices(self) -> Tuple[str, ...]:
        if self.matrices is not None:
            return self.matrices
        return tuple(suite_names())
