"""Shared experiment infrastructure.

:class:`ExperimentContext` memoizes the expensive intermediate products
(preprocessed matrices, functional characterization runs, simulation
results) so the per-figure drivers can share one cross-product sweep.

Architecture dispatch goes through the engine registry
(:mod:`repro.engine.registry`) — every registered model, including
``software_oei``, runs through the same :meth:`simulate` path. Result
keys are content hashes (:meth:`SparsepipeConfig.cache_key`), shared
by the optional on-disk cache (``cache_dir``) so repeated figure and
benchmark runs are near-free, and :meth:`simulate_many` fans a sweep
out over a process pool with deterministic, serial-identical results.

Observability (:mod:`repro.obs`): every fresh simulation reports
through the context's :class:`~repro.obs.metrics.MetricsRegistry`
(``context.metrics`` / :meth:`ExperimentContext.metrics_report`), and
every produced or cache-served result carries a
:class:`~repro.obs.manifest.RunManifest`
(:meth:`ExperimentContext.manifest`) so sweeps stay auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult
from repro.engine.cache import ResultCache
from repro.engine.instrumentation import DiagnosticsObserver
from repro.engine.parallel import parallel_map
from repro.engine.registry import arch_names, get_arch, run_engine
from repro.graphblas.matrix import Matrix
from repro.matrices.suite import SUITE, load_suite_matrix, suite_names
from repro.obs.manifest import RunManifest, Stopwatch, build_manifest
from repro.obs.metrics import MetricsRegistry, registry_from_result
from repro.preprocess.pipeline import PreprocessResult, preprocess
from repro.workloads.registry import get_workload, workload_names

#: Architectures the experiments compare (the engine registry's view).
ARCHITECTURES = arch_names()

#: Workloads whose loop body is naturally memory-bound (Fig 21 separates
#: these from gmres/gcn).
MEMORY_BOUND_WORKLOADS = (
    "pr", "kcore", "bfs", "sssp", "kpp", "knn", "label", "cg", "bgs",
)

#: The four representative (workload, matrix) pairs of Fig 15.
FIG15_PAIRS = (("sssp", "bu"), ("knn", "eu"), ("kcore", "eu"), ("sssp", "wi"))

#: The four applications compared against the GPU (Fig 17).
GPU_WORKLOADS = ("bfs", "kcore", "pr", "sssp")

#: A simulation point: (architecture, workload, matrix).
Point = Tuple[str, str, str]


@dataclass
class ExperimentContext:
    """Memoizing driver for the full (workload x matrix x arch) sweep.

    ``workloads``/``matrices`` default to the full Table-III / Table-I
    sets; pass subsets for quick exploratory runs and tests.
    ``cache_dir`` enables the persistent on-disk result cache;
    ``max_workers`` sets the default process-pool width of
    :meth:`simulate_many` (``None`` = serial).
    """

    config: SparsepipeConfig = field(default_factory=SparsepipeConfig)
    reorder: Optional[str] = "vanilla"
    block_size: Optional[int] = 256
    workloads: Optional[Tuple[str, ...]] = None
    matrices: Optional[Tuple[str, ...]] = None
    cache_dir: Optional[Union[str, Path]] = None
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        self._preps: Dict[Tuple, PreprocessResult] = {}
        self._graphblas: Dict[str, Matrix] = {}
        self._profiles: Dict[Tuple[str, str], WorkloadProfile] = {}
        self._results: Dict[Tuple, SimResult] = {}
        self._disk: Optional[ResultCache] = (
            ResultCache(self.cache_dir) if self.cache_dir else None
        )
        #: Sweep-wide metrics: every fresh simulation reports through
        #: the one-schema registry (cycles, DRAM bytes by category,
        #: buffer peaks, ...), plus cache hit/miss counters.
        self.metrics = MetricsRegistry()
        #: Run manifests by result key — provenance for every result
        #: this context has produced or served (``from_cache`` marks
        #: disk-cache hits).
        self.manifests: Dict[Tuple, RunManifest] = {}
        #: Collects every verifier diagnostic the sweep would otherwise
        #: silently suppress (warnings on otherwise-clean workloads);
        #: counts mirror into :attr:`metrics` under ``diagnostics.*``.
        self.diagnostics = DiagnosticsObserver(registry=self.metrics)
        self._linted: set = set()

    # ------------------------------------------------------------------
    # Cached intermediates
    # ------------------------------------------------------------------
    def graphblas_matrix(self, matrix_name: str) -> Matrix:
        if matrix_name not in self._graphblas:
            self._graphblas[matrix_name] = Matrix(load_suite_matrix(matrix_name))
        return self._graphblas[matrix_name]

    def prepared(
        self,
        matrix_name: str,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> PreprocessResult:
        """Preprocessed matrix; pass explicit ``reorder``/``block_size``
        for the Fig 19/20 sensitivity variants."""
        if reorder == "default":
            reorder = self.reorder
        if block_size == "default":
            block_size = self.block_size
        key = (matrix_name, reorder, block_size)
        if key not in self._preps:
            self._preps[key] = preprocess(
                load_suite_matrix(matrix_name), reorder=reorder, block_size=block_size
            )
        return self._preps[key]

    def profile(self, workload_name: str, matrix_name: str) -> WorkloadProfile:
        """Workload profile from the functional characterization run."""
        key = (workload_name, matrix_name)
        if key not in self._profiles:
            workload = get_workload(workload_name)
            self._lint_once(workload_name, workload)
            self._profiles[key] = workload.profile(self.graphblas_matrix(matrix_name))
        return self._profiles[key]

    def _lint_once(self, workload_name: str, workload) -> None:
        """Feed the workload's verifier diagnostics (warnings the
        default ``verify="error"`` mode suppresses) to the diagnostics
        observer — once per workload, not once per matrix."""
        if workload_name in self._linted:
            return
        self._linted.add(workload_name)
        from repro.analysis.passes import verify_graph

        for diag in verify_graph(workload.build_graph()):
            self.diagnostics.on_diagnostic(diag)

    def lint_health(self) -> Dict[str, float]:
        """Suppressed-diagnostic counts across every workload this
        context has profiled (severity and code histograms)."""
        return self.diagnostics.as_dict()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _result_key(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        cfg: SparsepipeConfig,
        reorder: Optional[str],
        block_size: Optional[int],
    ) -> Tuple:
        """Content-based result key (never ``id()``: equal-valued
        configs share one entry, distinct configs never collide)."""
        return (
            arch, workload_name, matrix_name,
            cfg.cache_key(), reorder, block_size,
        )

    def _resolve(self, reorder, block_size):
        if reorder == "default":
            reorder = self.reorder
        if block_size == "default":
            block_size = self.block_size
        return reorder, block_size

    def simulate(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> SimResult:
        """Run (and cache) one architecture on one (workload, matrix)."""
        get_arch(arch)  # raises ConfigError on unknown architectures
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        key = self._result_key(arch, workload_name, matrix_name, cfg, reorder, block_size)
        if key in self._results:
            self.metrics.counter("cache.memory_hits").inc()
            return self._results[key]
        if self._disk is not None:
            entry = self._disk.get_entry(*key)
            if entry is not None:
                self.metrics.counter("cache.disk_hits").inc()
                self._results[key] = entry.result
                self.manifests[key] = (
                    entry.manifest
                    if entry.manifest is not None
                    else self._manifest_for(key, entry.result, from_cache=True)
                )
                return entry.result
        profile = self.profile(workload_name, matrix_name)
        prep = self.prepared(matrix_name, reorder=reorder, block_size=block_size)
        paper_nnz = SUITE[matrix_name].paper_nnz
        with Stopwatch() as watch:
            result = run_engine(arch, cfg, profile, prep, paper_nnz=paper_nnz)
        self._record_fresh(key, result, wall_time_s=watch.elapsed)
        return result

    def _manifest_for(
        self, key: Tuple, result: SimResult,
        wall_time_s: Optional[float] = None, from_cache: bool = False,
    ) -> RunManifest:
        arch, workload, matrix, _config_key, reorder, block_size = key
        return build_manifest(
            arch, workload, matrix, _config_key, reorder, block_size,
            result=result, wall_time_s=wall_time_s, from_cache=from_cache,
        )

    def _record_fresh(
        self, key: Tuple, result: SimResult,
        wall_time_s: Optional[float] = None,
    ) -> None:
        """Account one freshly simulated result: aggregate its metrics
        into the sweep registry, build its manifest, persist both."""
        self._results[key] = result
        registry_from_result(result, registry=self.metrics)
        manifest = self._manifest_for(key, result, wall_time_s=wall_time_s)
        self.manifests[key] = manifest
        if self._disk is not None:
            self._disk.put(*key, result=result, manifest=manifest)

    def manifest(
        self,
        arch: str,
        workload_name: str,
        matrix_name: str,
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
    ) -> Optional[RunManifest]:
        """Provenance manifest for one already-simulated point (None
        if :meth:`simulate` has not produced or served it yet)."""
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        key = self._result_key(
            arch, workload_name, matrix_name, cfg, reorder, block_size
        )
        return self.manifests.get(key)

    def metrics_report(self) -> str:
        """The sweep-wide metrics registry as aligned text."""
        return self.metrics.format_text()

    def simulate_many(
        self,
        points: Iterable[Point],
        config: Optional[SparsepipeConfig] = None,
        reorder: Optional[str] = "default",
        block_size: object = "default",
        max_workers: Optional[int] = None,
    ) -> List[SimResult]:
        """Simulate many ``(arch, workload, matrix)`` points at once.

        Results come back in input order and are bit-identical to
        calling :meth:`simulate` serially — the fan-out only changes
        wall-clock time. Cached points (in-memory or on-disk) are never
        re-simulated; uncached points are grouped by matrix so each
        worker pre-materializes a matrix once and serves every point
        on it from its local caches. ``max_workers=None`` falls back
        to the context default (serial when that is unset too).
        """
        points = [tuple(p) for p in points]
        for arch, _, _ in points:
            get_arch(arch)
        cfg = config or self.config
        reorder, block_size = self._resolve(reorder, block_size)
        keys = [
            self._result_key(a, w, m, cfg, reorder, block_size)
            for a, w, m in points
        ]

        missing: List[Point] = []
        seen = set()
        for point, key in zip(points, keys):
            if key in self._results or key in seen:
                continue
            if self._disk is not None:
                entry = self._disk.get_entry(*key)
                if entry is not None:
                    self.metrics.counter("cache.disk_hits").inc()
                    self._results[key] = entry.result
                    self.manifests[key] = (
                        entry.manifest
                        if entry.manifest is not None
                        else self._manifest_for(key, entry.result, from_cache=True)
                    )
                    continue
            seen.add(key)
            missing.append(point)

        if missing:
            workers = self.max_workers if max_workers is None else max_workers
            if workers is not None and workers > 1 and len(missing) > 1:
                # Group by matrix so per-worker chunks reuse the
                # materialized matrix, profile, and preprocessing.
                ordered = sorted(missing, key=lambda p: (p[2], p[1], p[0]))
                computed = parallel_map(
                    _simulate_one_point,
                    ordered,
                    max_workers=workers,
                    initializer=_init_worker_context,
                    initargs=(cfg, reorder, block_size),
                )
                for point, result in zip(ordered, computed):
                    key = self._result_key(*point, cfg, reorder, block_size)
                    # Wall time is unknown per point in the fan-out;
                    # the manifest records None rather than a guess.
                    self._record_fresh(key, result)
            else:
                for arch, workload, matrix in missing:
                    self.simulate(
                        arch, workload, matrix,
                        config=cfg, reorder=reorder, block_size=block_size,
                    )
        return [self._results[key] for key in keys]

    def speedup(
        self, workload_name: str, matrix_name: str, over: str,
        config: Optional[SparsepipeConfig] = None,
    ) -> float:
        """Sparsepipe speedup over a baseline architecture."""
        sp = self.simulate("sparsepipe", workload_name, matrix_name, config=config)
        base = self.simulate(over, workload_name, matrix_name, config=config)
        return sp.speedup_over(base)

    # ------------------------------------------------------------------
    # Sweep helpers
    # ------------------------------------------------------------------
    def all_workloads(self) -> Tuple[str, ...]:
        if self.workloads is not None:
            return self.workloads
        return tuple(workload_names())

    def all_matrices(self) -> Tuple[str, ...]:
        if self.matrices is not None:
            return self.matrices
        return tuple(suite_names())

    def cross_product(
        self, archs: Sequence[str], workloads: Optional[Sequence[str]] = None,
    ) -> List[Point]:
        """The (arch x workload x matrix) point list the fig drivers
        feed to :meth:`simulate_many`."""
        workloads = self.all_workloads() if workloads is None else workloads
        return [
            (arch, workload, matrix)
            for workload in workloads
            for matrix in self.all_matrices()
            for arch in archs
        ]


# ----------------------------------------------------------------------
# simulate_many worker side (module-level: must be picklable)
# ----------------------------------------------------------------------
_WORKER_CONTEXT: Optional[ExperimentContext] = None


def _init_worker_context(
    config: SparsepipeConfig, reorder: Optional[str], block_size: Optional[int]
) -> None:
    """Build one memoizing context per worker process — matrices,
    profiles, and preprocessing materialize once per worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExperimentContext(
        config=config, reorder=reorder, block_size=block_size
    )


def _simulate_one_point(point: Point) -> SimResult:
    arch, workload, matrix = point
    return _WORKER_CONTEXT.simulate(arch, workload, matrix)
