"""Fig 18: Sparsepipe performance relative to the oracle accelerator
with perfect inter-operator reuse (paper average: 66.78%)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig18Row:
    workload: str
    fraction_of_oracle: Dict[str, float]  #: matrix -> oracle_time / sp_time

    @property
    def geomean(self) -> float:
        return geomean(self.fraction_of_oracle.values())


def run(context: Optional[ExperimentContext] = None) -> List[Fig18Row]:
    context = context or ExperimentContext()
    context.simulate_many(context.cross_product(("sparsepipe", "oracle")))
    rows: List[Fig18Row] = []
    for workload in context.all_workloads():
        fractions = {}
        for matrix in context.all_matrices():
            sp = context.simulate("sparsepipe", workload, matrix)
            oracle = context.simulate("oracle", workload, matrix)
            fractions[matrix] = oracle.seconds / sp.seconds
        rows.append(Fig18Row(workload, fractions))
    return rows


def average_fraction(rows: List[Fig18Row]) -> float:
    return geomean(v for r in rows for v in r.fraction_of_oracle.values())


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].fraction_of_oracle)
    text = format_table(
        ["app"] + matrices + ["geomean"],
        [
            [r.workload]
            + [100 * r.fraction_of_oracle[m] for m in matrices]
            + [100 * r.geomean]
            for r in rows
        ],
        title="Fig 18: Sparsepipe as % of the oracle accelerator's performance",
    )
    text += f"\naverage {100 * average_fraction(rows):.1f}% (paper: 66.78%)"
    print(text)
    return text


if __name__ == "__main__":
    main()
