"""Fig 16: Sparsepipe speedup over the CPU STA framework.

The paper reports 12.20x-35.14x per-application ranges for the iso-GPU
configuration (excluding GCN, which additionally benefits from
dp4a-like arithmetic and reaches up to 164.84x), and 1.31x-3.57x for
the iso-CPU configuration (the pure OEI-dataflow benefit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.config import CPU_DDR4
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig16Row:
    workload: str
    iso_gpu: Dict[str, float]  #: matrix -> speedup over CPU, iso-GPU config
    iso_cpu: Dict[str, float]  #: matrix -> speedup over CPU, iso-CPU config

    @property
    def iso_gpu_geomean(self) -> float:
        return geomean(self.iso_gpu.values())

    @property
    def iso_cpu_geomean(self) -> float:
        return geomean(self.iso_cpu.values())


def run(context: Optional[ExperimentContext] = None) -> List[Fig16Row]:
    context = context or ExperimentContext()
    iso_cpu_config = context.config.with_memory(CPU_DDR4)
    context.simulate_many(context.cross_product(("cpu", "sparsepipe")))
    context.simulate_many(
        context.cross_product(("sparsepipe",)), config=iso_cpu_config
    )
    rows: List[Fig16Row] = []
    for workload in context.all_workloads():
        iso_gpu, iso_cpu = {}, {}
        for matrix in context.all_matrices():
            cpu = context.simulate("cpu", workload, matrix)
            iso_gpu[matrix] = context.simulate(
                "sparsepipe", workload, matrix
            ).speedup_over(cpu)
            iso_cpu[matrix] = context.simulate(
                "sparsepipe", workload, matrix, config=iso_cpu_config
            ).speedup_over(cpu)
        rows.append(Fig16Row(workload, iso_gpu, iso_cpu))
    return rows


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].iso_gpu)
    text = format_table(
        ["app"] + matrices + ["geomean", "iso-cpu geomean"],
        [
            [r.workload]
            + [r.iso_gpu[m] for m in matrices]
            + [r.iso_gpu_geomean, r.iso_cpu_geomean]
            for r in rows
        ],
        title="Fig 16: Sparsepipe speedup over the CPU framework (iso-GPU; last column iso-CPU)",
    )
    non_gcn = [r for r in rows if r.workload != "gcn"]
    text += (
        f"\niso-GPU geomeans {min(r.iso_gpu_geomean for r in non_gcn):.2f}x-"
        f"{max(r.iso_gpu_geomean for r in non_gcn):.2f}x (paper: 12.20x-35.14x); "
        f"iso-CPU geomeans {min(r.iso_cpu_geomean for r in non_gcn):.2f}x-"
        f"{max(r.iso_cpu_geomean for r in non_gcn):.2f}x (paper: 1.31x-3.57x)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
