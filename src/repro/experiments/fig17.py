"""Fig 17: Sparsepipe speedup over the GPU framework for the four
graph-analytics applications (bfs, kcore, pr, sssp).

The paper reports a 4.65x geometric mean across all matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext, GPU_WORKLOADS
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig17Row:
    workload: str
    speedups: Dict[str, float]

    @property
    def geomean(self) -> float:
        return geomean(self.speedups.values())


def run(context: Optional[ExperimentContext] = None) -> List[Fig17Row]:
    context = context or ExperimentContext()
    context.simulate_many(
        context.cross_product(("sparsepipe", "gpu"), workloads=GPU_WORKLOADS)
    )
    rows: List[Fig17Row] = []
    for workload in GPU_WORKLOADS:
        speedups = {
            matrix: context.speedup(workload, matrix, over="gpu")
            for matrix in context.all_matrices()
        }
        rows.append(Fig17Row(workload, speedups))
    return rows


def overall_geomean(rows: List[Fig17Row]) -> float:
    return geomean(s for r in rows for s in r.speedups.values())


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].speedups)
    text = format_table(
        ["app"] + matrices + ["geomean"],
        [[r.workload] + [r.speedups[m] for m in matrices] + [r.geomean] for r in rows],
        title="Fig 17: Sparsepipe speedup over the GPU framework",
    )
    text += f"\noverall geomean {overall_geomean(rows):.2f}x (paper: 4.65x)"
    print(text)
    return text


if __name__ == "__main__":
    main()
