"""Fig 21: Sparsepipe memory bandwidth utilization, geometric mean
across algorithms and matrices (paper: 82.93% over all applications,
92.94% over the naturally memory-bound ones, i.e. excluding gmres and
gcn)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext, MEMORY_BOUND_WORKLOADS
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig21Row:
    workload: str
    utilization: Dict[str, float]
    memory_bound: bool

    @property
    def geomean(self) -> float:
        return geomean(self.utilization.values())


def run(context: Optional[ExperimentContext] = None) -> List[Fig21Row]:
    context = context or ExperimentContext()
    context.simulate_many(context.cross_product(("sparsepipe",)))
    rows: List[Fig21Row] = []
    for workload in context.all_workloads():
        util = {
            matrix: max(
                1e-6,
                context.simulate("sparsepipe", workload, matrix).bandwidth_utilization,
            )
            for matrix in context.all_matrices()
        }
        rows.append(
            Fig21Row(workload, util, workload in MEMORY_BOUND_WORKLOADS)
        )
    return rows


def summary(rows: List[Fig21Row]) -> Dict[str, float]:
    all_vals = [v for r in rows for v in r.utilization.values()]
    mb_vals = [v for r in rows if r.memory_bound for v in r.utilization.values()]
    return {
        "all": geomean(all_vals),
        "memory_bound": geomean(mb_vals),
    }


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].utilization)
    text = format_table(
        ["app"] + matrices + ["geomean"],
        [
            [r.workload]
            + [100 * r.utilization[m] for m in matrices]
            + [100 * r.geomean]
            for r in rows
        ],
        title="Fig 21: Sparsepipe bandwidth utilization (%)",
    )
    stats = summary(rows)
    text += (
        f"\ngeomean all apps {100 * stats['all']:.1f}% (paper: 82.93%); "
        f"memory-bound only {100 * stats['memory_bound']:.1f}% (paper: 92.94%)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
