"""Fig 22: CPU and GPU bandwidth utilization per matrix (geometric mean
across applications). The paper's observation: caches depress apparent
DRAM utilization on small matrices, and neither framework turns high
utilization into Sparsepipe-level performance on large ones."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig22Row:
    system: str
    utilization: Dict[str, float]  #: matrix -> geomean utilization


def run(context: Optional[ExperimentContext] = None) -> List[Fig22Row]:
    context = context or ExperimentContext()
    context.simulate_many(context.cross_product(("cpu", "gpu", "sparsepipe")))
    rows: List[Fig22Row] = []
    for system in ("cpu", "gpu", "sparsepipe"):
        util: Dict[str, float] = {}
        for matrix in context.all_matrices():
            vals = [
                max(
                    1e-6,
                    context.simulate(system, workload, matrix).bandwidth_utilization,
                )
                for workload in context.all_workloads()
            ]
            util[matrix] = geomean(vals)
        rows.append(Fig22Row(system, util))
    return rows


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].utilization)
    text = format_table(
        ["system"] + matrices,
        [
            [r.system] + [100 * r.utilization[m] for m in matrices]
            for r in rows
        ],
        title="Fig 22: bandwidth utilization (%) by system and matrix",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
