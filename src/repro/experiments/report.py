"""Plain-text table and series formatting for the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_series(
    labels: Sequence[str], values: Sequence[float], width: int = 40, title: str = ""
) -> str:
    """Render a horizontal ASCII bar chart (for the figure drivers)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0
    label_w = max((len(x) for x in labels), default=0)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)}  {value:8.3f}  {bar}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
