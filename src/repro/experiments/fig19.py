"""Fig 19: sensitivity to the sparse tensor preprocessing.

Four variants of Sparsepipe vs the ideal baseline:
``none`` (no optimization — paper: still 1.37x), ``blocked`` (blocked
storage only — up to +1.12x), ``reorder`` (row reorder only — +1.01x to
+1.03x), ``both`` (paper: 1.05x-1.34x over unoptimized Sparsepipe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean

#: (variant name, reorder algorithm, block size)
VARIANTS: Tuple[Tuple[str, Optional[str], Optional[int]], ...] = (
    ("none", None, None),
    ("blocked", None, 256),
    ("reorder", "vanilla", None),
    ("both", "vanilla", 256),
)

#: Representative workloads for the sensitivity sweep.
SWEEP_WORKLOADS = ("pr", "sssp", "kcore")


@dataclass(frozen=True)
class Fig19Row:
    variant: str
    speedup_vs_ideal: Dict[str, float]  #: matrix -> geomean over workloads

    @property
    def geomean(self) -> float:
        return geomean(self.speedup_vs_ideal.values())


def run(context: Optional[ExperimentContext] = None) -> List[Fig19Row]:
    context = context or ExperimentContext()
    rows: List[Fig19Row] = []
    for variant, reorder, block_size in VARIANTS:
        per_matrix: Dict[str, float] = {}
        for matrix in context.all_matrices():
            speedups = []
            for workload in SWEEP_WORKLOADS:
                sp = context.simulate(
                    "sparsepipe", workload, matrix,
                    reorder=reorder, block_size=block_size,
                )
                ideal = context.simulate("ideal", workload, matrix)
                speedups.append(sp.speedup_over(ideal))
            per_matrix[matrix] = geomean(speedups)
        rows.append(Fig19Row(variant, per_matrix))
    return rows


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].speedup_vs_ideal)
    text = format_table(
        ["variant"] + matrices + ["geomean"],
        [
            [r.variant] + [r.speedup_vs_ideal[m] for m in matrices] + [r.geomean]
            for r in rows
        ],
        title="Fig 19: preprocessing sensitivity (speedup over ideal baseline)",
    )
    none = next(r for r in rows if r.variant == "none")
    both = next(r for r in rows if r.variant == "both")
    text += (
        f"\nunoptimized Sparsepipe {none.geomean:.2f}x over baseline (paper: 1.37x); "
        f"both optimizations add {both.geomean / none.geomean:.2f}x "
        "(paper: 1.05x-1.34x)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
