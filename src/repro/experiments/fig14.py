"""Fig 14: Sparsepipe (iso-GPU) speedup over the idealized sparse
accelerator, for every application x matrix pair.

The paper reports: up to 3.59x overall; per-application geometric means
between 1.21x and 2.62x for OEI applications; 0.75x-1.20x for the two
producer-consumer-only applications (cg, bgs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig14Row:
    workload: str
    speedups: Dict[str, float]  #: matrix -> speedup over ideal

    @property
    def geomean(self) -> float:
        return geomean(self.speedups.values())

    @property
    def max(self) -> float:
        return max(self.speedups.values())


def run(context: Optional[ExperimentContext] = None) -> List[Fig14Row]:
    context = context or ExperimentContext()
    context.simulate_many(context.cross_product(("sparsepipe", "ideal")))
    rows: List[Fig14Row] = []
    for workload in context.all_workloads():
        speedups = {
            matrix: context.speedup(workload, matrix, over="ideal")
            for matrix in context.all_matrices()
        }
        rows.append(Fig14Row(workload, speedups))
    return rows


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    matrices = list(rows[0].speedups)
    text = format_table(
        ["app"] + matrices + ["geomean", "max"],
        [
            [r.workload] + [r.speedups[m] for m in matrices] + [r.geomean, r.max]
            for r in rows
        ],
        title="Fig 14: Sparsepipe speedup over the idealized sparse accelerator",
    )
    overall_max = max(r.max for r in rows)
    oei = [r.geomean for r in rows if r.workload not in ("cg", "bgs")]
    text += (
        f"\noverall max {overall_max:.2f}x (paper: 3.59x); "
        f"OEI-app geomeans {min(oei):.2f}x-{max(oei):.2f}x (paper: 1.21x-2.62x)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
