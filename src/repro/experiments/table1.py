"""Table I: on-chip footprint of the OEI reuse window per matrix."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import format_table
from repro.matrices.suite import SUITE, load_suite_matrix, suite_names
from repro.oei.reuse import reuse_footprint


@dataclass(frozen=True)
class Table1Row:
    matrix: str
    rows: int
    nnz: int
    max_live: int
    max_pct: float
    avg_live: float
    avg_pct: float
    paper_max_pct: float
    paper_avg_pct: float


def run() -> List[Table1Row]:
    """Measure the reuse-window footprint of every suite matrix."""
    out: List[Table1Row] = []
    for name in suite_names():
        matrix = load_suite_matrix(name)
        stats = reuse_footprint(matrix)
        spec = SUITE[name]
        out.append(
            Table1Row(
                matrix=name,
                rows=matrix.nrows,
                nnz=stats.nnz,
                max_live=stats.max_live,
                max_pct=stats.max_pct,
                avg_live=stats.avg_live,
                avg_pct=stats.avg_pct,
                paper_max_pct=spec.paper_max_pct,
                paper_avg_pct=spec.paper_avg_pct,
            )
        )
    return out


def main(context: object = None) -> str:
    # ``context`` is accepted (and ignored) so the CLI can drive every
    # experiment module through one uniform ``main(context)`` call.
    rows = run()
    text = format_table(
        ["matrix", "row/col", "nnz", "max", "max(%)", "avg", "avg(%)",
         "paper max(%)", "paper avg(%)"],
        [
            (r.matrix, r.rows, r.nnz, r.max_live, r.max_pct,
             round(r.avg_live), r.avg_pct, r.paper_max_pct, r.paper_avg_pct)
            for r in rows
        ],
        title="Table I: portion of sparse matrix stored on-chip for the OEI dataflow",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
