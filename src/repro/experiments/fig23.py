"""Fig 23: energy consumption of Sparsepipe relative to the baseline
accelerator, split into compute / memory / cache(buffer) operations.

The paper reports 54.98% average total energy saving, with 50.32%
saved on memory operations and 39.45% on buffer operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.energy import EnergyModel
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig23Row:
    workload: str
    relative_total: float    #: Sparsepipe / baseline total energy
    relative_compute: float
    relative_memory: float
    relative_buffer: float


def run(context: Optional[ExperimentContext] = None) -> List[Fig23Row]:
    context = context or ExperimentContext()
    model = EnergyModel()
    rows: List[Fig23Row] = []
    for workload in context.all_workloads():
        totals, computes, memories, buffers = [], [], [], []
        for matrix in context.all_matrices():
            sp = model.evaluate(context.simulate("sparsepipe", workload, matrix))
            base = model.evaluate(context.simulate("ideal", workload, matrix))
            totals.append(sp.total_j / base.total_j)
            computes.append(sp.compute_j / max(base.compute_j, 1e-30))
            memories.append(sp.memory_j / base.memory_j)
            buffers.append(sp.buffer_j / base.buffer_j)
        rows.append(
            Fig23Row(
                workload,
                geomean(totals),
                geomean(computes),
                geomean(memories),
                geomean(buffers),
            )
        )
    return rows


def savings_summary(rows: List[Fig23Row]) -> Dict[str, float]:
    return {
        "total": 100 * (1 - geomean(r.relative_total for r in rows)),
        "memory": 100 * (1 - geomean(r.relative_memory for r in rows)),
        "buffer": 100 * (1 - geomean(r.relative_buffer for r in rows)),
    }


def main(context: Optional[ExperimentContext] = None) -> str:
    rows = run(context)
    text = format_table(
        ["app", "total", "compute", "memory", "buffer"],
        [
            (r.workload, r.relative_total, r.relative_compute,
             r.relative_memory, r.relative_buffer)
            for r in rows
        ],
        title="Fig 23: Sparsepipe energy relative to the baseline accelerator",
    )
    s = savings_summary(rows)
    text += (
        f"\nsavings: total {s['total']:.1f}% (paper: 54.98%), "
        f"memory {s['memory']:.1f}% (paper: 50.32%), "
        f"buffer {s['buffer']:.1f}% (paper: 39.45%)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
