"""Fig 20: (a) storage footprint of the blocked dual format relative to
naive dual storage (paper: 39.2% on average), and (b) relative
performance-per-area vs CPU and GPU (paper: 9.84x and 5.38x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.area import AreaModel, CPU_AREA_MM2, GPU_AREA_MM2
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext, GPU_WORKLOADS
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Fig20aRow:
    matrix: str
    ratio_no_reorder: float     #: blocked / naive dual, natural order
    ratio_reordered: float      #: blocked / naive dual, after reorder


@dataclass(frozen=True)
class Fig20bRow:
    system: str
    area_mm2: float
    relative_perf: float        #: geomean speedup normalized to CPU
    perf_per_area: float        #: normalized to CPU


def run_storage(context: Optional[ExperimentContext] = None) -> List[Fig20aRow]:
    context = context or ExperimentContext()
    rows: List[Fig20aRow] = []
    for matrix in context.all_matrices():
        natural = context.prepared(matrix, reorder=None, block_size=256)
        reordered = context.prepared(matrix, reorder="vanilla", block_size=256)
        rows.append(
            Fig20aRow(matrix, natural.storage_ratio, reordered.storage_ratio)
        )
    return rows


def run_perf_per_area(
    context: Optional[ExperimentContext] = None,
) -> List[Fig20bRow]:
    context = context or ExperimentContext()
    area = AreaModel()
    sp_area = area.sparsepipe_mm2()
    # Relative performance from the Fig 17 working set (the four
    # GPU-comparable applications across all matrices).
    sp_vs_cpu = geomean(
        context.speedup(w, m, over="cpu")
        for w in GPU_WORKLOADS
        for m in context.all_matrices()
    )
    gpu_vs_cpu = geomean(
        context.simulate("gpu", w, m).speedup_over(context.simulate("cpu", w, m))
        for w in GPU_WORKLOADS
        for m in context.all_matrices()
    )
    systems = [
        ("cpu", CPU_AREA_MM2, 1.0),
        ("gpu", GPU_AREA_MM2, gpu_vs_cpu),
        ("sparsepipe", sp_area, sp_vs_cpu),
    ]
    cpu_ppa = 1.0 / CPU_AREA_MM2
    return [
        Fig20bRow(name, a, perf, (perf / a) / cpu_ppa)
        for name, a, perf in systems
    ]


def main(context: Optional[ExperimentContext] = None) -> str:
    context = context or ExperimentContext()
    storage = run_storage(context)
    average = sum(r.ratio_reordered for r in storage) / len(storage)
    text = format_table(
        ["matrix", "blocked/dual (natural)", "blocked/dual (reordered)"],
        [(r.matrix, r.ratio_no_reorder, r.ratio_reordered) for r in storage],
        title="Fig 20a: blocked dual storage relative to naive dual storage",
    )
    text += f"\naverage {100 * average:.1f}% of naive dual storage (paper: 39.2%)\n\n"

    ppa = run_perf_per_area(context)
    text += format_table(
        ["system", "area (mm^2)", "relative perf", "perf/area vs CPU"],
        [(r.system, r.area_mm2, r.relative_perf, r.perf_per_area) for r in ppa],
        title="Fig 20b: relative performance per area",
    )
    sp = next(r for r in ppa if r.system == "sparsepipe")
    gpu = next(r for r in ppa if r.system == "gpu")
    text += (
        f"\nSparsepipe perf/area: {sp.perf_per_area:.2f}x CPU (paper: 9.84x), "
        f"{sp.perf_per_area / gpu.perf_per_area:.2f}x GPU (paper: 5.38x)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
