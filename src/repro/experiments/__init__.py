"""Experiment drivers: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning structured rows
and a ``main()`` that prints the paper-style table; the ``benchmarks/``
tree wraps these under pytest-benchmark. See DESIGN.md section 4 for
the experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.experiments.runner import ExperimentContext

__all__ = ["ExperimentContext"]
