"""Machine-readable export of every experiment's results.

``export_all`` runs the full sweep and writes one JSON document with a
section per table/figure — the raw series a plotting script (matplotlib
or otherwise) needs to redraw the paper's charts.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.experiments import (
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig22,
    fig23,
    summary,
    table1,
)
from repro.experiments.runner import ExperimentContext


def collect_all(context: Optional[ExperimentContext] = None) -> Dict[str, object]:
    """Run every experiment and gather plain-JSON-serializable results."""
    context = context or ExperimentContext()
    context.simulate_many(
        context.cross_product(("sparsepipe", "ideal", "oracle", "cpu", "gpu"))
    )
    doc: Dict[str, object] = {}

    doc["table1"] = [asdict(r) for r in table1.run()]
    doc["fig14"] = [
        {"workload": r.workload, "speedups": r.speedups,
         "geomean": r.geomean, "max": r.max}
        for r in fig14.run(context)
    ]
    doc["fig15"] = [
        {
            "workload": s.workload,
            "matrix": s.matrix,
            "speedup_over_ideal": s.speedup_over_ideal,
            "utilization": [b.utilization for b in s.samples],
            "progress": [b.progress for b in s.samples],
        }
        for s in fig15.run(context)
    ]
    doc["fig16"] = [
        {"workload": r.workload, "iso_gpu": r.iso_gpu, "iso_cpu": r.iso_cpu,
         "iso_gpu_geomean": r.iso_gpu_geomean,
         "iso_cpu_geomean": r.iso_cpu_geomean}
        for r in fig16.run(context)
    ]
    doc["fig17"] = [
        {"workload": r.workload, "speedups": r.speedups, "geomean": r.geomean}
        for r in fig17.run(context)
    ]
    doc["fig18"] = [
        {"workload": r.workload, "fraction_of_oracle": r.fraction_of_oracle,
         "geomean": r.geomean}
        for r in fig18.run(context)
    ]
    doc["fig19"] = [
        {"variant": r.variant, "speedup_vs_ideal": r.speedup_vs_ideal,
         "geomean": r.geomean}
        for r in fig19.run(context)
    ]
    doc["fig20a"] = [asdict(r) for r in fig20.run_storage(context)]
    doc["fig20b"] = [asdict(r) for r in fig20.run_perf_per_area(context)]
    doc["fig21"] = [
        {"workload": r.workload, "utilization": r.utilization,
         "memory_bound": r.memory_bound, "geomean": r.geomean}
        for r in fig21.run(context)
    ]
    doc["fig22"] = [
        {"system": r.system, "utilization": r.utilization}
        for r in fig22.run(context)
    ]
    doc["fig23"] = [asdict(r) for r in fig23.run(context)]
    doc["summary"] = [asdict(c) for c in summary.run(context)]
    # Observability artifacts: the sweep-wide metrics registry and one
    # provenance manifest per simulated (or cache-served) point.
    doc["metrics"] = context.metrics.to_dict()
    doc["manifests"] = [
        m.to_dict() for m in context.manifests.values()
    ]
    return doc


def export_all(
    path: Union[str, Path], context: Optional[ExperimentContext] = None
) -> Path:
    """Write the full result document to ``path`` as JSON."""
    path = Path(path)
    doc = collect_all(context)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path
