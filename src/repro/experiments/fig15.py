"""Fig 15: memory bandwidth utilization timeline, sampled at every 4%
of execution, for the four highlighted (workload, matrix) pairs:
sssp-bu (well-performing), knn-eu (eager CSR reclaims bandwidth),
kcore-eu (compute-intensive), sssp-wi (skewed non-zeros ping-pong)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.stats import BandwidthSample
from repro.engine.registry import run_engine
from repro.experiments.report import format_bar_series
from repro.experiments.runner import ExperimentContext, FIG15_PAIRS
from repro.matrices.suite import SUITE


@dataclass(frozen=True)
class Fig15Series:
    workload: str
    matrix: str
    speedup_over_ideal: float
    samples: Tuple[BandwidthSample, ...]

    @property
    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.utilization for s in self.samples) / len(self.samples)


def run(context: Optional[ExperimentContext] = None) -> List[Fig15Series]:
    context = context or ExperimentContext()
    out: List[Fig15Series] = []
    for workload, matrix in FIG15_PAIRS:
        # This figure needs the per-step bandwidth samples: ask for the
        # engine's default step-trace observer (observers=None). The
        # vectorized backend synthesizes the event stream post-hoc, so
        # sampling no longer costs a reference-loop run.
        result = run_engine(
            "sparsepipe",
            context.config,
            context.profile(workload, matrix),
            context.prepared(matrix),
            paper_nnz=SUITE[matrix].paper_nnz,
            observers=None,
        )
        speedup = context.speedup(workload, matrix, over="ideal")
        out.append(
            Fig15Series(workload, matrix, speedup, tuple(result.bandwidth_samples))
        )
    return out


def main(context: Optional[ExperimentContext] = None) -> str:
    series_list = run(context)
    chunks = []
    for s in series_list:
        labels = [f"{int(sample.progress * 100):3d}%" for sample in s.samples]
        values = [sample.utilization for sample in s.samples]
        chunks.append(
            format_bar_series(
                labels,
                values,
                title=(
                    f"Fig 15 {s.workload}-{s.matrix}: bandwidth utilization per 4% "
                    f"interval (speedup over ideal {s.speedup_over_ideal:.2f}x, "
                    f"mean util {s.mean_utilization:.2f})"
                ),
            )
        )
    text = "\n\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":
    main()
