"""Whole-evaluation summary: every headline claim of Section VI in one
table, paper vs measured (the data behind EXPERIMENTS.md)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments import (
    fig14,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig23,
)
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentContext
from repro.util.numeric import geomean


@dataclass(frozen=True)
class Claim:
    """One comparable headline number."""

    claim: str
    paper: str
    measured: str
    holds: bool


def run(context: Optional[ExperimentContext] = None) -> List[Claim]:
    context = context or ExperimentContext()
    # One fan-out warms every (arch, workload, matrix) cell the figure
    # drivers below will read; with max_workers set this is where the
    # whole evaluation parallelizes.
    context.simulate_many(
        context.cross_product(("sparsepipe", "ideal", "oracle", "cpu", "gpu"))
    )
    claims: List[Claim] = []

    r14 = fig14.run(context)
    oei_rows = [r for r in r14 if r.workload not in ("cg", "bgs")]
    non_oei_rows = [r for r in r14 if r.workload in ("cg", "bgs")]
    oei_lo = min(r.geomean for r in oei_rows)
    oei_hi = max(r.geomean for r in oei_rows)
    claims.append(Claim(
        "speedup over ideal accel (OEI apps, geomean band)",
        "1.21x-2.62x", f"{oei_lo:.2f}x-{oei_hi:.2f}x",
        1.0 < oei_lo and oei_hi < 2.8,
    ))
    overall_max = max(r.max for r in r14)
    claims.append(Claim(
        "max speedup over ideal accel", "3.59x", f"{overall_max:.2f}x",
        1.5 < overall_max < 3.7,
    ))
    if non_oei_rows:
        lo = min(r.geomean for r in non_oei_rows)
        hi = max(r.geomean for r in non_oei_rows)
        claims.append(Claim(
            "cg/bgs band (producer-consumer only)",
            "0.75x-1.20x", f"{lo:.2f}x-{hi:.2f}x", 0.7 < lo and hi < 1.6,
        ))

    r16 = fig16.run(context)
    non_gcn = [r for r in r16 if r.workload != "gcn"] or r16
    lo = min(r.iso_gpu_geomean for r in non_gcn)
    hi = max(r.iso_gpu_geomean for r in non_gcn)
    claims.append(Claim(
        "speedup over CPU (iso-GPU, per-app geomean band)",
        "12.20x-35.14x", f"{lo:.2f}x-{hi:.2f}x", lo > 5.0,
    ))
    lo = min(r.iso_cpu_geomean for r in non_gcn)
    hi = max(r.iso_cpu_geomean for r in non_gcn)
    claims.append(Claim(
        "speedup over CPU (iso-CPU: pure OEI benefit)",
        "1.31x-3.57x", f"{lo:.2f}x-{hi:.2f}x", lo > 1.0 and hi < 4.5,
    ))

    r17 = fig17.run(context)
    overall = fig17.overall_geomean(r17)
    claims.append(Claim(
        "speedup over GPU (geomean)", "4.65x", f"{overall:.2f}x",
        2.0 < overall < 8.0,
    ))

    r18 = fig18.run(context)
    avg = fig18.average_fraction(r18)
    claims.append(Claim(
        "fraction of oracle performance (avg)", "66.78%",
        f"{100 * avg:.1f}%", 0.5 < avg <= 1.0,
    ))

    r19 = fig19.run(context)
    by_variant = {r.variant: r for r in r19}
    claims.append(Claim(
        "unoptimized Sparsepipe over baseline", "1.37x",
        f"{by_variant['none'].geomean:.2f}x",
        by_variant["none"].geomean > 1.1,
    ))
    gain = by_variant["both"].geomean / by_variant["none"].geomean
    claims.append(Claim(
        "gain from both preprocessing optimizations",
        "1.05x-1.34x", f"{gain:.2f}x", 1.0 <= gain < 1.45,
    ))

    storage = fig20.run_storage(context)
    avg_ratio = sum(r.ratio_reordered for r in storage) / len(storage)
    claims.append(Claim(
        "blocked dual storage vs naive dual", "39.2%",
        f"{100 * avg_ratio:.1f}%", 0.3 < avg_ratio < 0.5,
    ))

    r21 = fig21.run(context)
    stats = fig21.summary(r21)
    claims.append(Claim(
        "bandwidth utilization (memory-bound apps)", "92.94%",
        f"{100 * stats['memory_bound']:.1f}%", stats["memory_bound"] > 0.8,
    ))

    r23 = fig23.run(context)
    savings = fig23.savings_summary(r23)
    claims.append(Claim(
        "energy saving vs baseline (total)", "54.98%",
        f"{savings['total']:.1f}%", savings["total"] > 20.0,
    ))
    return claims


def main(context: Optional[ExperimentContext] = None) -> str:
    context = context or ExperimentContext()
    claims = run(context)
    text = format_table(
        ["claim", "paper", "measured", "holds"],
        [(c.claim, c.paper, c.measured, "yes" if c.holds else "NO") for c in claims],
        title="Section VI headline claims, paper vs measured",
    )
    n_hold = sum(c.holds for c in claims)
    text += f"\n{n_hold}/{len(claims)} claims hold"
    text += "\n\nsweep metrics (repro.obs registry):\n"
    text += context.metrics_report()
    print(text)
    return text


if __name__ == "__main__":
    main()
