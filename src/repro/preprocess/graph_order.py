"""GraphOrder locality reordering (Wei, Yu, Lu, Lin — SIGMOD 2016).

The paper reuses GraphOrder (via Gamma) to improve non-zero locality
before execution (Section IV-E1). GraphOrder greedily builds a
permutation that maximizes, over a sliding window of the last ``w``
placed vertices, the locality score

    F(u, v) = S(u, v) + N(u, v)

where ``S`` counts common in-neighbors (sibling score) and ``N`` is 1
when ``u`` and ``v`` are directly connected (neighbor score).

This implementation maintains incremental scores: when a vertex enters
or leaves the window it adds or removes +1 from each neighbor and from
each co-out-neighbor of its in-neighbors. Sibling updates through very
high degree intermediates are skipped (standard practice — hubs make
everything a sibling of everything, which carries no locality signal
and costs O(d^2)).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


def graph_order(
    coo: COOMatrix,
    window: int = 5,
    hub_threshold: int = 256,
) -> np.ndarray:
    """Return a permutation ``perm`` with ``perm[old] = new``.

    Parameters
    ----------
    window:
        Sliding-window width ``w`` of the greedy objective (the original
        paper uses 5).
    hub_threshold:
        In-neighbors with out-degree above this do not generate sibling
        score updates (complexity guard, see module docstring).
    """
    if coo.nrows != coo.ncols:
        raise ValueError(f"reordering expects a square matrix, got {coo.shape}")
    n = coo.nrows
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    csr = CSRMatrix.from_coo(coo)
    csc = CSCMatrix.from_coo(coo)
    out_degree = csr.row_nnz()

    score = np.zeros(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    # Lazy max-heap of (-score, vertex); stale entries are re-checked.
    heap = [(-0, int(v)) for v in np.argsort(-out_degree, kind="stable")[: max(64, window * 8)]]
    heapq.heapify(heap)
    window_q: Deque[int] = deque()
    order = np.empty(n, dtype=np.int64)

    def _update(vertex: int, delta: int) -> None:
        """Add ``delta`` to F(vertex, .) for every candidate scored
        against ``vertex``."""
        # Neighbor score: direct successors and predecessors.
        parts = [csr.row(vertex)[0], csc.col(vertex)[0]]
        # Sibling score: co-out-neighbors of each in-neighbor.
        for x in csc.col(vertex)[0]:
            if out_degree[x] <= hub_threshold:
                parts.append(csr.row(int(x))[0])
        touched = np.concatenate(parts)
        if touched.size == 0:
            return
        np.add.at(score, touched, delta)
        if delta > 0:
            candidates = np.unique(touched)
            candidates = candidates[~placed[candidates]]
            for v in candidates:
                heapq.heappush(heap, (-int(score[v]), int(v)))

    fallback_order = np.argsort(-out_degree, kind="stable")
    next_fallback = 0
    for position in range(n):
        best = -1
        while heap:
            neg_score, v = heapq.heappop(heap)
            if placed[v]:
                continue
            if -neg_score != score[v]:  # stale entry
                heapq.heappush(heap, (-int(score[v]), v))
                continue
            best = v
            break
        if best < 0:
            # Heap exhausted (isolated region): take the next unplaced
            # vertex in highest-out-degree order.
            while placed[fallback_order[next_fallback]]:
                next_fallback += 1
            best = int(fallback_order[next_fallback])

        placed[best] = True
        order[position] = best
        window_q.append(best)
        _update(best, +1)
        if len(window_q) > window:
            _update(window_q.popleft(), -1)

    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm
