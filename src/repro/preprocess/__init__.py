"""Offline sparse tensor preprocessing (Section IV-E).

Two row-reordering algorithms — :func:`graph_order` (the GraphOrder
locality heuristic of Wei et al. the paper adopts from SpMSpM work) and
:func:`vanilla_reorder` (the paper's "straightforward" heuristic that
pushes the matrix toward upper-triangular / banded form) — plus the
:func:`preprocess` pipeline that applies a reorder and builds the
(blocked) dual storage.
"""

from repro.preprocess.graph_order import graph_order
from repro.preprocess.vanilla_reorder import vanilla_reorder, bandwidth
from repro.preprocess.pipeline import PreprocessResult, preprocess, REORDER_ALGORITHMS

__all__ = [
    "graph_order",
    "vanilla_reorder",
    "bandwidth",
    "preprocess",
    "PreprocessResult",
    "REORDER_ALGORITHMS",
]
