"""End-to-end preprocessing pipeline (Section IV-E).

Combines a row reorder (applied symmetrically, relabeling graph
vertices) with dual-storage construction, optionally blocked. The
pipeline reports the storage sizes Fig 20(a) compares and hands the
reordered matrix to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.formats.blocked import BlockedDualStorage
from repro.formats.coo import COOMatrix
from repro.formats.dual import DualStorage
from repro.preprocess.graph_order import graph_order
from repro.preprocess.vanilla_reorder import vanilla_reorder

#: Registered reorder algorithms: name -> (COOMatrix) -> permutation.
REORDER_ALGORITHMS: Dict[str, Callable[[COOMatrix], np.ndarray]] = {
    "graphorder": graph_order,
    "vanilla": vanilla_reorder,
}


@dataclass(frozen=True)
class PreprocessResult:
    """Everything the simulator and the storage experiments need."""

    matrix: COOMatrix
    permutation: Optional[np.ndarray]
    dual: DualStorage
    blocked: Optional[BlockedDualStorage]
    reorder_name: str
    block_size: Optional[int]

    @property
    def dual_bytes(self) -> int:
        """Footprint of the naive (non-blocked) dual storage."""
        return self.dual.storage_bytes()

    @property
    def blocked_bytes(self) -> Optional[int]:
        """Footprint of the blocked dual storage, when built."""
        return None if self.blocked is None else self.blocked.storage_bytes()

    @property
    def storage_ratio(self) -> Optional[float]:
        """Blocked size relative to naive dual size (Fig 20a metric)."""
        if self.blocked is None:
            return None
        return self.blocked_bytes / self.dual_bytes


def preprocess(
    matrix: COOMatrix,
    reorder: Optional[str] = "graphorder",
    block_size: Optional[int] = 256,
) -> PreprocessResult:
    """Reorder (symmetrically) and build (blocked) dual storage.

    Parameters
    ----------
    reorder:
        ``"graphorder"``, ``"vanilla"``, or ``None`` for no reordering.
    block_size:
        Tile edge for the blocked dual storage, or ``None`` to skip
        blocking (the Fig 19 "no optimization" configuration).
    """
    perm = None
    reorder_name = "none"
    reordered = matrix
    if reorder is not None:
        if reorder not in REORDER_ALGORITHMS:
            raise ConfigError(
                f"unknown reorder {reorder!r}; available: "
                f"{sorted(REORDER_ALGORITHMS)} or None"
            )
        perm = REORDER_ALGORITHMS[reorder](matrix)
        reordered = matrix.permute(row_perm=perm, col_perm=perm)
        reorder_name = reorder

    dual = DualStorage.from_coo(reordered)
    blocked = None
    if block_size is not None:
        blocked = BlockedDualStorage.from_coo(reordered, block_size=block_size)
    return PreprocessResult(
        matrix=reordered.deduplicate(),
        permutation=perm,
        dual=dual,
        blocked=blocked,
        reorder_name=reorder_name,
        block_size=block_size,
    )
