"""The paper's "vanilla" reorder: a simple heuristic that pushes a
sparse matrix toward upper-triangular / banded structure.

Under the OEI dataflow an element ``(i, j)`` stays on chip from step
``j`` (when the OS stage loads column ``j``) to step ``i + 2`` (when the
IS stage scatters row ``i``), so the reuse window shrinks exactly when
``i - j`` shrinks — i.e. when the matrix bandwidth shrinks. We realize
the heuristic as a breadth-first (Cuthill-McKee style) levelization:
each vertex is placed right after its already-placed neighbors, ordered
by degree, which is both simple and effective at banding graph
matrices.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix


def _symmetrized_csr(coo: COOMatrix) -> CSRMatrix:
    """Undirected adjacency view of a possibly-directed matrix."""
    rows = np.concatenate((coo.rows, coo.cols))
    cols = np.concatenate((coo.cols, coo.rows))
    vals = np.ones(rows.size)
    return CSRMatrix.from_coo(COOMatrix(coo.shape, rows, cols, vals))


def vanilla_reorder(coo: COOMatrix) -> np.ndarray:
    """Return a permutation ``perm`` with ``perm[old] = new``.

    Applying it symmetrically (rows and columns) relabels graph vertices
    so neighbors get nearby indices, banding the matrix.
    """
    if coo.nrows != coo.ncols:
        raise ValueError(f"reordering expects a square matrix, got {coo.shape}")
    n = coo.nrows
    adj = _symmetrized_csr(coo)
    degree = adj.row_nnz()
    visited = np.zeros(n, dtype=bool)
    order: List[int] = []

    # Min-degree start vertex per connected component (classic CM).
    by_degree = np.argsort(degree, kind="stable")
    for start in by_degree:
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([int(start)])
        while queue:
            u = queue.popleft()
            order.append(u)
            neighbors, _ = adj.row(u)
            fresh = neighbors[~visited[neighbors]]
            if fresh.size:
                visited[fresh] = True
                fresh = fresh[np.argsort(degree[fresh], kind="stable")]
                queue.extend(int(v) for v in fresh)

    perm = np.empty(n, dtype=np.int64)
    perm[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return perm


def bandwidth(coo: COOMatrix) -> int:
    """Matrix bandwidth ``max |i - j|`` over stored entries — the scalar
    the vanilla reorder tries to reduce."""
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.rows - coo.cols).max())
