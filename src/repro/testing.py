"""Shared helpers for the test and benchmark harnesses.

``tests/conftest.py`` and ``benchmarks/conftest.py`` had grown duplicate
copies of the deterministic-matrix and env-subset helpers; both now
import from here (the package is importable from either rootdir via
``PYTHONPATH=src``). Also home to the golden-fixture machinery used by
``tests/test_goldens.py``: stable digests and field-level diffs over
:meth:`~repro.arch.stats.SimResult.to_dict` documents.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.formats.coo import COOMatrix


# ----------------------------------------------------------------------
# Deterministic inputs
# ----------------------------------------------------------------------
def random_coo(
    seed: int, n: int = 25, density: float = 0.12,
    lo: float = -2.0, hi: float = 2.0,
) -> COOMatrix:
    """Deterministic random square COO used by parametrized tests."""
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < density) * gen.uniform(lo, hi, (n, n))
    return COOMatrix.from_dense(dense)


# ----------------------------------------------------------------------
# Benchmark sweep subsetting
# ----------------------------------------------------------------------
def env_subset(name: str) -> Optional[Tuple[str, ...]]:
    """Comma-separated env var as a tuple, ``None`` when unset/empty."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def is_full_sweep() -> bool:
    """True when no env-var subsetting is active (claims may be asserted)."""
    return (
        env_subset("REPRO_BENCH_WORKLOADS") is None
        and env_subset("REPRO_BENCH_MATRICES") is None
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (the sweeps are deterministic and
    heavy; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Golden fixtures
# ----------------------------------------------------------------------
def canonical_json(doc: dict) -> str:
    """Stable serialization: sorted keys, full float repr."""
    return json.dumps(doc, sort_keys=True, indent=2)


def digest(doc: dict) -> str:
    """Content hash of a canonicalized document."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:16]


def flatten_doc(doc: object, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists to ``dotted.path -> leaf`` pairs."""
    flat: Dict[str, object] = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            flat.update(flatten_doc(doc[key], f"{prefix}{key}." if prefix or key else prefix))
    elif isinstance(doc, (list, tuple)):
        for i, item in enumerate(doc):
            flat.update(flatten_doc(item, f"{prefix}{i}."))
    else:
        flat[prefix[:-1] if prefix.endswith(".") else prefix] = doc
    return flat


def diff_docs(expected: dict, actual: dict) -> List[str]:
    """Field-level diff between two nested documents.

    Returns one line per differing leaf (``path: expected != actual``),
    empty when the documents are identical — the failure message a
    golden mismatch prints instead of two opaque hashes.
    """
    exp = flatten_doc(expected)
    act = flatten_doc(actual)
    lines: List[str] = []
    for path in sorted(set(exp) | set(act)):
        if path not in exp:
            lines.append(f"  {path}: <absent in golden> != {act[path]!r}")
        elif path not in act:
            lines.append(f"  {path}: {exp[path]!r} != <absent in result>")
        elif exp[path] != act[path]:
            lines.append(f"  {path}: {exp[path]!r} != {act[path]!r}")
    return lines
