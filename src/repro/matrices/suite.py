"""Scaled synthetic analogs of the paper's nine SuiteSparse matrices.

Table I of the paper evaluates on nine matrices abbreviated ``ca gy g2
co bu wi ad ro eu``. Their originals reach 54 M non-zeros; this module
generates structural analogs scaled down ~10-2000x (see DESIGN.md,
"Substitutions") while preserving the property Table I measures — the
shape of the cross-iteration reuse window relative to matrix size:

- road networks (``ro``, ``eu``) and meshes (``gy``, ``ad``) are local
  and banded, so the window is tiny;
- circuits (``g2``) are near-diagonal with a few dense rails;
- clique graphs (``co``) are locally dense;
- skewed power-law graphs (``ca``, ``wi``) and the camera/point
  coupling block of bundle adjustment (``bu``) keep a large fraction of
  the matrix live at once.

Paper reference columns (rows, nnz, max%, avg%) are carried on each
spec so EXPERIMENTS.md can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.matrices import generators as gen


@dataclass(frozen=True)
class SuiteMatrixSpec:
    """One Table-I matrix: the paper's numbers plus our generator."""

    name: str
    structure: str
    paper_rows: int
    paper_nnz: int
    paper_max_pct: float
    paper_avg_pct: float
    build: Callable[[], COOMatrix]


def _build_ca() -> COOMatrix:
    return gen.power_law(1877, 19811, exponent=1.9, lower_bias=0.85, seed=101)


def _build_gy() -> COOMatrix:
    return gen.banded_mesh(1736, 160, 17890, seed=102)


def _build_g2() -> COOMatrix:
    return gen.circuit_like(3002, 8768, n_rails=4, seed=103)


def _build_co() -> COOMatrix:
    return gen.clique_overlap(4341, 160367, clique_size=30, locality=0.40, seed=104)


def _build_bu() -> COOMatrix:
    return gen.bipartite_block(5134, 103607, split=0.45, corner_share=0.88, seed=105)


def _build_wi() -> COOMatrix:
    return gen.rmat(17835, 225152, a=0.60, b=0.12, c=0.26, seed=106)


def _build_ad() -> COOMatrix:
    return gen.road_network(13631, 27262, shortcut_fraction=0.28, seed=107)


def _build_ro() -> COOMatrix:
    return gen.road_network(23947, 28854, shortcut_fraction=0.06, seed=108)


def _build_eu() -> COOMatrix:
    return gen.road_network(25456, 27027, shortcut_fraction=0.13, seed=109)


#: Ordered as in Table I.
SUITE: Dict[str, SuiteMatrixSpec] = {
    spec.name: spec
    for spec in (
        SuiteMatrixSpec("ca", "power-law collaboration", 18772, 198110, 49.9, 32.9, _build_ca),
        SuiteMatrixSpec("gy", "banded FEM mesh", 17361, 178896, 4.8, 1.9, _build_gy),
        SuiteMatrixSpec("g2", "circuit with rails", 150102, 438388, 3.5, 1.7, _build_g2),
        SuiteMatrixSpec("co", "overlapping cliques", 434102, 16036720, 13.7, 7.2, _build_co),
        SuiteMatrixSpec("bu", "bundle-adjustment blocks", 513351, 10360701, 90.0, 47.7, _build_bu),
        SuiteMatrixSpec("wi", "skewed power-law web", 3566907, 45030389, 38.7, 23.2, _build_wi),
        SuiteMatrixSpec("ad", "adaptive mesh", 6815744, 13624320, 9.4, 5.1, _build_ad),
        SuiteMatrixSpec("ro", "road network", 23947347, 28854312, 1.9, 1.0, _build_ro),
        SuiteMatrixSpec("eu", "road network (large)", 50912018, 54054660, 4.3, 2.6, _build_eu),
    )
}


def suite_names() -> List[str]:
    """Table-I matrix names in paper order."""
    return list(SUITE)


@lru_cache(maxsize=None)
def load_suite_matrix(name: str) -> COOMatrix:
    """Build (and cache) the scaled analog of a Table-I matrix."""
    if name not in SUITE:
        raise ConfigError(f"unknown suite matrix {name!r}; available: {suite_names()}")
    return SUITE[name].build()
