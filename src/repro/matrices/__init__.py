"""Sparse matrix workload suite.

The paper evaluates on nine SuiteSparse matrices (Table I). This
package provides structural generators (R-MAT, grids/roads, banded
meshes, circuits, overlapping cliques, bipartite blocks) and
:func:`load_suite_matrix`, which builds scaled-down synthetic analogs
of the paper's nine matrices with the structure class preserved — see
DESIGN.md, "Substitutions".
"""

from repro.matrices.generators import (
    rmat,
    erdos_renyi,
    banded_mesh,
    grid_2d,
    road_network,
    circuit_like,
    clique_overlap,
    bipartite_block,
    power_law,
    watts_strogatz,
    barabasi_albert,
)
from repro.matrices.suite import (
    SUITE,
    SuiteMatrixSpec,
    load_suite_matrix,
    suite_names,
)

__all__ = [
    "rmat",
    "erdos_renyi",
    "banded_mesh",
    "grid_2d",
    "road_network",
    "circuit_like",
    "clique_overlap",
    "bipartite_block",
    "power_law",
    "watts_strogatz",
    "barabasi_albert",
    "SUITE",
    "SuiteMatrixSpec",
    "load_suite_matrix",
    "suite_names",
]
