"""Structural sparse matrix generators.

Each generator returns a square :class:`COOMatrix` with positive values
and no self-loops unless stated otherwise. They are deterministic for a
given seed, so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.util.validation import check_positive, check_probability


def _finalize(n: int, rows: np.ndarray, cols: np.ndarray, rng: np.random.Generator) -> COOMatrix:
    """Drop self-loops, deduplicate, and attach uniform(0.5, 1.5) values."""
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    return COOMatrix((n, n), rows, cols, vals).deduplicate()


def rmat(
    n: int,
    nnz: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> COOMatrix:
    """R-MAT power-law generator (Chakrabarti et al.).

    Skew grows with ``a``; the default (0.57, 0.19, 0.19, 0.05)
    approximates web/social graphs such as the paper's ``wi``.
    """
    check_positive("n", n)
    check_positive("nnz", nnz)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError(f"rmat probabilities exceed 1: a+b+c={a + b + c}")
    rng = np.random.default_rng(seed)
    levels = max(1, int(np.ceil(np.log2(n))))
    size = 1 << levels
    # Oversample to compensate for duplicates and self-loops.
    m = int(nnz * 1.35) + 16
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    probs = np.array([a, b, c, d])
    cum = np.cumsum(probs)
    for _ in range(levels):
        quadrant = np.searchsorted(cum, rng.random(m))
        rows = rows * 2 + (quadrant >= 2)
        cols = cols * 2 + (quadrant % 2)
    scale = n / size
    rows = np.minimum((rows * scale).astype(np.int64), n - 1)
    cols = np.minimum((cols * scale).astype(np.int64), n - 1)
    out = _finalize(n, rows, cols, rng)
    return _trim(out, nnz)


def _trim(coo: COOMatrix, nnz: int) -> COOMatrix:
    """Drop surplus entries uniformly to land near the requested nnz."""
    if coo.nnz <= nnz:
        return coo
    rng = np.random.default_rng(coo.nnz)
    keep = rng.choice(coo.nnz, size=nnz, replace=False)
    keep.sort()
    return COOMatrix(coo.shape, coo.rows[keep], coo.cols[keep], coo.vals[keep])


def erdos_renyi(n: int, nnz: int, seed: int = 0) -> COOMatrix:
    """Uniform random matrix with ~``nnz`` entries."""
    check_positive("n", n)
    rng = np.random.default_rng(seed)
    m = int(nnz * 1.1) + 16
    return _trim(
        _finalize(n, rng.integers(0, n, m), rng.integers(0, n, m), rng), nnz
    )


def power_law(
    n: int, nnz: int, exponent: float = 2.1, lower_bias: float = 0.0, seed: int = 0
) -> COOMatrix:
    """Configuration-model style graph with Zipf-distributed endpoint
    probabilities — hubs appear in many rows *and* columns.

    ``lower_bias`` orients that fraction of the edges below the diagonal
    (row > column). Under the OEI dataflow a below-diagonal element
    stays on chip for ``row - column`` steps, so a high bias models the
    scrambled natural orderings of collaboration graphs whose Table-I
    footprint is large (the paper's ``ca``)."""
    check_positive("n", n)
    check_positive("exponent", exponent)
    check_probability("lower_bias", lower_bias)
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n + 1) ** (exponent - 1.0)
    weights /= weights.sum()
    m = int(nnz * 1.25) + 16
    rows = rng.choice(n, size=m, p=weights)
    cols = rng.choice(n, size=m, p=weights)
    perm = rng.permutation(n)  # scatter hubs across the index space
    rows, cols = perm[rows], perm[cols]
    flip = (rng.random(m) < lower_bias) & (rows < cols)
    rows[flip], cols[flip] = cols[flip], rows[flip]
    return _trim(_finalize(n, rows, cols, rng), nnz)


def banded_mesh(n: int, bandwidth: int, nnz: int, seed: int = 0) -> COOMatrix:
    """Stiffness-matrix-like structure: entries confined to a band
    around the diagonal (the paper's ``gy`` gyroscope mesh class)."""
    check_positive("n", n)
    check_positive("bandwidth", bandwidth)
    rng = np.random.default_rng(seed)
    m = int(nnz * 1.25) + 16
    rows = rng.integers(0, n, m)
    offsets = rng.integers(-bandwidth, bandwidth + 1, m)
    cols = np.clip(rows + offsets, 0, n - 1)
    return _trim(_finalize(n, rows, cols, rng), nnz)


def grid_2d(side: int, diagonal: bool = False, seed: int = 0) -> COOMatrix:
    """5-point (or 9-point with ``diagonal``) stencil on a ``side x side``
    grid — adaptive-mesh / planar structure (``ad`` class)."""
    check_positive("side", side)
    n = side * side
    idx = np.arange(n, dtype=np.int64)
    x, y = idx % side, idx // side
    pairs = []
    offsets = [(1, 0), (0, 1)]
    if diagonal:
        offsets += [(1, 1), (1, -1)]
    for dx, dy in offsets:
        ok = (x + dx >= 0) & (x + dx < side) & (y + dy >= 0) & (y + dy < side)
        src = idx[ok]
        dst = (x[ok] + dx) + (y[ok] + dy) * side
        pairs.append((src, dst))
        pairs.append((dst, src))
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    rng = np.random.default_rng(seed)
    return _finalize(n, rows, cols, rng)


def road_network(n: int, nnz: int, shortcut_fraction: float = 0.02, seed: int = 0) -> COOMatrix:
    """Road-network analog (``ro``/``eu`` class): a long path with local
    detours plus a small fraction of longer shortcuts. Extremely sparse
    (~1-2 nnz per row) and highly local after ordering."""
    check_positive("n", n)
    check_probability("shortcut_fraction", shortcut_fraction)
    rng = np.random.default_rng(seed)
    budget_pairs = max(1, nnz // 2)
    n_short = int(budget_pairs * shortcut_fraction)
    n_back = min(n - 1, budget_pairs - n_short)
    n_local = budget_pairs - n_short - n_back
    # Backbone path (possibly subsampled when nnz < 2(n-1)).
    base = rng.choice(n - 1, size=n_back, replace=False) if n_back < n - 1 else np.arange(n - 1)
    rows = [base, base + 1]
    cols = [base + 1, base]
    # Local detours within a small window.
    if n_local > 0:
        src = rng.integers(0, n, n_local)
        dst = np.clip(src + rng.integers(2, 12, n_local), 0, n - 1)
        rows += [src, dst]
        cols += [dst, src]
    # Rare long shortcuts (bridges, ferries) — these create the small
    # but non-zero OEI footprint Table I reports for road networks.
    if n_short > 0:
        src = rng.integers(0, n, n_short)
        dst = rng.integers(0, n, n_short)
        rows += [src, dst]
        cols += [dst, src]
    return _trim(
        _finalize(n, np.concatenate(rows), np.concatenate(cols), rng), nnz
    )


def circuit_like(n: int, nnz: int, n_rails: int = 4, seed: int = 0) -> COOMatrix:
    """Circuit-simulation analog (``g2`` class): near-diagonal coupling
    plus a handful of dense "rail" rows/columns (power/ground nets)."""
    check_positive("n", n)
    rng = np.random.default_rng(seed)
    m = int(nnz * 0.9)
    rows = rng.integers(0, n, m)
    cols = np.clip(rows + rng.integers(-3, 4, m), 0, n - 1)
    rails = rng.choice(n, size=max(1, n_rails), replace=False)
    rail_deg = max(1, (nnz - m) // (2 * max(1, n_rails)))
    rail_rows, rail_cols = [], []
    for rail in rails:
        others = rng.integers(0, n, rail_deg)
        rail_rows += [np.full(rail_deg, rail), others]
        rail_cols += [others, np.full(rail_deg, rail)]
    rows = np.concatenate([rows] + rail_rows)
    cols = np.concatenate([cols] + rail_cols)
    return _trim(_finalize(n, rows, cols, rng), nnz)


def clique_overlap(
    n: int, nnz: int, clique_size: int = 30, locality: float = 0.9, seed: int = 0
) -> COOMatrix:
    """Co-authorship analog (``co`` class): overlapping dense cliques.
    ``locality`` controls how near-diagonal the clique membership is."""
    check_positive("n", n)
    check_probability("locality", locality)
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    budget = int(nnz * 1.1)
    while budget > 0:
        center = int(rng.integers(0, n))
        spread = clique_size if rng.random() < locality else n // 4
        members = np.unique(
            np.clip(center + rng.integers(-spread, spread + 1, clique_size), 0, n - 1)
        )
        r = np.repeat(members, members.size)
        c = np.tile(members, members.size)
        rows.append(r)
        cols.append(c)
        budget -= r.size
    return _trim(
        _finalize(n, np.concatenate(rows), np.concatenate(cols), rng), nnz
    )


def watts_strogatz(
    n: int, k: int = 6, rewire: float = 0.1, seed: int = 0
) -> COOMatrix:
    """Small-world graph: a ring lattice of degree ``k`` with a
    ``rewire`` fraction of edges re-targeted uniformly. Low ``rewire``
    is nearly banded; high ``rewire`` approaches a random graph —
    a one-knob family for reuse-window studies."""
    check_positive("n", n)
    check_positive("k", k)
    check_probability("rewire", rewire)
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), k // 2)
    offsets = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    dst = (src + offsets) % n
    rewired = rng.random(dst.size) < rewire
    dst[rewired] = rng.integers(0, n, int(rewired.sum()))
    rows = np.concatenate((src, dst))
    cols = np.concatenate((dst, src))
    return _finalize(n, rows, cols, rng)


def barabasi_albert(n: int, m: int = 3, seed: int = 0) -> COOMatrix:
    """Preferential-attachment graph: each new vertex attaches to ``m``
    existing vertices with probability proportional to degree — hubs
    emerge early (low indices), giving a naturally skewed ordering."""
    check_positive("n", n)
    check_positive("m", m)
    rng = np.random.default_rng(seed)
    targets = list(range(min(m, n)))
    repeated: list = list(targets)
    rows, cols = [], []
    for v in range(len(targets), n):
        chosen = rng.choice(repeated, size=min(m, len(repeated)), replace=False)
        for u in np.unique(chosen):
            rows += [v, int(u)]
            cols += [int(u), v]
            repeated += [v, int(u)]
    return _finalize(
        n, np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64), rng
    )


def bipartite_block(
    n: int, nnz: int, split: float = 0.45, corner_share: float = 0.88, seed: int = 0
) -> COOMatrix:
    """Bundle-adjustment analog (``bu`` class): a point/camera split
    whose coupling block dominates and, in the natural point-then-camera
    ordering, lands in the lower-left corner (rows in the camera range,
    columns in the point range).

    At the OEI step that crosses the split, essentially the whole
    coupling block is live at once — which is how the paper measures up
    to 90% on-chip footprint for ``bu`` (Table I).
    """
    check_positive("n", n)
    check_probability("split", split)
    check_probability("corner_share", corner_share)
    rng = np.random.default_rng(seed)
    k = max(1, int(n * split))
    m_corner = int(nnz * corner_share)
    m_diag = nnz - m_corner
    # Sparse near-diagonal blocks for both partitions.
    d_rows = rng.integers(0, n, m_diag)
    d_cols = np.clip(d_rows + rng.integers(-2, 3, m_diag), 0, n - 1)
    # Coupling block: rows [k, n) x cols [0, k).
    b_rows = rng.integers(k, n, m_corner)
    b_cols = rng.integers(0, k, m_corner)
    rows = np.concatenate((d_rows, b_rows))
    cols = np.concatenate((d_cols, b_cols))
    return _trim(_finalize(n, rows, cols, rng), nnz)
