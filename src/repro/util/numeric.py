"""Numeric helpers shared by the experiment and reporting code."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports geometric-mean speedups throughout the evaluation;
    this is the single implementation every experiment uses.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence is undefined")
    for v in vals:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v!r}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with an explicit value for a zero
    denominator (used for utilization ratios of empty phases)."""
    if denominator == 0:
        return default
    return numerator / denominator


def human_bytes(n: float) -> str:
    """Format a byte count for reports, e.g. ``1.50 MB``."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n!r}")
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(n)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
