"""Small shared utilities: argument validation, deterministic RNG
handling, and numeric helpers used across the library."""

from repro.util.validation import (
    check_index,
    check_positive,
    check_nonnegative,
    check_probability,
    check_same_length,
)
from repro.util.numeric import geomean, human_bytes, safe_div

__all__ = [
    "check_index",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_same_length",
    "geomean",
    "human_bytes",
    "safe_div",
]
