"""Argument-validation helpers.

These raise early with messages that name the offending argument, so a
bad call fails at the library boundary instead of deep inside numpy.
"""

from __future__ import annotations

from typing import Sized

from repro.errors import ShapeError


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_index(name: str, value: int, size: int) -> None:
    """Raise ``IndexError`` unless ``0 <= value < size``."""
    if not 0 <= value < size:
        raise IndexError(f"{name}={value} out of range for size {size}")


def check_same_length(a_name: str, a: Sized, b_name: str, b: Sized) -> None:
    """Raise :class:`ShapeError` unless the two sized objects match."""
    if len(a) != len(b):
        raise ShapeError(
            f"{a_name} (length {len(a)}) and {b_name} (length {len(b)}) "
            "must have the same length"
        )
