"""CPU baseline: ALP/GraphBLAS on an AMD 5800X3D-class multicore
(Section V-B, Fig 16 / Fig 22).

The model captures the three effects the paper attributes the CPU
results to:

- 40 GB/s DDR4 delivered at a realistic utilization (the paper
  measures 44 GB/s peak; streaming sparse kernels achieve well below
  peak — Fig 22),
- a large last-level cache (96 MB V-cache): when the matrix fits, it
  streams from DRAM only once for the whole run,
- non-blocking execution fuses producer-consumer chains (the paper
  credits ALP with this), but there is **no cross-iteration reuse**,
- per-operator framework overhead per iteration.

Cache capacity is scaled with the same per-matrix factor as the
Sparsepipe buffer (DESIGN.md), preserving the paper's fits/doesn't-fit
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.arch.config import CPU_DDR4, MemoryConfig
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult, TrafficBreakdown
from repro.baselines.roofline import fused_vector_bytes, iteration_ops
from repro.engine.registry import register_arch
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult

#: The 5800X3D's stacked V-cache capacity.
PAPER_LLC_BYTES = 96 * 1024 * 1024


@register_arch(
    "cpu",
    takes_config=False,
    description="ALP/GraphBLAS multicore framework (AMD 5800X3D class)",
)
@dataclass(frozen=True)
class CPUModel:
    """Analytical multicore STA framework model."""

    memory: MemoryConfig = CPU_DDR4
    bandwidth_utilization: float = 0.62   #: achieved / peak for sparse streams
    effective_gops: float = 55.0          #: semiring ops/s the cores sustain (x1e9)
    operator_overhead_s: float = 2.0e-6   #: framework dispatch per operator
    llc_bytes: float = PAPER_LLC_BYTES
    #: Fraction of matrix re-reads served by the cache when the matrix
    #: fits. Real frameworks never get full residency (conflict misses,
    #: vector traffic, metadata); Fig 22 shows caches *reduce* traffic
    #: for small matrices without eliminating it.
    cache_hit_rate: float = 0.6

    def prepare(
        self, profile: WorkloadProfile, matrix: Union[COOMatrix, PreprocessResult]
    ) -> LoadPlan:
        return LoadPlan.from_matrix(matrix, subtensor_cols=128)

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        paper_nnz: int = None,
    ) -> SimResult:
        plan = self.prepare(profile, matrix)
        llc = self.llc_bytes
        overhead = self.operator_overhead_s
        if paper_nnz is not None:
            # Scale capacity *and* fixed time overheads by the same
            # per-matrix factor as the matrices themselves (DESIGN.md),
            # so the overhead-to-work ratio matches the paper's runs.
            scale = plan.total_nnz / paper_nnz
            llc = self.llc_bytes * scale
            overhead = self.operator_overhead_s * scale
        # CSR-only storage on CPU: a single orientation.
        matrix_bytes = plan.matrix_stream_bytes
        fits_in_cache = matrix_bytes <= llc

        achieved_bw = self.memory.bandwidth_gbps * 1e9 * self.bandwidth_utilization
        n_operators = 1 + profile.total_ewise_ops

        traffic = TrafficBreakdown()
        seconds = 0.0
        ops_total = 0.0
        for k in range(profile.n_iterations):
            if k == 0 or not fits_in_cache:
                stream = matrix_bytes
            else:
                stream = matrix_bytes * (1.0 - self.cache_hit_rate)
            vector_bytes = fused_vector_bytes(plan.n, profile, k)
            ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
            mem_s = (stream + vector_bytes) / achieved_bw
            compute_s = ops / (self.effective_gops * 1e9)
            seconds += max(mem_s, compute_s) + n_operators * overhead
            ops_total += ops
            traffic.add("csc", stream)
            traffic.add("vector", vector_bytes)

        total = traffic.total_bytes
        deliverable = seconds * self.memory.bandwidth_gbps * 1e9
        return SimResult(
            name=f"cpu:{profile.name}",
            cycles=seconds * 1e9,  # nominal 1 GHz accounting cycles
            seconds=seconds,
            traffic=traffic,
            bandwidth_utilization=min(1.0, total / deliverable) if deliverable else 0.0,
            bandwidth_samples=[],
            compute_ops=ops_total,
            buffer_peak_bytes=min(matrix_bytes, llc),
            oom_evicted_bytes=0.0,
            repack_events=0,
            n_iterations=profile.n_iterations,
            sram_access_bytes=2.0 * total,
        )
