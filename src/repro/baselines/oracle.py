"""The oracle accelerator (Section VI-C, Fig 18).

Assumes every element of the input sparse matrix is already on chip
whenever a cross-iteration reuse opportunity presents, irrespective of
buffer size: OEI pairs execute perfectly — the matrix streams exactly
once per fused pair, nothing is evicted, no load imbalance, no pipeline
overhead. It is the theoretical upper limit of the OEI dataflow on the
given memory system; Sparsepipe's gap to it (the paper reports 66.78%
on average) is entirely buffer- and scheduling-induced.
"""

from __future__ import annotations

from typing import Union

from repro.arch.config import SparsepipeConfig
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult, TrafficBreakdown
from repro.baselines.roofline import (
    fused_vector_bytes,
    iteration_compute_cycles,
    iteration_ops,
    pair_vector_bytes,
)
from repro.engine.registry import register_arch
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult


@register_arch(
    "oracle",
    takes_config=True,
    description="perfect OEI executor, matrix streamed once per pair",
)
class OracleAccelerator:
    """Roofline model of a perfect OEI executor."""

    def __init__(self, config: SparsepipeConfig = SparsepipeConfig()) -> None:
        self.config = config

    def prepare(
        self, profile: WorkloadProfile, matrix: Union[COOMatrix, PreprocessResult]
    ) -> LoadPlan:
        return LoadPlan.from_matrix(matrix, self.config.subtensor_cols)

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        paper_nnz: int = None,
    ) -> SimResult:
        config = self.config
        plan = self.prepare(profile, matrix)
        bpc = config.bytes_per_cycle
        pes = config.pes_per_core

        traffic = TrafficBreakdown()
        cycles = 0.0
        ops_total = 0.0
        k = 0
        while k < profile.n_iterations:
            if profile.has_oei and k + 1 < profile.n_iterations:
                vector_bytes = pair_vector_bytes(plan.n, profile, k)
                ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
                ops += iteration_ops(plan.total_nnz, plan.n, profile, k + 1)
                compute = iteration_compute_cycles(
                    plan.total_nnz, plan.n, profile, k, pes
                ) + iteration_compute_cycles(
                    plan.total_nnz, plan.n, profile, k + 1, pes
                )
                step = 2
            else:
                vector_bytes = fused_vector_bytes(plan.n, profile, k)
                ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
                compute = iteration_compute_cycles(
                    plan.total_nnz, plan.n, profile, k, pes
                )
                step = 1
            mem_bytes = plan.matrix_stream_bytes + vector_bytes
            cycles += max(mem_bytes / bpc, compute)
            ops_total += ops
            traffic.add("csc", plan.matrix_stream_bytes)
            traffic.add("vector", vector_bytes)
            k += step

        seconds = config.seconds(cycles)
        total = traffic.total_bytes
        deliverable = cycles * bpc
        return SimResult(
            name=f"oracle:{profile.name}",
            cycles=cycles,
            seconds=seconds,
            traffic=traffic,
            bandwidth_utilization=min(1.0, total / deliverable) if deliverable else 0.0,
            bandwidth_samples=[],
            compute_ops=ops_total,
            buffer_peak_bytes=float(plan.matrix_stream_bytes),
            oom_evicted_bytes=0.0,
            repack_events=0,
            n_iterations=profile.n_iterations,
            sram_access_bytes=2.0 * total,
        )
