"""GPU baseline: GraphBLAST/Gunrock on an RTX 4070-class GPU
(Section V-B, Fig 17 / Fig 22).

Kernel-per-operator execution means operator intermediates round-trip
through device memory (no producer-consumer fusion across kernels) and
every operator launch pays fixed overhead; the L2 (scaled per matrix
like the Sparsepipe buffer) absorbs matrix re-reads only when the
matrix fits. No cross-iteration reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.arch.config import GPU_GDDR6X, MemoryConfig
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult, TrafficBreakdown
from repro.baselines.roofline import iteration_ops, unfused_vector_bytes
from repro.engine.registry import register_arch
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult

#: RTX 4070 L2 capacity.
PAPER_L2_BYTES = 36 * 1024 * 1024


@register_arch(
    "gpu",
    takes_config=False,
    description="GraphBLAST/Gunrock GPU framework (RTX 4070 class)",
)
@dataclass(frozen=True)
class GPUModel:
    """Analytical GPU STA framework model."""

    memory: MemoryConfig = GPU_GDDR6X
    bandwidth_utilization: float = 0.72   #: sparse kernels vs peak (Fig 22)
    effective_gops: float = 2000.0        #: sustained semiring ops/s (x1e9)
    launch_overhead_s: float = 6.0e-6     #: per kernel launch
    l2_bytes: float = PAPER_L2_BYTES
    #: Fraction of matrix re-reads served by L2 when the matrix fits
    #: (partial — L2 is shared with vectors and intermediates).
    cache_hit_rate: float = 0.5

    def prepare(
        self, profile: WorkloadProfile, matrix: Union[COOMatrix, PreprocessResult]
    ) -> LoadPlan:
        return LoadPlan.from_matrix(matrix, subtensor_cols=128)

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        paper_nnz: int = None,
    ) -> SimResult:
        plan = self.prepare(profile, matrix)
        l2 = self.l2_bytes
        launch = self.launch_overhead_s
        if paper_nnz is not None:
            # Scale capacity and fixed time overheads with the matrices
            # (DESIGN.md) to preserve the paper's overhead-to-work ratio.
            scale = plan.total_nnz / paper_nnz
            l2 = self.l2_bytes * scale
            launch = self.launch_overhead_s * scale
        matrix_bytes = plan.matrix_stream_bytes
        fits_in_l2 = matrix_bytes <= l2

        achieved_bw = self.memory.bandwidth_gbps * 1e9 * self.bandwidth_utilization
        n_kernels = 1 + profile.total_ewise_ops

        traffic = TrafficBreakdown()
        seconds = 0.0
        ops_total = 0.0
        for k in range(profile.n_iterations):
            if k == 0 or not fits_in_l2:
                stream = matrix_bytes
            else:
                stream = matrix_bytes * (1.0 - self.cache_hit_rate)
            vector_bytes = unfused_vector_bytes(plan.n, profile, k, fused_ewise=False)
            ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
            mem_s = (stream + vector_bytes) / achieved_bw
            compute_s = ops / (self.effective_gops * 1e9)
            seconds += max(mem_s, compute_s) + n_kernels * launch
            ops_total += ops
            traffic.add("csc", stream)
            traffic.add("vector", vector_bytes)

        total = traffic.total_bytes
        deliverable = seconds * self.memory.bandwidth_gbps * 1e9
        return SimResult(
            name=f"gpu:{profile.name}",
            cycles=seconds * 1e9,
            seconds=seconds,
            traffic=traffic,
            bandwidth_utilization=min(1.0, total / deliverable) if deliverable else 0.0,
            bandwidth_samples=[],
            compute_ops=ops_total,
            buffer_peak_bytes=min(matrix_bytes, l2),
            oom_evicted_bytes=0.0,
            repack_events=0,
            n_iterations=profile.n_iterations,
            sram_access_bytes=2.0 * total,
        )
