"""The idealized sparse accelerator baseline (Section V-B).

Same compute array and memory bandwidth as Sparsepipe, *always at its
roofline* (no pipeline stalls, no load imbalance, no buffer pressure),
but no inter-operator reuse: the sparse matrix streams from DRAM every
iteration and every operator's intermediate vector round-trips through
memory. It upper-bounds all prior intra-operator accelerators.
"""

from __future__ import annotations

from typing import Union

from repro.arch.config import SparsepipeConfig
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult, TrafficBreakdown
from repro.baselines.roofline import (
    iteration_compute_cycles,
    iteration_ops,
    unfused_vector_bytes,
)
from repro.engine.registry import register_arch
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult


@register_arch(
    "ideal",
    takes_config=True,
    description="idealized intra-operator accelerator, always at roofline",
)
class IdealAccelerator:
    """Roofline model with per-iteration matrix streaming."""

    def __init__(self, config: SparsepipeConfig = SparsepipeConfig()) -> None:
        self.config = config

    def prepare(
        self, profile: WorkloadProfile, matrix: Union[COOMatrix, PreprocessResult]
    ) -> LoadPlan:
        return LoadPlan.from_matrix(matrix, self.config.subtensor_cols)

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        paper_nnz: int = None,
    ) -> SimResult:
        """``paper_nnz`` is accepted for interface parity and ignored —
        this baseline is buffer-size-independent by construction."""
        config = self.config
        plan = self.prepare(profile, matrix)
        bpc = config.bytes_per_cycle
        pes = config.pes_per_core

        traffic = TrafficBreakdown()
        cycles = 0.0
        ops_total = 0.0
        for k in range(profile.n_iterations):
            matrix_bytes = plan.matrix_stream_bytes
            vector_bytes = unfused_vector_bytes(plan.n, profile, k)
            ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
            mem_cycles = (matrix_bytes + vector_bytes) / bpc
            compute_cycles = iteration_compute_cycles(
                plan.total_nnz, plan.n, profile, k, pes
            )
            cycles += max(mem_cycles, compute_cycles)
            ops_total += ops
            traffic.add("csc", matrix_bytes)
            traffic.add("vector", vector_bytes)

        seconds = config.seconds(cycles)
        total = traffic.total_bytes
        deliverable = cycles * bpc
        return SimResult(
            name=f"ideal:{profile.name}",
            cycles=cycles,
            seconds=seconds,
            traffic=traffic,
            bandwidth_utilization=min(1.0, total / deliverable) if deliverable else 0.0,
            bandwidth_samples=[],
            compute_ops=ops_total,
            buffer_peak_bytes=0.0,
            oom_evicted_bytes=0.0,
            repack_events=0,
            n_iterations=profile.n_iterations,
            sram_access_bytes=2.0 * total,
        )
