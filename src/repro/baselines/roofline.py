"""Shared roofline arithmetic for the baseline models.

Every baseline times an iteration as
``max(traffic / achievable_bandwidth, operations / peak_compute)`` plus
model-specific overheads; they differ in *which* traffic they pay:

- fused (producer-consumer reuse): input vector + auxiliary operand
  vectors + final writebacks only,
- unfused: additionally the contraction output and every e-wise
  intermediate makes a DRAM round trip.
"""

from __future__ import annotations

from repro.arch.profile import WorkloadProfile

VECTOR_ELEMENT_BYTES = 8.0


def fused_vector_bytes(n: int, profile: WorkloadProfile, iteration: int) -> float:
    """Vector traffic of one iteration with producer-consumer fusion."""
    act = profile.activity_at(iteration)
    streams = 1 + profile.aux_streams + profile.writeback_streams
    return (
        VECTOR_ELEMENT_BYTES * n * profile.feature_dim * act * streams
        + profile.extra_dram_bytes_per_iteration
    )


def unfused_vector_bytes(
    n: int, profile: WorkloadProfile, iteration: int, fused_ewise: bool = True
) -> float:
    """Vector traffic of one iteration without inter-operator reuse.

    ``fused_ewise=True`` models an accelerator that still fuses the
    e-wise chain internally (any competent design does) but stages the
    contraction output through DRAM: x read, y written then re-read,
    final output written. ``fused_ewise=False`` models kernel-per-
    operator execution (GraphBLAST-style GPUs), where every e-wise
    intermediate also round-trips.
    """
    act = profile.activity_at(iteration)
    per_element = VECTOR_ELEMENT_BYTES * profile.feature_dim * act
    if fused_ewise:
        chain_streams = 3 + profile.writeback_streams  # x, y out, y in, out
    else:
        chain_streams = 2 + 2 * profile.total_ewise_ops
    aux = profile.aux_streams
    return per_element * n * (chain_streams + aux) + (
        profile.extra_dram_bytes_per_iteration
    )


def pair_vector_bytes(n: int, profile: WorkloadProfile, iteration: int) -> float:
    """Vector traffic of one fused OEI pair (iterations k and k+1): the
    first input vector is read, both auxiliary streams are read, both
    outputs are written; the intermediate vector lives on chip."""
    act1 = profile.activity_at(iteration)
    act2 = profile.activity_at(iteration + 1)
    per_element = VECTOR_ELEMENT_BYTES * profile.feature_dim
    return per_element * n * (
        act1
        + profile.aux_streams * (act1 + act2)
        + profile.writeback_streams * (act1 + act2)
    ) + 2 * profile.extra_dram_bytes_per_iteration


def iteration_ops(nnz: int, n: int, profile: WorkloadProfile, iteration: int) -> float:
    """PE operations of one iteration (contraction + e-wise + extras)."""
    act = profile.activity_at(iteration)
    f = profile.feature_dim
    return (
        nnz * act * f
        + n * act * f * profile.total_ewise_ops
        + profile.extra_ops_per_iteration
    )


def iteration_compute_cycles(
    nnz: int, n: int, profile: WorkloadProfile, iteration: int, pes_per_core: int
) -> float:
    """Compute cycles of one iteration on a Sparsepipe-class machine:
    the contraction, e-wise, and extra work run on *separate* cores and
    overlap perfectly, so the bound is the slowest core, not the sum.
    Used by the idealized and oracle accelerators, which share
    Sparsepipe's compute organization."""
    act = profile.activity_at(iteration)
    f = profile.feature_dim
    slowest = max(
        nnz * act * f,
        n * act * f * profile.total_ewise_ops,
        profile.extra_ops_per_iteration,
    )
    return slowest / pes_per_core
