"""Software OEI on general-purpose hardware — the paper's first
future-work question, made concrete.

Section VIII asks: *"how to implement the OEI dataflow on
general-purpose hardware (e.g., GPGPU), and design the extra hardware
support to facilitate the buffer management and synchronization across
stages?"* — and Section II-B argues that doing it purely in software
"can be both challenging and inefficient, negating the potential
benefits".

This model quantifies that argument: a CPU executing OEI pairs in
software gets the halved matrix traffic, but pays

- software buffer management: every reuse-window element is inserted
  into and evicted from a cache-resident staging structure by ordinary
  instructions (``buffer_mgmt_ops_per_element``),
- cross-stage synchronization per sub-tensor step
  (``sync_overhead_s``), since OS/e-wise/IS are threads, not pipeline
  stages,
- the same limited bandwidth utilization as the plain CPU framework.

Comparing :class:`SoftwareOEIModel` against :class:`~repro.baselines.
cpu.CPUModel` and the iso-CPU Sparsepipe shows where the hardware
support actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.arch.config import CPU_DDR4, MemoryConfig
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult, TrafficBreakdown
from repro.baselines.roofline import (
    fused_vector_bytes,
    iteration_ops,
    pair_vector_bytes,
)
from repro.engine.registry import register_arch
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult


@register_arch(
    "software_oei",
    takes_config=False,
    description="CPU running the OEI pair schedule in software (Sec II-B/VIII)",
)
@dataclass(frozen=True)
class SoftwareOEIModel:
    """ALP/GraphBLAS-class CPU running the OEI pair schedule in
    software."""

    memory: MemoryConfig = CPU_DDR4
    bandwidth_utilization: float = 0.62
    effective_gops: float = 55.0
    #: Instructions spent staging one matrix element through the
    #: software reuse window (insert, index update, eviction check).
    buffer_mgmt_ops_per_element: float = 6.0
    #: Thread synchronization per sub-tensor pipeline step.
    sync_overhead_s: float = 1.5e-6
    subtensor_cols: int = 128

    def prepare(
        self, profile: WorkloadProfile, matrix: Union[COOMatrix, PreprocessResult]
    ) -> LoadPlan:
        return LoadPlan.from_matrix(matrix, self.subtensor_cols)

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        paper_nnz: int = None,
    ) -> SimResult:
        plan = self.prepare(profile, matrix)
        sync = self.sync_overhead_s
        if paper_nnz is not None:
            sync = self.sync_overhead_s * plan.total_nnz / paper_nnz

        achieved_bw = self.memory.bandwidth_gbps * 1e9 * self.bandwidth_utilization
        gops = self.effective_gops * 1e9

        traffic = TrafficBreakdown()
        seconds = 0.0
        ops_total = 0.0
        k = 0
        while k < profile.n_iterations:
            paired = profile.has_oei and k + 1 < profile.n_iterations
            if paired:
                matrix_bytes = plan.matrix_stream_bytes
                vector_bytes = pair_vector_bytes(plan.n, profile, k)
                ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
                ops += iteration_ops(plan.total_nnz, plan.n, profile, k + 1)
                # Every element passes through the software window once.
                ops += plan.total_nnz * self.buffer_mgmt_ops_per_element
                steps = plan.n_steps
                step = 2
            else:
                matrix_bytes = plan.matrix_stream_bytes
                vector_bytes = fused_vector_bytes(plan.n, profile, k)
                ops = iteration_ops(plan.total_nnz, plan.n, profile, k)
                steps = plan.n_subtensors
                step = 1
            mem_s = (matrix_bytes + vector_bytes) / achieved_bw
            compute_s = ops / gops
            seconds += max(mem_s, compute_s) + steps * sync
            ops_total += ops
            traffic.add("csc", matrix_bytes)
            traffic.add("vector", vector_bytes)
            k += step

        total = traffic.total_bytes
        deliverable = seconds * self.memory.bandwidth_gbps * 1e9
        return SimResult(
            name=f"software-oei:{profile.name}",
            cycles=seconds * 1e9,
            seconds=seconds,
            traffic=traffic,
            bandwidth_utilization=min(1.0, total / deliverable) if deliverable else 0.0,
            bandwidth_samples=[],
            compute_ops=ops_total,
            buffer_peak_bytes=0.0,
            oom_evicted_bytes=0.0,
            repack_events=0,
            n_iterations=profile.n_iterations,
            sram_access_bytes=2.0 * total,
        )
