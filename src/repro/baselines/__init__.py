"""Baseline architecture models the paper compares against (Section V-B).

- :class:`IdealAccelerator` — the paper's main baseline: a sparse
  accelerator with Sparsepipe's compute and bandwidth that *always runs
  at its roofline* but exploits no inter-operator reuse (matrix
  streamed every iteration, operator intermediates spilled to DRAM).
- :class:`OracleAccelerator` — perfect inter-operator reuse regardless
  of buffer size (Section VI-C): the matrix is loaded exactly once.
- :class:`CPUModel` — an ALP/GraphBLAS-style multicore (AMD 5800X3D
  class: 40 GB/s DRAM, large V-cache, non-blocking producer-consumer
  fusion, no cross-iteration reuse).
- :class:`GPUModel` — a GraphBLAST/Gunrock-style GPU (RTX 4070 class:
  504 GB/s, kernel-per-operator execution).
"""

from repro.baselines.roofline import fused_vector_bytes, unfused_vector_bytes
from repro.baselines.ideal_accelerator import IdealAccelerator
from repro.baselines.oracle import OracleAccelerator
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.baselines.software_oei import SoftwareOEIModel

__all__ = [
    "IdealAccelerator",
    "OracleAccelerator",
    "CPUModel",
    "GPUModel",
    "SoftwareOEIModel",
    "fused_vector_bytes",
    "unfused_vector_bytes",
]
