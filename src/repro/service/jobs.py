"""Job records and the crash-recovery spool of the simulation service.

A :class:`Job` is one client submission: a single ``(arch, workload,
matrix)`` point plus its priority and lifecycle state. Identical
submissions (same content key) do **not** each get their own
simulation — the queue coalesces them onto one execution and fans the
result out — but they *do* each get their own job record, so every
client can observe its own status and provenance (the coalesced ones
carry ``coalesced_into`` and a manifest marked ``coalesced=True``).

The :class:`Spool` is the queue's persistence: one small JSON document
per job under a spool directory, written via the same tmp-rename
protocol as the result store, updated on every status transition. A
daemon that crashes (or is SIGKILLed) mid-run restarts, replays the
spool, and re-enqueues every job that never reached a terminal state —
results already produced are served from the result store, so recovery
re-runs only what was genuinely lost.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.arch.stats import SimResult
from repro.obs.manifest import RunManifest

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: Every valid state, lifecycle order.
STATUSES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: Distinguishes temp files of concurrent threads in one process.
_TMP_COUNTER = itertools.count()


@dataclass
class Job:
    """One submission's lifecycle record."""

    job_id: str
    point: Tuple[str, str, str]
    priority: int = 0
    status: str = QUEUED
    #: Job id of the submission whose execution this one coalesced
    #: onto (None for the primary submission of its key).
    coalesced_into: Optional[str] = None
    error: Optional[str] = None
    result: Optional[SimResult] = field(default=None, repr=False)
    manifest: Optional[RunManifest] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @property
    def seq(self) -> int:
        """Monotone submission sequence number encoded in the id."""
        return int(self.job_id.rsplit("-", 1)[-1])

    def describe(self) -> Dict[str, object]:
        """Status document: everything but the (possibly large) result
        payload — what ``status`` requests and the spool record."""
        return {
            "job_id": self.job_id,
            "point": list(self.point),
            "priority": self.priority,
            "status": self.status,
            "coalesced_into": self.coalesced_into,
            "error": self.error,
            "manifest": None if self.manifest is None
            else self.manifest.to_dict(),
        }

    def to_doc(self) -> Dict[str, object]:
        """Full document, result payload included (``result`` reply)."""
        doc = self.describe()
        doc["result"] = None if self.result is None else self.result.to_dict()
        return doc


def job_id_for(seq: int) -> str:
    """Canonical job id for one submission sequence number."""
    return f"job-{seq:06d}"


class Spool:
    """Directory of per-job JSON records for crash recovery.

    Writes follow the tmp-rename protocol (pid + per-process counter
    temp name, then an atomic ``replace``), so a reader — including a
    recovering daemon — never observes a torn record.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def write(self, job: Job) -> Path:
        """Persist one job's current state atomically."""
        path = self.path_for(job.job_id)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )
        tmp.write_text(json.dumps(job.describe(), sort_keys=True))
        tmp.replace(path)
        return path

    def load(self) -> List[Dict[str, object]]:
        """Every readable spool record, submission order. Unparseable
        records (a writer crashed before tmp-rename ever landed one)
        are skipped — recovery is best-effort by design."""
        docs = []
        for path in sorted(self.root.glob("job-*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(doc, dict) and "job_id" in doc and "point" in doc:
                docs.append(doc)
        return docs

    def max_seq(self) -> int:
        """Highest submission sequence number on disk (0 when empty) —
        a recovering queue resumes its id counter past this."""
        top = 0
        for doc in self.load():
            try:
                top = max(top, int(str(doc["job_id"]).rsplit("-", 1)[-1]))
            except ValueError:
                continue
        return top

    def sweep_tmp(self) -> None:
        """Remove temp debris a crashed writer left behind."""
        for tmp in self.root.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
