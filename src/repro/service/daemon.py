"""The simulation-service daemon: a TCP front door on one JobQueue.

``python -m repro serve`` boots this. The daemon owns a
:class:`~repro.service.queue.JobQueue` (and through it the shared
warm :class:`~repro.experiments.runner.ExperimentContext`) and speaks
the newline-delimited JSON protocol of
:mod:`repro.service.client`: one request object per line, one
response per line, ``{"ok": true, ...}`` or
``{"ok": false, "error": ...}``.

Everything here runs on the event loop; protocol handling never
blocks on a simulation (the queue's executor thread does the heavy
lifting), so status probes stay responsive while a batch runs.
:class:`BackgroundDaemon` hosts the whole stack — loop, queue, server
— on a private thread for tests and the in-process CI check.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ReproError, ServiceError
from repro.experiments.runner import ExperimentContext
from repro.service.queue import JobQueue

#: Cap one request line; anything longer is a client bug, not a job.
MAX_REQUEST_BYTES = 1 << 20


def _write_endpoint_file(path: Path, host: str, port: int) -> None:
    """Advertise the bound endpoint (tmp-rename; readers never see a
    torn file). ``--port 0`` plus this file is how CI discovers the
    kernel-chosen port."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps({"host": host, "port": port}, sort_keys=True))
    tmp.replace(path)


class Daemon:
    """One TCP server bound to one :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        host: str = "127.0.0.1",
        port: int = 0,
        endpoint_file: Optional[Union[str, Path]] = None,
    ) -> None:
        self.queue = queue
        self.host = host
        self.port = int(port)  # 0 = kernel-chosen; real port after start()
        self.endpoint_file = endpoint_file
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the queue and bind the listener; resolves the real
        port and advertises it."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.endpoint_file is not None:
            _write_endpoint_file(Path(self.endpoint_file), self.host, self.port)

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or a ``shutdown`` op),
        then close the listener and drain the queue."""
        assert self._stopping is not None, "start() first"
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        await self.queue.close()

    def request_stop(self) -> None:
        """Signal shutdown; safe from any thread."""
        if self._stopping is None or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stopping.set)
        except RuntimeError:
            pass  # loop already closed — the daemon is gone anyway

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long or torn request; drop the peer
                if not line:
                    break
                reply = await self._dispatch_line(line)
                writer.write(
                    (json.dumps(reply, sort_keys=True) + "\n").encode("utf-8")
                )
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            pass  # loop teardown after shutdown cancels live peers;
            # ending normally keeps the streams done-callback quiet
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, object]:
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict) or "op" not in doc:
                raise ServiceError("a request is a JSON object with an 'op'")
            return await self._dispatch(doc)
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except ValueError as exc:
            return {"ok": False, "error": f"malformed request: {exc}"}
        except asyncio.TimeoutError:
            return {"ok": False, "error": "timed out waiting for the job"}

    async def _dispatch(self, doc: Dict[str, object]) -> Dict[str, object]:
        op = doc["op"]
        queue = self.queue
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            job_id = await queue.submit(
                tuple(doc.get("point", ())),
                priority=int(doc.get("priority", 0) or 0),
            )
            return {"ok": True, "job_id": job_id}
        if op == "status":
            return {"ok": True, "job": queue.status(str(doc.get("job_id")))}
        if op == "result":
            timeout = doc.get("timeout_s")
            job = await queue.result(
                str(doc.get("job_id")),
                timeout=None if timeout is None else float(timeout),
            )
            return {"ok": True, "job": job.to_doc()}
        if op == "cancel":
            cancelled = await queue.cancel(str(doc.get("job_id")))
            return {"ok": True, "cancelled": cancelled}
        if op == "stats":
            return {"ok": True, "stats": queue.stats()}
        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "stopping": True}
        raise ServiceError(f"unknown op {op!r}")


async def run_daemon(
    context: Optional[ExperimentContext] = None,
    spool_dir: Optional[Union[str, Path]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    endpoint_file: Optional[Union[str, Path]] = None,
    sim_workers: Optional[int] = None,
    on_error: str = "retry",
    scheduler: Optional[str] = None,
    announce=None,
) -> None:
    """Boot queue + daemon and serve until a ``shutdown`` op.

    ``announce`` (when given) is called once with the bound daemon —
    the CLI prints the endpoint through it, tests capture the port.
    ``scheduler`` names the batch execution backend (``--scheduler``).
    """
    queue = JobQueue(
        context=context, spool_dir=spool_dir,
        sim_workers=sim_workers, on_error=on_error,
        scheduler=scheduler,
    )
    daemon = Daemon(
        queue, host=host, port=port, endpoint_file=endpoint_file,
    )
    await daemon.start()
    if announce is not None:
        announce(daemon)
    await daemon.serve_until_stopped()


class BackgroundDaemon:
    """A daemon on a private event-loop thread, for tests and the CI
    smoke check: ``with BackgroundDaemon(...) as bg: client(bg.port)``.

    Startup is synchronized on a :class:`threading.Event`; entering the
    context returns only once the port is bound (or raises the boot
    failure). Exit requests a clean stop and joins the thread.
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = dict(kwargs)
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._boot_error: Optional[BaseException] = None
        self.daemon: Optional[Daemon] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def _main(self) -> None:
        def announce(daemon: Daemon) -> None:
            self.daemon = daemon
            self.host = daemon.host
            self.port = daemon.port
            self._ready.set()

        try:
            asyncio.run(run_daemon(announce=announce, **self._kwargs))
        except BaseException as exc:  # surface boot/serve failures
            self._boot_error = exc
        finally:
            self._ready.set()

    def __enter__(self) -> "BackgroundDaemon":
        self._thread = threading.Thread(
            target=self._main, name="repro-service-daemon", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self.daemon is None:
            self.stop()
            raise ServiceError(
                f"daemon failed to boot: {self._boot_error or 'timeout'}")
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self.daemon is not None:
            self.daemon.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None
        if self._boot_error is not None and not isinstance(
            self._boot_error, (KeyboardInterrupt, SystemExit)
        ):
            error, self._boot_error = self._boot_error, None
            raise ServiceError(f"daemon died: {error}") from error
