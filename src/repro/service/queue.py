"""The asyncio job queue: coalescing submissions over one warm store.

Before this layer, every caller of
:meth:`~repro.experiments.runner.ExperimentContext.simulate_many`
owned its own cache directory and process pool — N clients meant N
cold caches and N uncoordinated worker fleets. :class:`JobQueue` is
the service-side fix, the same move SpArch and SparseZipper make at
the hardware level (merge redundant partial work before it hits
memory) applied to requests:

- **One warm store.** All jobs run through one
  :class:`~repro.experiments.runner.ExperimentContext` whose disk
  cache is the sharded, LRU-bounded
  :class:`~repro.engine.cache.ResultCache`. A job whose result is
  already in the in-memory layer completes at submit time, manifest
  marked ``from_cache=True``.
- **Request coalescing.** Submissions are keyed by
  :meth:`ExperimentContext.point_key` (the content hash of the whole
  simulation input). While a key is queued or running, further
  identical submissions attach to the in-flight execution instead of
  enqueueing their own: exactly one simulation runs, every waiter
  receives the bit-identical result, and the attached jobs' manifests
  are marked ``coalesced=True`` with ``coalesced_into`` naming the
  primary job.
- **Priorities and batching.** Ready jobs are drained in priority
  order (higher first, FIFO within a priority) and dispatched in
  batches onto :func:`~repro.resilience.supervisor.supervised_map`
  via ``simulate_many`` — one supervised worker fleet for the whole
  service. Worker death, retries, and watchdog expiry surface as
  per-job status/manifest provenance, never as service crashes.
- **Crash recovery.** With a spool directory every job transition is
  journaled (:class:`~repro.service.jobs.Spool`); a restarted queue
  re-enqueues whatever never reached a terminal state.

Threading model: all queue state is owned by the event-loop thread.
Simulation batches run on a single dedicated executor thread (the
only thread that touches the shared context while a batch is in
flight), which in turn fans out over the supervised process pool —
so no queue/context state is ever mutated from two threads at once.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.engine.registry import get_arch
from repro.errors import ServiceError
from repro.experiments.runner import ExperimentContext, Point
from repro.matrices.suite import SUITE
from repro.service import jobs as jb
from repro.service.jobs import Job, Spool, job_id_for
from repro.workloads.registry import WORKLOADS

#: Default maximum number of distinct keys dispatched as one batch.
DEFAULT_BATCH_LIMIT = 16


class JobQueue:
    """Priority job queue with request coalescing; see module docs.

    ``context`` defaults to a fresh :class:`ExperimentContext`;
    production deployments pass one configured with ``cache_dir`` (the
    shared sharded store) and a byte budget. ``sim_workers`` is the
    supervised process-pool width each batch fans out over;
    ``on_error`` is the per-point policy (default ``"retry"`` — a
    service should absorb transient faults, not crash on them).
    ``scheduler`` names the execution backend each batch fans out on
    (``"inprocess"`` | ``"localpool"`` | ``"spool"``, see
    ``docs/scheduling.md``; default: the context's, else the
    historical pool heuristic). ``runner`` overrides the batch
    execution callable (tests inject blocking/recording runners to
    pin down coalescing windows).
    """

    def __init__(
        self,
        context: Optional[ExperimentContext] = None,
        spool_dir: Optional[Union[str, Path]] = None,
        sim_workers: Optional[int] = None,
        on_error: str = "retry",
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        runner=None,
        scheduler: Optional[str] = None,
    ) -> None:
        self.context = context if context is not None else ExperimentContext()
        self.metrics = self.context.metrics
        self.sim_workers = sim_workers
        self.on_error = on_error
        self.scheduler = scheduler
        self.batch_limit = max(1, int(batch_limit))
        self._runner = runner if runner is not None else self._run_points
        self.spool = Spool(spool_dir) if spool_dir is not None else None
        #: Every job ever submitted to this queue, by id.
        self._jobs: Dict[str, Job] = {}
        #: Waiter job ids per content key, submission order; present
        #: exactly while the key is queued or running. The first
        #: non-cancelled entry is the primary, the rest coalesce.
        self._waiters: Dict[Tuple, List[str]] = {}
        #: Keys currently executing on the runner thread.
        self._running: Set[Tuple] = set()
        self._events: Dict[str, asyncio.Event] = {}
        self._ready: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count(1)
        self._order = itertools.count()  # FIFO tiebreak within a priority
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-runner"
        )
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Recover the spool (if any) and start the dispatcher."""
        if self._closed:
            raise ServiceError("JobQueue is closed")
        if self._dispatcher is None:
            await self._recover()
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-service-dispatch"
            )

    async def close(self) -> None:
        """Stop dispatching and wait for the in-flight batch to land.

        Queued jobs stay journaled in the spool; a later queue over the
        same spool directory re-enqueues them.
        """
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        # Waits for a batch the cancel interrupted mid-await; its jobs
        # remain RUNNING in the spool and recover on restart.
        self._executor.shutdown(wait=True)

    async def join(self, timeout: Optional[float] = None) -> None:
        """Wait until no job is queued or running."""
        if timeout is None:
            await self._idle.wait()
        else:
            await asyncio.wait_for(self._idle.wait(), timeout)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    async def submit(self, point: Point, priority: int = 0) -> str:
        """Submit one ``(arch, workload, matrix)`` point; returns the
        job id immediately.

        Fast paths, in order: a result already in the warm in-memory
        layer completes the job at submit time (``from_cache``); an
        identical queued/running submission coalesces this one onto it
        (``coalesced``); otherwise the job is enqueued by priority.
        """
        if self._closed:
            raise ServiceError("JobQueue is closed")
        point = self._validate_point(point)
        job = Job(
            job_id=job_id_for(next(self._seq)),
            point=point,
            priority=int(priority),
        )
        self._register(job)
        self.metrics.counter("service.jobs_submitted").inc()
        key = self.context.point_key(point)

        cached = self.context.result_for(key)
        if cached is not None:
            manifest = self.context.manifests.get(key)
            self._finish(
                job, jb.DONE, result=cached,
                manifest=None if manifest is None
                else manifest.served_from_cache(),
            )
            self.metrics.counter("service.cache_served").inc()
            return job.job_id

        waiters = self._waiters.get(key)
        if waiters:
            job.coalesced_into = waiters[0]
            waiters.append(job.job_id)
            primary = self._jobs[waiters[0]]
            if primary.status == jb.RUNNING:
                self._transition(job, jb.RUNNING)
            self.metrics.counter("service.jobs_coalesced").inc()
        else:
            self._waiters[key] = [job.job_id]
            self._enqueue(key, job.priority)
        self._idle.clear()
        self._spool(job)
        return job.job_id

    def status(self, job_id: str) -> Dict[str, object]:
        """Status document of one job (:meth:`Job.describe`)."""
        return self._job(job_id).describe()

    async def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Job:
        """Wait until ``job_id`` reaches a terminal state; returns the
        job record (result payload included for ``done`` jobs)."""
        job = self._job(job_id)
        event = self._events[job_id]
        if timeout is None:
            await event.wait()
        else:
            await asyncio.wait_for(event.wait(), timeout)
        return job

    async def cancel(self, job_id: str) -> bool:
        """Cancel one queued job. Returns False when the job is
        already running (the supervised fleet cannot abandon a point
        mid-simulation) or terminal."""
        job = self._job(job_id)
        if job.terminal or job.status == jb.RUNNING:
            return False
        key = self.context.point_key(job.point)
        waiters = self._waiters.get(key, [])
        if job.job_id in waiters:
            was_primary = waiters and waiters[0] == job.job_id
            waiters.remove(job.job_id)
            if not waiters:
                # Stale ready-queue entries for the key are skipped at
                # dispatch (no waiters left).
                self._waiters.pop(key, None)
            elif was_primary:
                self._jobs[waiters[0]].coalesced_into = None
        self._finish(job, jb.CANCELLED)
        self.metrics.counter("service.jobs_cancelled").inc()
        self._maybe_idle()
        return True

    def depth(self) -> int:
        """Jobs not yet terminal (queued + running + coalesced)."""
        return sum(1 for job in self._jobs.values() if not job.terminal)

    def stats(self) -> Dict[str, object]:
        """Queue-level statistics plus the full metrics registry."""
        by_status: Dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "depth": self.depth(),
            "jobs": by_status,
            "running_keys": len(self._running),
            "metrics": self.metrics.to_dict(),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entries = [await self._ready.get()]
            while len(entries) < self.batch_limit:
                try:
                    entries.append(self._ready.get_nowait())
                except asyncio.QueueEmpty:
                    break
            entries.sort()  # priority order inside the batch, too
            batch: List[Tuple[Tuple, Point]] = []
            seen: Set[Tuple] = set()
            for _neg_priority, _order, key in entries:
                ids = self._waiters.get(key)
                if not ids or key in seen or key in self._running:
                    continue  # cancelled away, or a stale duplicate
                seen.add(key)
                batch.append((key, self._jobs[ids[0]].point))
            if not batch:
                self._maybe_idle()
                continue
            keys = [key for key, _ in batch]
            points = [point for _, point in batch]
            for key in keys:
                self._running.add(key)
                for job_id in self._waiters[key]:
                    self._transition(self._jobs[job_id], jb.RUNNING)
                    self._spool(self._jobs[job_id])
            self.metrics.counter("service.batches").inc()
            error: Optional[str] = None
            try:
                await loop.run_in_executor(
                    self._executor, self._runner, points
                )
            except Exception as exc:  # a whole-batch failure
                error = f"{type(exc).__name__}: {exc}"
            self._fan_out(keys, error)
            self._maybe_idle()

    def _run_points(self, points: Sequence[Point]) -> None:
        """Default batch runner (executor thread): one supervised
        fan-out over the shared context for the whole batch."""
        self.context.simulate_many(
            list(points),
            max_workers=self.sim_workers,
            on_error=self.on_error,
            scheduler=self.scheduler,
        )

    def _fan_out(self, keys: Sequence[Tuple], error: Optional[str]) -> None:
        """Deliver one finished batch to every waiter of its keys —
        including waiters that attached while the batch was running."""
        for key in keys:
            self._running.discard(key)
            ids = self._waiters.pop(key, [])
            result = self.context.result_for(key)
            manifest = self.context.manifests.get(key)
            primary_seen = False
            for job_id in ids:
                job = self._jobs[job_id]
                if job.terminal:
                    continue  # cancelled while queued
                if result is None:
                    detail = error
                    if detail is None and manifest is not None:
                        detail = "; ".join(
                            str(f.get("error") or f.get("message", ""))
                            for f in manifest.faults
                        ) or "simulation failed"
                    self._finish(
                        job, jb.FAILED,
                        manifest=manifest,
                        error=detail or "simulation failed",
                    )
                    self.metrics.counter("service.jobs_failed").inc()
                    continue
                served = manifest
                if served is not None and primary_seen:
                    served = served.served_coalesced()
                self._finish(job, jb.DONE, result=result, manifest=served)
                primary_seen = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_point(self, point: Point) -> Point:
        point = tuple(point)
        if len(point) != 3:
            raise ServiceError(
                f"a point is (arch, workload, matrix), got {point!r}")
        arch, workload, matrix = (str(p) for p in point)
        get_arch(arch)  # ConfigError on unknown architecture
        if workload not in WORKLOADS:
            raise ServiceError(f"unknown workload {workload!r}")
        if matrix not in SUITE:
            raise ServiceError(f"unknown suite matrix {matrix!r}")
        return (arch, workload, matrix)

    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self._events[job.job_id] = asyncio.Event()

    def _enqueue(self, key: Tuple, priority: int) -> None:
        self._ready.put_nowait((-priority, next(self._order), key))

    def _transition(self, job: Job, status: str) -> None:
        if not job.terminal:
            job.status = status

    def _finish(
        self,
        job: Job,
        status: str,
        result=None,
        manifest=None,
        error: Optional[str] = None,
    ) -> None:
        job.status = status
        job.result = result
        job.manifest = manifest
        job.error = error
        if status == jb.DONE:
            self.metrics.counter("service.jobs_completed").inc()
        self._events[job.job_id].set()
        self._spool(job)

    def _spool(self, job: Job) -> None:
        if self.spool is not None:
            self.spool.write(job)

    def _maybe_idle(self) -> None:
        if self._ready.empty() and not self._running and not any(
            not job.terminal for job in self._jobs.values()
        ):
            self._idle.set()

    async def _recover(self) -> None:
        """Re-enqueue every spooled job that never reached a terminal
        state (crash recovery); resume the id counter past the spool."""
        if self.spool is None:
            return
        self.spool.sweep_tmp()
        docs = self.spool.load()
        top = 0
        recovered = 0
        for doc in docs:
            try:
                top = max(top, int(str(doc["job_id"]).rsplit("-", 1)[-1]))
            except ValueError:
                continue
        self._seq = itertools.count(top + 1)
        for doc in docs:
            if doc.get("status") in jb.TERMINAL:
                continue
            try:
                point = self._validate_point(tuple(doc["point"]))
            except Exception:
                continue  # the workload registry moved on; drop it
            job_id = str(doc["job_id"])
            if job_id in self._jobs:
                continue
            job = Job(
                job_id=job_id,
                point=point,
                priority=int(doc.get("priority", 0)),
            )
            self._register(job)
            key = self.context.point_key(point)
            waiters = self._waiters.get(key)
            if waiters:
                job.coalesced_into = waiters[0]
                waiters.append(job.job_id)
            else:
                self._waiters[key] = [job.job_id]
                self._enqueue(key, job.priority)
            self._idle.clear()
            self._spool(job)
            recovered += 1
        if recovered:
            self.metrics.counter("service.jobs_recovered").inc(recovered)
