"""Blocking client for the simulation-service daemon.

The wire protocol is deliberately primitive — newline-delimited JSON
over TCP, one request object per line, one response object per line —
so a client needs nothing beyond the standard library (and a shell
user can drive the daemon with ``nc``). Every response carries
``"ok"``: ``true`` with the op's payload, or ``false`` with an
``"error"`` string, which the client re-raises as
:class:`~repro.errors.ServiceError`.

Requests each use a fresh connection: the daemon is local and the
simulations behind it dwarf connection setup, and per-request sockets
keep the client trivially safe to share across threads.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError

#: Default daemon endpoint.
DEFAULT_HOST = "127.0.0.1"

#: Client-side socket timeout when the caller does not say otherwise.
DEFAULT_TIMEOUT_S = 60.0

#: Refuse replies beyond this — a sane daemon never sends one, and a
#: bound protects the client from reading garbage forever.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ServiceClient:
    """Synchronous client for one daemon endpoint."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = 0,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if port <= 0:
            raise ServiceError(f"a daemon port is required, got {port!r}")
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self, op: str, transport_timeout_s: Optional[float] = None, **fields
    ) -> Dict[str, object]:
        """One round-trip: send ``{"op": op, **fields}``, return the
        daemon's payload, raising :class:`ServiceError` on transport
        failure or an ``ok=false`` reply. ``transport_timeout_s``
        bounds the socket, not the op (defaults to the client's)."""
        doc = {"op": op, **fields}
        wire = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        budget = (self.timeout_s if transport_timeout_s is None
                  else transport_timeout_s)
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=budget
            ) as conn:
                conn.sendall(wire)
                with conn.makefile("rb") as lines:
                    line = lines.readline(MAX_LINE_BYTES)
        except OSError as exc:
            raise ServiceError(
                f"daemon at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        if not line.endswith(b"\n"):
            raise ServiceError(
                "daemon closed the connection mid-reply"
                if not line else "daemon reply exceeded the line limit")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"malformed daemon reply: {exc}") from exc
        if not isinstance(reply, dict) or "ok" not in reply:
            raise ServiceError(f"malformed daemon reply: {reply!r}")
        if not reply["ok"]:
            raise ServiceError(str(reply.get("error", "daemon error")))
        return reply

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """True when the daemon answers."""
        return bool(self.request("ping")["ok"])

    def submit(self, point: Sequence[str], priority: int = 0) -> str:
        """Submit one ``(arch, workload, matrix)`` point; returns the
        job id without waiting for execution."""
        reply = self.request("submit", point=list(point), priority=priority)
        return str(reply["job_id"])

    def submit_many(
        self, points: Sequence[Sequence[str]], priority: int = 0
    ) -> List[str]:
        """Submit a batch, one job id per point, submission order."""
        return [self.submit(point, priority=priority) for point in points]

    def status(self, job_id: str) -> Dict[str, object]:
        """Status document of one job (no result payload)."""
        return dict(self.request("status", job_id=job_id)["job"])

    def result(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Dict[str, object]:
        """Block until the job is terminal; returns the full job
        document, result payload included for ``done`` jobs.

        The wait is bounded either way: with no explicit ``timeout_s``
        the daemon is asked to give up just inside the client's socket
        budget, so the caller sees a clean ``ServiceError`` rather than
        a dead socket."""
        server_budget = (
            timeout_s if timeout_s is not None
            else max(1.0, self.timeout_s - 2.0)
        )
        reply = self.request(
            "result", job_id=job_id, timeout_s=server_budget,
            # Socket budget outlives the server-side wait.
            transport_timeout_s=server_budget + 10.0,
        )
        return dict(reply["job"])

    def wait_all(
        self,
        job_ids: Sequence[str],
        timeout_s: Optional[float] = None,
    ) -> List[Dict[str, object]]:
        """``result`` for each id, preserving order."""
        return [self.result(job_id, timeout_s=timeout_s)
                for job_id in job_ids]

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; False when it already ran (or is)."""
        return bool(self.request("cancel", job_id=job_id)["cancelled"])

    def stats(self) -> Dict[str, object]:
        """Queue depth, per-status job counts, and the full metrics
        registry (``service.*``, ``cache.*``, engine counters)."""
        return dict(self.request("stats")["stats"])

    def shutdown(self) -> None:
        """Ask the daemon to stop accepting work and exit cleanly."""
        self.request("shutdown")


def endpoint_from_file(path) -> Tuple[str, int]:
    """Read a ``(host, port)`` endpoint a daemon advertised via
    ``--endpoint-file`` (CI boots the daemon with ``--port 0`` and
    discovers the kernel-chosen port here)."""
    try:
        doc = json.loads(open(path, "r", encoding="utf-8").read())
        return str(doc["host"]), int(doc["port"])
    except (OSError, ValueError, KeyError) as exc:
        raise ServiceError(f"unreadable endpoint file {path}: {exc}") from exc
