"""Simulation-as-a-service: async job queue, coalescing, daemon.

The service layer turns the one-shot
:class:`~repro.experiments.runner.ExperimentContext` into a long-lived
facility: many clients submit ``(arch, workload, matrix)`` points to
one daemon, which coalesces identical in-flight requests onto a single
simulation, serves warm results from the sharded LRU-bounded
:class:`~repro.engine.cache.ResultCache`, executes fresh work through
the supervised process fleet, and journals every job to a spool
directory so a crashed daemon recovers its backlog on restart.

Layers (``docs/service.md`` has the full tour):

- :mod:`repro.service.jobs` — job records, lifecycle states, the spool
- :mod:`repro.service.queue` — :class:`JobQueue`: priorities,
  coalescing, batch dispatch, crash recovery
- :mod:`repro.service.daemon` — the TCP daemon (``python -m repro
  serve``) and the in-thread :class:`BackgroundDaemon` harness
- :mod:`repro.service.client` — the blocking stdlib-only client
  (``python -m repro client ...``)
"""

from repro.service.client import ServiceClient, endpoint_from_file
from repro.service.daemon import BackgroundDaemon, Daemon, run_daemon
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATUSES,
    TERMINAL,
    Job,
    Spool,
    job_id_for,
)
from repro.service.queue import DEFAULT_BATCH_LIMIT, JobQueue

__all__ = [
    "BackgroundDaemon",
    "CANCELLED",
    "DEFAULT_BATCH_LIMIT",
    "DONE",
    "Daemon",
    "FAILED",
    "Job",
    "JobQueue",
    "QUEUED",
    "RUNNING",
    "STATUSES",
    "ServiceClient",
    "Spool",
    "TERMINAL",
    "endpoint_from_file",
    "job_id_for",
    "run_daemon",
]
