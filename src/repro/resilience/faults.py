"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` names *sites* — fixed strings compiled into the
library at the few places where real-world failures enter the system —
and describes what should go wrong there:

========================  ============================================
site                      where it is consulted
========================  ============================================
``parallel.worker``       :func:`repro.experiments.runner.
                          _simulate_one_point`, start of every pooled
                          sweep point (``worker_death`` kills the
                          worker process, simulating an OOM kill)
``engine.run``            :func:`repro.engine.registry.run_engine`,
                          before the engine runs (``raise`` throws a
                          transient :class:`~repro.errors.
                          InjectedFault`)
``cache.get``             :meth:`repro.engine.cache.ResultCache.
                          get_entry`, before the entry file is read
                          (``corrupt_file`` truncates / scribbles it)
``ingest.entry``          :func:`repro.formats.matrix_market.
                          read_matrix_market`, per entry line
                          (``corrupt_text`` mangles the line)
========================  ============================================

Whether a fault fires is a **pure function** of ``(seed, site, key)``
— no wall clock, no global RNG — so a chaos run is exactly
reproducible, and each ``(site, key)`` fires **at most once per
process**: the first attempt fails, the retry goes through, which is
what makes ``simulate_many(on_error="retry")`` under a plan
bit-identical to a fault-free run.

With no plan active every hook is a near-free no-op (one module-global
``None`` check), so production paths pay nothing.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import Diagnostic, InjectedFault

#: Fault kinds a plan may request at a site.
KINDS = ("raise", "worker_death", "corrupt_file", "corrupt_text")


@dataclass(frozen=True)
class Fault:
    """What goes wrong at one site.

    ``rate`` is the probability (deterministically derived from the
    plan seed and the site key) that a given key fires; ``keys``
    instead pins the exact keys that fire — when non-empty, ``rate``
    is ignored. ``payload`` parameterizes corruption kinds:
    ``"truncate"`` halves the file, anything else overwrites/replaces
    with the payload text itself.
    """

    kind: str
    rate: float = 1.0
    keys: Tuple[str, ...] = ()
    payload: str = "truncate"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of faults keyed by site name."""

    seed: int = 0
    faults: Dict[str, Fault] = field(default_factory=dict)

    def should_fire(self, site: str, key: str) -> bool:
        """Pure firing decision for one ``(site, key)`` (ignores the
        at-most-once bookkeeping, which is per-process state)."""
        fault = self.faults.get(site)
        if fault is None:
            return False
        if fault.keys:
            return key in fault.keys
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{key}".encode("utf-8")
        ).digest()
        score = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return score < fault.rate


# ----------------------------------------------------------------------
# Per-process state: the active plan, the fired set, the fire log.
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_FIRED: set = set()
_LOG: List[Diagnostic] = []
_IN_WORKER = False


def install(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the active plan for this process (None disarms).
    Arming a plan resets the at-most-once bookkeeping and the fire
    log; disarming preserves the log so a chaos test can still
    :func:`drain_fired` after its ``activate`` block exits."""
    global _PLAN
    _PLAN = plan
    if plan is not None:
        _FIRED.clear()
        _LOG.clear()


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


@contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager arming ``plan`` for the enclosed block."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def mark_worker() -> None:
    """Declare this process a pool worker — enables ``worker_death``
    faults, which are no-ops in the supervising parent (killing the
    parent would be a test-harness bug, not a simulated OOM)."""
    global _IN_WORKER
    _IN_WORKER = True


def drain_fired() -> List[Diagnostic]:
    """SP607 records of every fault fired in this process so far
    (cleared on read)."""
    out = list(_LOG)
    _LOG.clear()
    return out


def _fire(site: str, key: object) -> Optional[Fault]:
    """At-most-once firing decision; records SP607 when it fires."""
    if _PLAN is None:
        return None
    fault = _PLAN.faults.get(site)
    if fault is None:
        return None
    skey = str(key)
    mark = (site, skey)
    if mark in _FIRED or not _PLAN.should_fire(site, skey):
        return None
    _FIRED.add(mark)
    _LOG.append(Diagnostic.info(
        "SP607", f"injected {fault.kind} fault", f"{site}[{skey}]",
    ))
    return fault


# ----------------------------------------------------------------------
# Site hooks (each is a no-op unless a plan is active and fires)
# ----------------------------------------------------------------------
def maybe_die(site: str, key: object) -> None:
    """Kill this process if a ``worker_death`` fault fires — only ever
    inside a marked pool worker."""
    if not _IN_WORKER:
        return
    fault = _fire(site, key)
    if fault is not None and fault.kind == "worker_death":
        os._exit(17)


def maybe_raise(site: str, key: object) -> None:
    """Raise :class:`InjectedFault` if a ``raise`` fault fires."""
    fault = _fire(site, key)
    if fault is not None and fault.kind == "raise":
        diag = Diagnostic.info("SP607", "injected transient failure",
                               f"{site}[{key}]")
        raise InjectedFault(
            f"injected transient failure at {site}[{key}]",
            diagnostics=(diag,),
        )


def maybe_corrupt_file(site: str, key: object, path: Union[str, Path]) -> None:
    """Corrupt ``path`` in place if a ``corrupt_file`` fault fires
    (truncation or garbage, per the fault payload)."""
    path = Path(path)
    if _PLAN is None or not path.exists():
        return
    fault = _fire(site, key)
    if fault is None or fault.kind != "corrupt_file":
        return
    if fault.payload == "truncate":
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
    else:
        path.write_text(fault.payload)


def maybe_corrupt_text(site: str, key: object, text: str) -> str:
    """Return a mangled version of ``text`` if a ``corrupt_text``
    fault fires, else ``text`` unchanged."""
    fault = _fire(site, key)
    if fault is None or fault.kind != "corrupt_text":
        return text
    if fault.payload == "truncate":
        return text[: len(text) // 2]
    return fault.payload
