"""Fault tolerance for sweep execution.

Production-scale sweeps meet real failures: pool workers OOM-killed
mid-sweep, cache files torn by crashed writers, malformed SuiteSparse
downloads. This package is the one layer that handles all of them:

- :mod:`repro.resilience.supervisor` — :func:`supervised_map`, the
  resilient fan-out behind ``ExperimentContext.simulate_many``'s
  ``on_error`` policy: pool breaks degrade to in-process execution
  (SP601), transient item failures retry (SP602), exhausted items are
  recorded as first-class failures (SP603), and a per-item watchdog
  bounds hangs (SP606).
- :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` injecting worker death, cache-file corruption,
  transient engine failures, and malformed-ingest bytes at named
  sites, so every degradation path above is *provable* by the chaos
  suite rather than hoped-for.

``docs/robustness.md`` describes the failure model; the SP6xx codes
live in the :mod:`repro.analysis.diagnostics` registry like every
other diagnostic.
"""

from repro.resilience.faults import (
    Fault,
    FaultPlan,
    activate,
    active_plan,
    drain_fired,
    install,
    maybe_corrupt_file,
    maybe_corrupt_text,
    maybe_die,
    maybe_raise,
)
from repro.resilience.supervisor import (
    DEFAULT_RETRIES,
    POLICIES,
    FanoutOutcome,
    PointFailure,
    supervised_map,
)

__all__ = [
    "DEFAULT_RETRIES",
    "Fault",
    "FaultPlan",
    "FanoutOutcome",
    "POLICIES",
    "PointFailure",
    "activate",
    "active_plan",
    "drain_fired",
    "install",
    "maybe_corrupt_file",
    "maybe_corrupt_text",
    "maybe_die",
    "maybe_raise",
    "supervised_map",
]
