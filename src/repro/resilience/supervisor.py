"""Supervised process-pool fan-out: the resilient sibling of
:func:`repro.engine.parallel.parallel_map`.

:func:`supervised_map` keeps a sweep alive through the failures that
used to kill it:

- **Worker death** (OOM killer, segfault): ``BrokenProcessPool`` is
  caught, the completed prefix is kept, an ``SP601`` diagnostic is
  recorded, and the remaining items degrade to supervised in-process
  execution — one dead worker no longer costs a 495-point sweep.
- **Item exceptions**: governed by ``on_error`` — ``"raise"``
  (propagate, the historical behavior), ``"skip"`` (record an
  ``SP603`` failure, leave ``None`` in that slot), or ``"retry"``
  (bounded re-attempts with ``SP602`` records, then skip-like
  failure). Simulators are pure functions, so a retry that succeeds
  is bit-identical to an undisturbed run.
- **Hangs**: an optional per-item watchdog (``timeout_s``) bounds the
  in-process attempts; expiry raises
  :class:`~repro.errors.WatchdogTimeout` carrying ``SP606``.

The outcome is structured (:class:`FanoutOutcome`): per-slot results,
per-item failure records, retry diagnostics by index, and the global
degradation diagnostics — everything the caller needs to record
partial sweeps as first-class results.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar,
)

from repro.engine.parallel import pool_chunksize
from repro.errors import Diagnostic, WatchdogTimeout
from repro.resilience import faults

T = TypeVar("T")

#: Valid ``on_error`` policies.
POLICIES = ("raise", "skip", "retry")

#: Default bounded re-attempts under ``on_error="retry"``.
DEFAULT_RETRIES = 2


@dataclass(frozen=True)
class PointFailure:
    """One item that exhausted its attempts."""

    index: int
    item: Any
    error: str
    attempts: int
    diagnostic: Diagnostic


@dataclass
class FanoutOutcome:
    """Everything one supervised fan-out produced."""

    #: Per-input-slot results; ``None`` where the item failed.
    results: List[Any] = field(default_factory=list)
    #: Items that exhausted their attempts (empty under ``"raise"``).
    failures: List[PointFailure] = field(default_factory=list)
    #: Retry diagnostics (SP602) by item index — non-empty entries mean
    #: the item eventually succeeded but not on its first attempt.
    retried: Dict[int, List[Diagnostic]] = field(default_factory=dict)
    #: Fan-out-wide diagnostics (SP601 pool breaks).
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: True when the process pool died and the tail ran in-process.
    pool_broken: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_indices(self) -> Dict[int, PointFailure]:
        return {f.index: f for f in self.failures}


def _worker_boot(initializer, initargs, plan) -> None:
    """Pool-worker initializer: mark the process as a worker (arms
    ``worker_death`` faults), install the parent's fault plan (fork
    inherits it, spawn would not), then run the caller's init."""
    faults.mark_worker()
    if plan is not None:
        faults.install(plan)
    if initializer is not None:
        initializer(*initargs)


def _call_with_watchdog(fn: Callable[[T], Any], item: T,
                        timeout_s: Optional[float]) -> Any:
    """Run one item, bounded by a watchdog thread when ``timeout_s``
    is set. A timed-out attempt raises :class:`WatchdogTimeout`; the
    stuck thread is a daemon and cannot block interpreter exit."""
    if timeout_s is None:
        return fn(item)
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = fn(item)
        except BaseException as exc:  # re-raised in the caller below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise WatchdogTimeout(
            f"item exceeded the {timeout_s}s watchdog budget",
            diagnostics=(Diagnostic.error(
                "SP606", f"watchdog expired after {timeout_s}s",
            ),),
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def supervised_map(
    fn: Callable[[T], Any],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: Optional[int] = None,
    on_error: str = "raise",
    retries: int = DEFAULT_RETRIES,
    timeout_s: Optional[float] = None,
    labels: Optional[Sequence[str]] = None,
) -> FanoutOutcome:
    """Map ``fn`` over ``items`` with supervision; see module docs.

    Order-preserving and, for pure ``fn``, bit-identical to a serial
    run regardless of which degradation paths fire. ``labels`` (same
    length as ``items``) name items in diagnostics; defaults to the
    item's ``repr``. The watchdog applies to in-process attempts (the
    pool path cannot kill a hung worker without killing its siblings).
    """
    if on_error not in POLICIES:
        raise ValueError(
            f"on_error must be one of {POLICIES}, got {on_error!r}")
    items = list(items)
    outcome = FanoutOutcome(results=[None] * len(items))
    done = 0
    use_pool = len(items) > 1 and (max_workers is None or max_workers > 1)
    if use_pool:
        done = _pool_pass(fn, items, outcome, max_workers, initializer,
                          initargs, chunksize)
        if done >= len(items):
            return outcome
    if initializer is not None:
        initializer(*initargs)
    for index in range(done, len(items)):
        label = labels[index] if labels else repr(items[index])
        _run_item(fn, items[index], index, label, outcome,
                  on_error, retries, timeout_s)
    return outcome


def _pool_pass(fn, items, outcome, max_workers, initializer, initargs,
               chunksize) -> int:
    """Fill ``outcome.results`` from a process pool until the pool
    breaks, an item raises, or everything completes. Returns how many
    leading slots hold results; the caller finishes the rest
    in-process."""
    if chunksize is None:
        chunksize = pool_chunksize(len(items), max_workers)
    done = 0
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_worker_boot,
            initargs=(initializer, tuple(initargs), faults.active_plan()),
        ) as pool:
            results = pool.map(fn, items, chunksize=chunksize)
            try:
                for index in range(len(items)):
                    outcome.results[index] = next(results)
                    done = index + 1
            except BrokenProcessPool:
                outcome.pool_broken = True
                outcome.diagnostics.append(Diagnostic.warning(
                    "SP601",
                    f"process pool broke after {done}/{len(items)} "
                    "item(s) (worker killed?); completing the sweep "
                    "serially in-process",
                ))
            except Exception:
                # A worker raised fn's own exception; the chunked map
                # iterator is dead, so the tail (including the failing
                # item) re-runs in-process under the on_error policy.
                pass
    except (OSError, PermissionError, ValueError):
        # No semaphores / fork denied: silent in-process degrade,
        # mirroring parallel_map.
        return 0
    return done


def _run_item(fn, item, index, label, outcome, on_error, retries,
              timeout_s) -> None:
    attempts = 1 + (retries if on_error == "retry" else 0)
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            outcome.results[index] = _call_with_watchdog(fn, item, timeout_s)
            return
        except Exception as exc:
            last = exc
            if attempt + 1 < attempts:
                outcome.retried.setdefault(index, []).append(
                    Diagnostic.warning(
                        "SP602",
                        f"attempt {attempt + 1}/{attempts} failed "
                        f"({exc}); retrying", label,
                    ))
    if on_error == "raise":
        raise last
    diag = Diagnostic.error(
        "SP603",
        f"failed after {attempts} attempt(s): {last}", label,
    )
    outcome.failures.append(PointFailure(
        index=index, item=item, error=repr(last),
        attempts=attempts, diagnostic=diag,
    ))
