"""Supervised fan-out: the resilient sibling of
:func:`repro.engine.parallel.parallel_map`, now scheduler-backed.

:func:`supervised_map` keeps a sweep alive through the failures that
used to kill it:

- **Worker death** (OOM killer, segfault): the substrate records an
  ``SP601`` diagnostic, the completed prefix is kept, and the
  remaining items degrade to supervised in-process execution — one
  dead worker no longer costs a 495-point sweep.
- **Item exceptions**: governed by ``on_error`` — ``"raise"``
  (propagate, the historical behavior), ``"skip"`` (record an
  ``SP603`` failure, leave ``None`` in that slot), or ``"retry"``
  (bounded re-attempts with ``SP602`` records, then skip-like
  failure). Simulators are pure functions, so a retry that succeeds
  is bit-identical to an undisturbed run.
- **Hangs**: an optional per-item watchdog (``timeout_s``) bounds the
  in-process attempts; expiry raises
  :class:`~repro.errors.WatchdogTimeout` carrying ``SP606``.

The policy machinery itself lives in
:func:`repro.scheduler.base.run_fanout`; this module only picks (or
accepts) an execution substrate. ``scheduler`` selects the backend by
registry name (``"inprocess"`` / ``"localpool"`` / ``"spool"``) or
accepts a live :class:`~repro.scheduler.base.Scheduler`; by default
the historical heuristic applies — a process pool when there is more
than one item and more than one worker, serial in-process otherwise.

The outcome is structured (:class:`FanoutOutcome`): per-slot results,
per-item failure records, retry diagnostics by index, and the global
degradation diagnostics — everything the caller needs to record
partial sweeps as first-class results.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar, Union

# Re-exported: these types now live with the policy layer in
# repro.scheduler.base, but their historical home is this module.
from repro.scheduler.base import (  # noqa: F401
    DEFAULT_RETRIES,
    POLICIES,
    FanoutOutcome,
    PointFailure,
    Scheduler,
    _call_with_watchdog,
    create_scheduler,
    run_fanout,
)

T = TypeVar("T")

__all__ = [
    "DEFAULT_RETRIES",
    "POLICIES",
    "FanoutOutcome",
    "PointFailure",
    "supervised_map",
]


def supervised_map(
    fn: Callable[[T], Any],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: Optional[int] = None,
    on_error: str = "raise",
    retries: int = DEFAULT_RETRIES,
    timeout_s: Optional[float] = None,
    labels: Optional[Sequence[str]] = None,
    scheduler: Optional[Union[str, Scheduler]] = None,
    metrics=None,
) -> FanoutOutcome:
    """Map ``fn`` over ``items`` with supervision; see module docs.

    Order-preserving and, for pure ``fn``, bit-identical to a serial
    run regardless of backend or which degradation paths fire.
    ``labels`` (same length as ``items``) name items in diagnostics;
    defaults to the item's ``repr``. The watchdog applies to
    in-process attempts (a pool cannot kill a hung worker without
    killing its siblings). A ``Scheduler`` instance passed as
    ``scheduler`` is left open for the caller; a backend *name* (or
    the default heuristic) creates a scheduler owned — and shut down —
    here. ``metrics`` receives the ``scheduler.*`` counters.
    """
    if on_error not in POLICIES:
        raise ValueError(
            f"on_error must be one of {POLICIES}, got {on_error!r}")
    items = list(items)
    if isinstance(scheduler, Scheduler):
        return run_fanout(scheduler, fn, items, on_error=on_error,
                          retries=retries, labels=labels, metrics=metrics)
    if scheduler is None:
        use_pool = len(items) > 1 and (max_workers is None or max_workers > 1)
        scheduler = "localpool" if use_pool else "inprocess"
    owned = create_scheduler(
        scheduler,
        max_workers=max_workers,
        initializer=initializer,
        initargs=initargs,
        chunksize=chunksize,
        timeout_s=timeout_s,
    )
    try:
        return run_fanout(owned, fn, items, on_error=on_error,
                          retries=retries, labels=labels, metrics=metrics)
    finally:
        owned.shutdown()
