"""Banked DRAM model (Section V-A: "models a GDDR6X memory controller").

The flat model in :mod:`repro.arch.memory` charges every byte the same
achievable bandwidth. This module refines that with the two effects a
real GDDR6X controller exposes:

- **row-buffer locality**: a burst landing in an open row streams at
  the bus rate; switching rows costs an activation (precharge +
  activate, ``tRP + tRCD``);
- **bank-level parallelism**: activations in different banks overlap
  with ongoing transfers, so activations only stall the bus when their
  required rate exceeds what the bank array can hide.

The per-request cost model collapses to

    cycles = max(bus_cycles, activations x t_activation / total_banks)

which yields ~100% of peak for long streams (column loads) and a steep
penalty for scattered short bursts (row-wise ping-pong reloads) —
exactly the asymmetry that makes the paper's wi case slow.

Enable with ``SparsepipeConfig(detailed_dram=True)``; the loaders
provide per-category average burst sizes from the matrix structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import MemoryConfig
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DRAMGeometry:
    """Channel/bank/row organization (GDDR6X-class defaults)."""

    channels: int = 8
    banks_per_channel: int = 16
    row_bytes: int = 2048
    #: Minimum transfer granule; shorter requests still move this much.
    access_granule_bytes: int = 32

    def __post_init__(self) -> None:
        for name in ("channels", "banks_per_channel", "row_bytes",
                     "access_granule_bytes"):
            check_positive(name, getattr(self, name))

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel


class BankedDRAM:
    """Cycle cost of a byte volume given its average burst length."""

    def __init__(
        self,
        memory: MemoryConfig,
        clock_ghz: float,
        geometry: DRAMGeometry = DRAMGeometry(),
        stream_efficiency: float = 0.93,
    ) -> None:
        """``stream_efficiency`` covers the overheads the bank model
        does not resolve (refresh, read/write turnaround) — the banked
        model's best case equals the flat model's streaming rate."""
        check_positive("clock_ghz", clock_ghz)
        check_positive("stream_efficiency", stream_efficiency)
        self._geometry = geometry
        self._bytes_per_cycle = memory.bytes_per_cycle(clock_ghz) * stream_efficiency
        # Activation cost (precharge + activate + CAS) approximated from
        # the Table II read/write latencies.
        self._activation_cycles = max(
            1.0, (memory.read_latency_ns + memory.write_latency_ns) * clock_ghz
        )

    @property
    def bytes_per_cycle(self) -> float:
        return self._bytes_per_cycle

    @property
    def activation_cycles(self) -> float:
        return self._activation_cycles

    def cycles(self, n_bytes: float, avg_burst_bytes: float) -> float:
        """Cycles to move ``n_bytes`` arriving as bursts of
        ``avg_burst_bytes`` to random row addresses."""
        if n_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        g = self._geometry
        bursts = n_bytes / max(1.0, float(avg_burst_bytes))
        # Sub-granule bursts still occupy a full access granule on the
        # bus (over-fetch waste).
        moved = bursts * max(float(g.access_granule_bytes), float(avg_burst_bytes))
        bus_cycles = moved / self._bytes_per_cycle
        # One activation per burst (random landing row) plus row
        # crossings inside long bursts.
        activations = bursts + n_bytes / g.row_bytes
        activation_cycles = activations * self._activation_cycles / g.total_banks
        return max(bus_cycles, activation_cycles)

    def cycles_batch(self, n_bytes: "np.ndarray", avg_burst_bytes: float) -> "np.ndarray":
        """Elementwise :meth:`cycles` over an array of byte volumes.

        Bit-identical to the scalar method per element (same operation
        order on IEEE doubles); zero-byte entries cost exactly ``0.0``,
        matching the scalar early return, so callers may fold whole
        category vectors without filtering.
        """
        n = np.asarray(n_bytes, dtype=np.float64)
        g = self._geometry
        bursts = n / max(1.0, float(avg_burst_bytes))
        moved = bursts * max(float(g.access_granule_bytes), float(avg_burst_bytes))
        bus_cycles = moved / self._bytes_per_cycle
        activations = bursts + n / g.row_bytes
        activation_cycles = activations * self._activation_cycles / g.total_banks
        return np.maximum(bus_cycles, activation_cycles)

    def efficiency(self, avg_burst_bytes: float) -> float:
        """Achieved fraction of peak bandwidth for a given burst size."""
        probe = 1_000_000.0
        return (probe / self._bytes_per_cycle) / self.cycles(probe, avg_burst_bytes)
