"""Design-space exploration utilities.

A :class:`ConfigSweep` evaluates a grid of Sparsepipe configurations
against one (workload, matrix) pair and reports the Pareto frontier of
cycles vs die area — the loop a silicon team runs when sizing the
buffer and the PE arrays (Fig 20b's cost axis attached to Fig 14's
performance axis).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.area import AreaModel
from repro.arch.config import PAPER_BUFFER_BYTES, SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult
from repro.engine.registry import run_engine
from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    config: SparsepipeConfig
    result: SimResult
    area_mm2: float

    @property
    def cycles(self) -> float:
        return self.result.cycles

    def dominates(self, other: "SweepPoint") -> bool:
        """Pareto dominance on (cycles, area), minimizing both."""
        no_worse = self.cycles <= other.cycles and self.area_mm2 <= other.area_mm2
        strictly = self.cycles < other.cycles or self.area_mm2 < other.area_mm2
        return no_worse and strictly


class ConfigSweep:
    """Grid sweep over SparsepipeConfig fields.

    Parameters are given as ``field_name -> candidate values``; every
    combination is simulated through the architecture registry
    (``arch`` names the engine — any registered config-taking model
    can be swept). Buffer area scales from the paper's 64 MB
    calibration point; PE-count changes scale the core area.
    """

    def __init__(
        self,
        base: SparsepipeConfig = SparsepipeConfig(),
        area_model: AreaModel = AreaModel(),
        arch: str = "sparsepipe",
    ) -> None:
        self._base = base
        self._area = area_model
        self._arch = arch

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        grid: Dict[str, Sequence[object]],
        paper_nnz: Optional[int] = None,
    ) -> List[SweepPoint]:
        if not grid:
            raise ConfigError("sweep grid must name at least one config field")
        for field_name in grid:
            if not hasattr(self._base, field_name):
                raise ConfigError(
                    f"SparsepipeConfig has no field {field_name!r}"
                )
        names = list(grid)
        points: List[SweepPoint] = []
        for combo in itertools.product(*(grid[n] for n in names)):
            config = replace(self._base, **dict(zip(names, combo)))
            result = run_engine(
                self._arch, config, profile, matrix, paper_nnz=paper_nnz
            )
            buffer_mb = (
                (
                    config.buffer_bytes
                    or result.extra.get("buffer_capacity_bytes", PAPER_BUFFER_BYTES)
                )
                / (1024.0 * 1024.0)
            )
            # Keep the paper's 64 MB calibration as the density anchor.
            area = self._area.sparsepipe_mm2(
                buffer_mb=buffer_mb * 64.0 / 64.0,
                n_pes=3 * config.pes_per_core,
            )
            points.append(SweepPoint(config, result, area))
        return points

    @staticmethod
    def pareto_frontier(points: Iterable[SweepPoint]) -> List[SweepPoint]:
        """Non-dominated points, sorted by cycles."""
        pts = list(points)
        frontier = [
            p for p in pts if not any(q.dominates(p) for q in pts)
        ]
        frontier.sort(key=lambda p: (p.cycles, p.area_mm2))
        return frontier
