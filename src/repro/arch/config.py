"""Architecture and memory configurations.

Table II of the paper fixes four memory configurations; the simulated
Sparsepipe instance has 1024 PEs per compute core and a 64 MB on-chip
buffer fed by 504 GB/s GDDR6X (Section V-A).

Scaling
-------
The paper's matrices reach 54 M non-zeros; this reproduction scales
them down (DESIGN.md, "Substitutions") and scales the on-chip buffer by
the *same per-matrix factor* via :func:`scaled_buffer_bytes`, so the
buffer-to-matrix ratio — the quantity every OOM/ping-pong effect
depends on — matches the paper exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError

#: The paper's buffer capacity (Section V-A).
PAPER_BUFFER_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class MemoryConfig:
    """One row of Table II."""

    name: str
    bandwidth_gbps: float      #: GB/s
    read_latency_ns: float
    write_latency_ns: float
    technology: str

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError(f"bandwidth must be positive, got {self.bandwidth_gbps}")

    def bytes_per_cycle(self, clock_ghz: float) -> float:
        """Peak bytes deliverable per core cycle."""
        return self.bandwidth_gbps / clock_ghz


CPU_DDR4 = MemoryConfig("cpu-ddr4", 40.0, 13.75, 12.5, "DDR4")
GPU_GDDR6X = MemoryConfig("gpu-gddr6x", 504.0, 12.0, 5.0, "GDDR6X")


def scaled_buffer_bytes(our_nnz: int, paper_nnz: int) -> int:
    """Buffer capacity preserving the paper's buffer-to-matrix ratio."""
    if our_nnz <= 0 or paper_nnz <= 0:
        raise ConfigError("nnz counts must be positive")
    return max(4096, int(PAPER_BUFFER_BYTES * (our_nnz / paper_nnz)))


@dataclass(frozen=True)
class SparsepipeConfig:
    """Top-level simulator configuration (Section V-A defaults).

    ``buffer_bytes=None`` auto-scales per input matrix with
    :func:`scaled_buffer_bytes` when the matrix carries a paper
    reference, else uses the raw paper capacity.
    """

    pes_per_core: int = 1024
    clock_ghz: float = 1.0
    memory: MemoryConfig = GPU_GDDR6X
    buffer_bytes: Optional[int] = None
    subtensor_cols: int = 128
    eager_is: bool = True          #: eager CSR loading of Fig 9
    repack_threshold: float = 0.5  #: consumed fraction triggering repack
    use_blocked_storage: bool = True
    block_size: int = 256
    #: Pipeline overhead charged per step (control and dispatch; the
    #: adder tree and DRAM latencies are pipelined away in steady state).
    step_overhead_cycles: int = 4
    #: Fraction of the buffer reserved for CSC staging, vector slices,
    #: and output partials; the rest holds the CSR reuse window.
    csr_window_fraction: float = 0.75
    #: Achievable fraction of peak DRAM bandwidth on streaming access
    #: (row activation, refresh, read/write turnaround). Used by the
    #: flat memory model; ignored when ``detailed_dram`` is set.
    dram_efficiency: float = 0.93
    #: Use the banked GDDR6X model (row-buffer locality + bank-level
    #: parallelism) instead of the flat efficiency factor.
    detailed_dram: bool = False
    #: Execution backend: ``"vectorized"`` precomputes per-step
    #: traffic/occupancy vectors with numpy (:mod:`repro.arch.fastpath`)
    #: and is bit-identical to ``"reference"``, the step-by-step Python
    #: loop. There is no fallback: the vectorized backend serves every
    #: configuration — observers attached, ``detailed_dram`` set — by
    #: synthesizing the PR-3 event stream post-hoc from the per-step
    #: vectors (:class:`~repro.engine.instrumentation.ReplayBatch`) and
    #: replaying it, byte-identically, through the instrumentation.
    #: ``"vectorized"`` is the documented default that backend-less
    #: configs inherit in :func:`repro.engine.registry.run_engine`.
    backend: str = "vectorized"

    def __post_init__(self) -> None:
        if self.backend not in ("reference", "vectorized"):
            raise ConfigError(
                f"backend must be 'reference' or 'vectorized', got {self.backend!r}"
            )
        if self.pes_per_core <= 0:
            raise ConfigError(f"pes_per_core must be positive, got {self.pes_per_core}")
        if self.clock_ghz <= 0:
            raise ConfigError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.subtensor_cols <= 0:
            raise ConfigError(f"subtensor_cols must be positive, got {self.subtensor_cols}")
        if not 0.0 < self.csr_window_fraction <= 1.0:
            raise ConfigError("csr_window_fraction must be in (0, 1]")
        if not 0.0 <= self.repack_threshold <= 1.0:
            raise ConfigError("repack_threshold must be in [0, 1]")
        if not 0.0 < self.dram_efficiency <= 1.0:
            raise ConfigError("dram_efficiency must be in (0, 1]")

    @property
    def bytes_per_cycle(self) -> float:
        return self.memory.bytes_per_cycle(self.clock_ghz)

    @property
    def read_latency_cycles(self) -> int:
        return max(1, round(self.memory.read_latency_ns * self.clock_ghz))

    def cache_key(self) -> str:
        """Deterministic content hash of every configuration field.

        Equal-valued configs — including the nested
        :class:`MemoryConfig` — produce equal keys across processes
        and interpreter runs (unlike ``hash()``/``id()``), so this is
        the key the experiment caches and the on-disk result cache
        share.
        """
        doc = json.dumps(asdict(self), sort_keys=True, default=float)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def with_memory(self, memory: MemoryConfig) -> "SparsepipeConfig":
        """The iso-CPU / iso-GPU variants of Table II."""
        return replace(self, memory=memory)

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / (self.clock_ghz * 1e9)
