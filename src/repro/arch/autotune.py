"""Sub-tensor size auto-tuning (Section IV-F).

The paper: Sparsepipe "can either operate on a fixed sub-tensor size
for an already optimized configuration or explore the optimal
sub-tensor size in the initial steps of the OEI dataflow". This module
implements that exploration: candidate widths are evaluated on a
bounded prefix of the run (the "initial steps") and the fastest is
adopted for the remainder.

Candidate probes are independent pure simulations, so they fan out
over the scheduler protocol (``scheduler="localpool"`` probes widths
in parallel; ``docs/scheduling.md``). Selection is deterministic
either way: lowest cycle count wins, first candidate wins ties.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult
from repro.engine.registry import run_engine
from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult

#: Default widths explored, bracketing the paper's configuration.
DEFAULT_CANDIDATES = (32, 64, 128, 256, 512)


def autotune_subtensor_cols(
    profile: WorkloadProfile,
    matrix: Union[COOMatrix, PreprocessResult],
    config: SparsepipeConfig = SparsepipeConfig(),
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    paper_nnz: Optional[int] = None,
    probe_iterations: int = 2,
    arch: str = "sparsepipe",
    scheduler: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> Tuple[int, SimResult]:
    """Pick the fastest sub-tensor width by probing one OEI pair.

    Returns ``(best_width, full_run_result_at_best_width)``. The probe
    charges only ``probe_iterations`` iterations per candidate, so the
    exploration cost stays a small fraction of the full run — exactly
    the paper's "initial steps" budget. ``arch`` dispatches through
    the architecture registry, so any registered config-taking engine
    can be tuned the same way. ``scheduler`` (a backend name) fans the
    candidate probes out over that substrate; ``None`` probes serially
    in-process, the historical behavior.
    """
    if not candidates:
        raise ConfigError("autotuning needs at least one candidate width")
    if probe_iterations < 1:
        raise ConfigError(f"probe_iterations must be >= 1, got {probe_iterations}")
    widths = []
    for width in candidates:
        if width <= 0:
            raise ConfigError(f"sub-tensor width must be positive, got {width}")
        widths.append(int(width))
    probe_profile = replace(
        profile, n_iterations=min(probe_iterations, profile.n_iterations)
    )
    cycles_by_width = _probe_cycles(
        widths, arch, config, probe_profile, matrix, paper_nnz, scheduler,
        max_workers,
    )
    best_width = None
    best_cycles = None
    for width, cycles in zip(widths, cycles_by_width):
        if best_cycles is None or cycles < best_cycles:
            best_cycles = cycles
            best_width = width
    final_config = replace(config, subtensor_cols=best_width)
    result = run_engine(arch, final_config, profile, matrix, paper_nnz=paper_nnz)
    return best_width, result


def _probe_cycles(
    widths: Sequence[int], arch, config, probe_profile, matrix, paper_nnz,
    scheduler: Optional[str], max_workers: Optional[int],
) -> List[float]:
    if scheduler is None:
        _init_probe_worker(arch, config, probe_profile, matrix, paper_nnz)
        return [_probe_width(width) for width in widths]
    from repro.resilience.supervisor import supervised_map

    outcome = supervised_map(
        _probe_width, widths,
        max_workers=max_workers,
        initializer=_init_probe_worker,
        initargs=(arch, config, probe_profile, matrix, paper_nnz),
        labels=[f"width={w}" for w in widths],
        scheduler=scheduler,
    )
    return outcome.results


# ----------------------------------------------------------------------
# Probe worker side (module-level: must be picklable for distributed
# scheduler backends)
# ----------------------------------------------------------------------
_PROBE_STATE: Optional[Tuple] = None


def _init_probe_worker(arch, config, probe_profile, matrix, paper_nnz) -> None:
    """Ship the shared probe inputs once per worker process."""
    global _PROBE_STATE
    _PROBE_STATE = (arch, config, probe_profile, matrix, paper_nnz)


def _probe_width(width: int) -> float:
    """Cycle count of one candidate width on the probe prefix."""
    arch, config, probe_profile, matrix, paper_nnz = _PROBE_STATE
    probe_config = replace(config, subtensor_cols=int(width))
    probe = run_engine(
        arch, probe_config, probe_profile, matrix, paper_nnz=paper_nnz
    )
    return probe.cycles
