"""Sub-tensor size auto-tuning (Section IV-F).

The paper: Sparsepipe "can either operate on a fixed sub-tensor size
for an already optimized configuration or explore the optimal
sub-tensor size in the initial steps of the OEI dataflow". This module
implements that exploration: candidate widths are evaluated on a
bounded prefix of the run (the "initial steps") and the fastest is
adopted for the remainder.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple, Union

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult
from repro.engine.registry import run_engine
from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult

#: Default widths explored, bracketing the paper's configuration.
DEFAULT_CANDIDATES = (32, 64, 128, 256, 512)


def autotune_subtensor_cols(
    profile: WorkloadProfile,
    matrix: Union[COOMatrix, PreprocessResult],
    config: SparsepipeConfig = SparsepipeConfig(),
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    paper_nnz: Optional[int] = None,
    probe_iterations: int = 2,
    arch: str = "sparsepipe",
) -> Tuple[int, SimResult]:
    """Pick the fastest sub-tensor width by probing one OEI pair.

    Returns ``(best_width, full_run_result_at_best_width)``. The probe
    charges only ``probe_iterations`` iterations per candidate, so the
    exploration cost stays a small fraction of the full run — exactly
    the paper's "initial steps" budget. ``arch`` dispatches through
    the architecture registry, so any registered config-taking engine
    can be tuned the same way.
    """
    if not candidates:
        raise ConfigError("autotuning needs at least one candidate width")
    if probe_iterations < 1:
        raise ConfigError(f"probe_iterations must be >= 1, got {probe_iterations}")
    probe_profile = replace(
        profile, n_iterations=min(probe_iterations, profile.n_iterations)
    )
    best_width = None
    best_cycles = None
    for width in candidates:
        if width <= 0:
            raise ConfigError(f"sub-tensor width must be positive, got {width}")
        probe_config = replace(config, subtensor_cols=int(width))
        probe = run_engine(
            arch, probe_config, probe_profile, matrix, paper_nnz=paper_nnz
        )
        if best_cycles is None or probe.cycles < best_cycles:
            best_cycles = probe.cycles
            best_width = int(width)
    final_config = replace(config, subtensor_cols=best_width)
    result = run_engine(arch, final_config, profile, matrix, paper_nnz=paper_nnz)
    return best_width, result
