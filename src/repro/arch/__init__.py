"""The Sparsepipe architecture simulator (Section IV / V-A).

An event-driven simulator at OEI pipeline-step granularity: each step
moves one sub-tensor through one stage of the OS / E-Wise / IS pipeline
(Fig 13), and every component charges cycles and memory traffic from the
real non-zero structure of the (preprocessed) input matrix.

- :mod:`repro.arch.config` — architecture + memory configurations
  (Table II presets),
- :mod:`repro.arch.memory` — DRAM controller model with per-category
  traffic accounting,
- :mod:`repro.arch.buffer` — the dual-sparse on-chip buffer: residency
  tracking, eviction of far-reload rows on OOM, repacking stats,
- :mod:`repro.arch.cores` — OS / E-Wise / IS core timing,
- :mod:`repro.arch.loaders` — per-step load plans derived from matrix
  structure, and the eager CSR prefetcher (Fig 9),
- :mod:`repro.arch.simulator` — the pipeline control loop,
- :mod:`repro.arch.energy` / :mod:`repro.arch.area` — energy and area
  models (Figs 20b and 23).
"""

from repro.arch.config import (
    MemoryConfig,
    SparsepipeConfig,
    CPU_DDR4,
    GPU_GDDR6X,
    scaled_buffer_bytes,
)
from repro.arch.stats import BandwidthSample, SimResult, TrafficBreakdown
from repro.arch.simulator import SparsepipeSimulator
from repro.arch.energy import EnergyModel, EnergyBreakdown
from repro.arch.area import AreaModel

__all__ = [
    "MemoryConfig",
    "SparsepipeConfig",
    "CPU_DDR4",
    "GPU_GDDR6X",
    "scaled_buffer_bytes",
    "SparsepipeSimulator",
    "SimResult",
    "TrafficBreakdown",
    "BandwidthSample",
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
]
