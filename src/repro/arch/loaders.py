"""Per-pair load plans derived from real matrix structure.

The three data loaders of Fig 12 (CSC loader, e-wise vector loader,
CSR loader) act on *sub-tensors*; this module precomputes, from the
actual non-zero coordinates of the preprocessed matrix, everything the
per-step control loop needs:

- demand bytes per column sub-tensor (CSC loader),
- OS work per sub-tensor,
- IS scatter work per step (an element is scattered at
  ``max(col_subtensor, row_subtensor + IS_LAG)``),
- window-entry histograms per load step, keyed by scatter step (the
  buffer's admit schedule).

The eager CSR prefetcher's ``P(r)`` balance heuristic operates on the
aggregate: leftover bandwidth pulls the earliest outstanding column
bytes forward, which is exactly the effect of balanced row prefetching
on the traffic timeline.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.oei.schedule import IS_LAG
from repro.preprocess.pipeline import PreprocessResult


@dataclass(frozen=True)
class LoadPlan:
    """Structure-derived schedule for one OEI pair."""

    n: int
    subtensor_cols: int
    n_subtensors: int
    n_steps: int
    total_nnz: int
    element_bytes: float           #: DRAM bytes per matrix element
    csc_bytes: np.ndarray          #: demand bytes per column sub-tensor
    os_nnz: np.ndarray             #: OS products per sub-tensor
    scatter_nnz: np.ndarray        #: IS products per step
    enter_counts: List[Dict[int, int]]  #: per load step: {scatter step: n}
    subtensor_width: np.ndarray    #: columns per sub-tensor

    @property
    def matrix_stream_bytes(self) -> float:
        """One full stream of the matrix in one orientation."""
        return float(self.total_nnz * self.element_bytes)

    @classmethod
    def from_matrix(
        cls,
        source: Union[COOMatrix, PreprocessResult],
        subtensor_cols: int,
        element_bytes: float = None,
    ) -> "LoadPlan":
        """Build the plan from a (preprocessed) matrix.

        ``element_bytes`` defaults to the per-element cost of the
        source's storage: blocked dual storage when the preprocessing
        built one (payload + half the block index per orientation),
        naive compressed otherwise.

        Plans are pure functions of the source's structure, so they are
        cached per live ``(source, subtensor_cols, element_bytes)`` —
        sweeps that revisit a matrix (the bench grid, autotuning, every
        backend comparison) build each plan once. Sources are treated as
        immutable, which every producer in this codebase honors; the
        cache entry dies with its source object.
        """
        key = (id(source), int(subtensor_cols), element_bytes)
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
        plan = cls._build(source, subtensor_cols, element_bytes)
        _PLAN_CACHE[key] = plan
        weakref.finalize(source, _PLAN_CACHE.pop, key, None)
        return plan

    @classmethod
    def _build(
        cls,
        source: Union[COOMatrix, PreprocessResult],
        subtensor_cols: int,
        element_bytes: float = None,
    ) -> "LoadPlan":
        if subtensor_cols <= 0:
            raise ConfigError(f"subtensor_cols must be positive, got {subtensor_cols}")
        if isinstance(source, PreprocessResult):
            coo = source.matrix
            if element_bytes is None:
                if source.blocked is not None:
                    blocked = source.blocked
                    element_bytes = (
                        blocked.payload_bytes() + blocked.index_bytes() / 2
                    ) / max(1, blocked.nnz)
                else:
                    element_bytes = source.dual.csr.storage_bytes() / max(
                        1, source.dual.nnz
                    )
        else:
            coo = source.deduplicate()
            if element_bytes is None:
                element_bytes = 12.0  # 4-byte coordinate + 8-byte value
        if coo.nrows != coo.ncols:
            raise ConfigError(f"OEI pairs need a square matrix, got {coo.shape}")

        n = coo.nrows
        t = subtensor_cols
        n_sub = max(1, -(-n // t))
        n_steps = n_sub + IS_LAG

        load_step = coo.cols // t
        scatter_step = np.maximum(load_step, coo.rows // t + IS_LAG)

        os_nnz = np.bincount(load_step, minlength=n_sub).astype(np.float64)
        scatter_nnz = np.bincount(scatter_step, minlength=n_steps).astype(np.float64)
        csc_bytes = os_nnz * element_bytes

        enter_counts: List[Dict[int, int]] = [dict() for _ in range(n_sub)]
        waits = scatter_step > load_step  # elements that occupy the window
        if waits.any():
            pairs = load_step[waits] * (n_steps + 1) + scatter_step[waits]
            uniq, counts = np.unique(pairs, return_counts=True)
            for key, count in zip(uniq, counts):
                l, r = divmod(int(key), n_steps + 1)
                enter_counts[l][r] = int(count)

        widths = np.full(n_sub, t, dtype=np.int64)
        widths[-1] = n - t * (n_sub - 1) if n % t else t
        if n == 0:
            widths = np.zeros(n_sub, dtype=np.int64)

        return cls(
            n=n,
            subtensor_cols=t,
            n_subtensors=n_sub,
            n_steps=n_steps,
            total_nnz=coo.nnz,
            element_bytes=float(element_bytes),
            csc_bytes=csc_bytes,
            os_nnz=os_nnz,
            scatter_nnz=scatter_nnz,
            enter_counts=enter_counts,
            subtensor_width=widths,
        )


#: Cross-run plan cache keyed on source identity (see
#: :meth:`LoadPlan.from_matrix`); entries are evicted by a weakref
#: finalizer when their source is collected.
_PLAN_CACHE: Dict[Tuple[int, int, Optional[float]], LoadPlan] = {}


class EagerPrefetcher:
    """The CSR loader's leftover-bandwidth prefetch (Fig 9 / Section
    IV-D2).

    Pulls outstanding column bytes of future sub-tensors forward when a
    step leaves bandwidth unused, bounded by the buffer's slack. The
    prefetched bytes stay resident (charged against the buffer) until
    the OS stage reaches their sub-tensor.
    """

    def __init__(self, plan: LoadPlan, enabled: bool, horizon: int = None) -> None:
        self._remaining = plan.csc_bytes.copy()
        self._prefetched = np.zeros(plan.n_subtensors)
        self._enabled = enabled
        self._horizon = plan.n_subtensors if horizon is None else horizon

    def demand(self, subtensor: int) -> float:
        """Demand bytes still outstanding for one sub-tensor, consumed
        by the CSC loader at its load step."""
        if not 0 <= subtensor < self._remaining.size:
            return 0.0
        out = float(self._remaining[subtensor])
        self._remaining[subtensor] = 0.0
        return out

    def release_at(self, subtensor: int) -> float:
        """Prefetched bytes whose sub-tensor the OS stage reached —
        they leave the prefetch residency pool now."""
        if not 0 <= subtensor < self._prefetched.size:
            return 0.0
        out = float(self._prefetched[subtensor])
        self._prefetched[subtensor] = 0.0
        return out

    def prefetch(self, current: int, budget_bytes: float, slack_bytes: float) -> float:
        """Pull future column bytes forward; returns bytes moved."""
        if not self._enabled or budget_bytes <= 0 or slack_bytes <= 0:
            return 0.0
        budget = min(budget_bytes, slack_bytes)
        moved = 0.0
        stop = min(self._remaining.size, current + 1 + self._horizon)
        for t in range(max(0, current + 1), stop):
            if budget <= 0:
                break
            take = min(budget, self._remaining[t])
            if take > 0:
                self._remaining[t] -= take
                self._prefetched[t] += take
                moved += take
                budget -= take
        return moved
