"""On-chip buffer model: the CSR reuse window (Section IV-B / IV-D3).

The buffer tracks, per pipeline step, the matrix elements that have
been loaded (column-wise by the OS stage or eagerly row-wise) but not
yet consumed by the IS stage — the cross-iteration reuse window of
Table I. Elements are grouped by the step at which the IS stage will
scatter them; on overflow the controller evicts the rows with the
highest ``row_idx`` first (the paper's OOM policy), charging a reload
at their scatter step — the "memory ping-pong" the Fig 15(d) case
suffers from.

Repacking (consumed-element compaction) is counted as events: this
model's accounting is exact, so repacking affects statistics rather
than capacity.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import BufferError_
from repro.util.validation import check_positive


class OnChipBuffer:
    """CSR-window residency tracker for one simulation."""

    def __init__(
        self,
        capacity_bytes: float,
        csr_window_fraction: float,
        element_bytes: float,
        repack_threshold: float,
    ) -> None:
        check_positive("capacity_bytes", capacity_bytes)
        check_positive("element_bytes", element_bytes)
        self.capacity_bytes = float(capacity_bytes)
        self.csr_capacity_bytes = capacity_bytes * csr_window_fraction
        self.element_bytes = float(element_bytes)
        self._repack_threshold = repack_threshold

        #: scatter step -> resident element count
        self._live: Dict[int, int] = {}
        self._live_elements = 0
        #: step -> bytes that must be re-fetched (evicted under OOM)
        self._reload_due: Dict[int, float] = {}
        #: bytes currently held by the eager prefetcher (column data
        #: loaded ahead of the OS stage)
        self.prefetch_resident_bytes = 0.0

        self.peak_bytes = 0.0
        self.evicted_bytes = 0.0
        self.repack_events = 0
        self._consumed_since_repack = 0
        self._resident_heap_hint = 0  # highest scatter step seen

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> float:
        return self._live_elements * self.element_bytes

    @property
    def occupied_bytes(self) -> float:
        return self.live_bytes + self.prefetch_resident_bytes

    def slack_bytes(self) -> float:
        """Space the eager prefetcher may use this step."""
        return max(0.0, self.csr_capacity_bytes - self.occupied_bytes)

    # ------------------------------------------------------------------
    # Window transitions
    # ------------------------------------------------------------------
    def admit(self, counts: Mapping[int, int]) -> None:
        """Elements entering the CSR window, keyed by scatter step."""
        for r, c in counts.items():
            if c < 0:
                raise BufferError_(f"negative admit count {c} for step {r}")
            if c:
                self._live[r] = self._live.get(r, 0) + int(c)
                self._live_elements += int(c)
                if r > self._resident_heap_hint:
                    self._resident_heap_hint = r
        self.peak_bytes = max(self.peak_bytes, self.occupied_bytes)

    def release(self, step: int) -> int:
        """IS consumed everything scheduled for ``step``; returns the
        element count released."""
        consumed = self._live.pop(step, 0)
        self._live_elements -= consumed
        self._consumed_since_repack += consumed
        if (
            self._live_elements > 0
            and self._consumed_since_repack
            > self._repack_threshold * (self._live_elements + self._consumed_since_repack)
        ):
            self.repack_events += 1
            self._consumed_since_repack = 0
        return consumed

    def enforce_capacity(self, current_step: int) -> float:
        """Evict furthest-reload elements until the window fits.

        Returns the bytes evicted now; the same bytes are charged as
        ``csr_reload`` demand at their scatter steps.
        """
        evicted_now = 0.0
        while self.live_bytes > self.csr_capacity_bytes and self._live:
            victim_step = max(self._live)
            if victim_step <= current_step:
                # Everything resident is needed immediately; nothing
                # sane to evict — stop rather than thrash.
                break
            over_elements = int(
                -(-(self.live_bytes - self.csr_capacity_bytes) // self.element_bytes)
            )
            take = min(over_elements, self._live[victim_step])
            self._live[victim_step] -= take
            if self._live[victim_step] == 0:
                del self._live[victim_step]
            self._live_elements -= take
            n_bytes = take * self.element_bytes
            self._reload_due[victim_step] = (
                self._reload_due.get(victim_step, 0.0) + n_bytes
            )
            self.evicted_bytes += n_bytes
            evicted_now += n_bytes
        return evicted_now

    def pop_reload(self, step: int) -> float:
        """Reload bytes that must be fetched for the IS stage at ``step``."""
        return self._reload_due.pop(step, 0.0)

    def pending_reload_bytes(self) -> float:
        """Total scheduled ping-pong traffic not yet re-fetched."""
        return sum(self._reload_due.values())

    def drain_check(self) -> None:
        """At end of a pair the window must be empty — anything left is
        a scheduling bug."""
        if self._live_elements != 0:
            raise BufferError_(
                f"{self._live_elements} elements left in the reuse window "
                "after pair drain"
            )
