"""Vectorized execution backend for the Sparsepipe simulator.

:func:`run_fastpath` produces the same :class:`~repro.arch.stats.SimResult`
as the reference step loop in :mod:`repro.arch.simulator` — **bit-identical**,
not approximately equal — while replacing the ``O(n_steps)`` Python iteration
per pair with numpy precomputation plus per-pair memoization. The
differential suite (``tests/test_backend_differential.py``) and the golden
fixtures (``tests/test_goldens.py``) lock the equality down.

Exactness strategy
------------------
Floating-point addition is not associative, so "the same numbers" is not
enough: every accumulation that reaches a ``SimResult`` field must fold in
the reference's exact operand order and association. Concretely:

- Per-step scalars (``vec_read``, ``demand``, core cycle costs, ...) are
  rebuilt elementwise with the reference's operator association; numpy's
  elementwise ops match Python scalar ops bit for bit.
- Run-wide accumulators (cycles, per-category traffic, compute ops, IS ops,
  evicted bytes) become ``np.cumsum(...)[-1]`` over the per-increment
  sequence in run order — ``cumsum`` is a strict left fold, unlike
  ``np.sum``/``ufunc.reduce`` which pairwise-sum and drift in the low bits.
- ``peak_bytes`` is a running ``max`` — truly associative, so ``np.max``
  over the admit-time candidates is exact.
- The banked DRAM model (``detailed_dram``) is a per-category elementwise
  formula (:meth:`~repro.arch.dram.BankedDRAM.cycles_batch`) left-folded in
  the reference demand-dict order; zero-byte categories cost exactly
  ``0.0``, so folding them in is a bitwise no-op.

Decomposition
-------------
The on-chip buffer's admit/release/evict machine depends only on the load
plan (``enter_counts``) and the capacity: eviction thresholds compare
``live_bytes``, never the prefetch residency. It is therefore *static per
run* and replayed once (:class:`_BufferStatics`, cached across runs per
``(plan, capacity, window, threshold)``). What remains sequential is
the eager prefetcher: its budget is the leftover bandwidth of a step, which
depends on that step's demand, which depends on earlier prefetches. When the
static no-prefetch trajectory proves the prefetcher can never fire, a pair is
fully closed-form; otherwise a lean scalar scan over the first
``n_subtensors`` steps reproduces the recurrence (the tail steps issue no
demand and release nothing, so they are static again). Either way the result
is memoized per ``(act1, act2, prefetch-residency carry)`` — workloads with
uniform per-iteration activity simulate one pair and replay it.

Repack events never feed back into timing (the buffer model's accounting is
exact), so the repack counter is replayed separately from the static release
sequence, memoized per inter-pair carry.

Batched event synthesis
-----------------------
Observed runs do not fall back to the reference loop. When an
:class:`~repro.engine.instrumentation.Instrumentation` carries observers,
the fastpath *synthesizes* the full PR-3 event contract post-hoc from its
precomputed vectors and replays it through the instrumentation in one pass:
per step, ``prefetch`` → truthy ``transfer``s in account order → ``evict`` →
``repack`` → the closing ``step`` event, then one ``FILL_STEP`` charge per
pair/stream — exactly the order the reference loop fires them, with the
same values, so traces, metrics, and Fig 15 bandwidth samples are
byte-identical while the simulation itself stays vectorized. Each kernel
renders its event script once (:meth:`_PairKernel.replay_script`) and every
pair that reuses the kernel replays the cached script.
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.config import SparsepipeConfig
from repro.arch.dram import BankedDRAM
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult, TrafficBreakdown
from repro.engine.instrumentation import (
    FILL_STEP,
    Instrumentation,
    ReplayBatch,
    StepTraceObserver,
)
from repro.errors import BufferError_

#: DRAM bytes per vector element (64-bit values, Section VI-C). The
#: reference simulator imports this constant from here — one definition.
VECTOR_ELEMENT_BYTES = 8.0

#: Traffic categories in the order the reference pair loop transfers them.
_PAIR_CATEGORIES = ("csc", "csr_reload", "csr_eager", "vector", "writeback")

#: Default burst-size hint when a category has none (matches
#: ``MemoryController.demand_cycles``).
_DEFAULT_BURST_HINT = 4096.0


def burst_hints(plan: LoadPlan, profile: WorkloadProfile) -> Dict[str, float]:
    """Average DRAM burst sizes per traffic category, from matrix
    structure (used only by the banked DRAM model; one definition shared
    with the reference loop's :class:`~repro.arch.memory.MemoryController`).

    Column sub-tensors stream contiguously; eager/reload row traffic
    arrives as per-row fragments; vector slices are contiguous runs of
    one sub-tensor width.
    """
    row_avg = plan.matrix_stream_bytes / max(1, plan.n)
    vector_run = (
        plan.subtensor_cols * VECTOR_ELEMENT_BYTES * profile.feature_dim
    )
    return {
        "csc": plan.matrix_stream_bytes / max(1, plan.n_subtensors),
        "csr_eager": row_avg,
        "csr_reload": row_avg,
        "vector": vector_run,
        "writeback": vector_run,
    }


def _fold(chunks: List[np.ndarray]) -> float:
    """Strict left-fold sum of concatenated increment arrays (the exact
    float the reference's ``+=`` accumulator chain produces)."""
    if not chunks:
        return 0.0
    seq = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    if seq.size == 0:
        return 0.0
    return float(np.cumsum(seq)[-1])


class _BufferStatics:
    """Activity-independent replay of the on-chip buffer over one pair.

    Mirrors :class:`~repro.arch.buffer.OnChipBuffer` admit/release/evict
    exactly, recording the per-step quantities the dynamic part consumes.
    """

    def __init__(self, plan: LoadPlan, capacity: float, config: SparsepipeConfig):
        elem = plan.element_bytes
        # Same expression as OnChipBuffer.__init__ (int capacity included).
        csr_cap = capacity * config.csr_window_fraction
        n_steps = plan.n_steps

        live: Dict[int, int] = {}
        live_elements = 0
        reload_due: Dict[int, float] = {}

        reload_bytes = np.zeros(n_steps)
        live_before_admit = np.zeros(n_steps, dtype=np.int64)
        live_after_admit = np.zeros(n_steps, dtype=np.int64)
        release_seq: List[Tuple[int, int]] = []
        evict_events: List[float] = []
        evict_step_bytes = np.zeros(n_steps)

        entries = list(plan.enter_counts)
        entries += [None] * (n_steps - len(entries))
        for s, counts in enumerate(entries):
            reload_bytes[s] = reload_due.pop(s, 0.0)
            live_before_admit[s] = live_elements
            if counts is not None:
                for r, c in counts.items():
                    if c:
                        live[r] = live.get(r, 0) + int(c)
                        live_elements += int(c)
            live_after_admit[s] = live_elements
            consumed = live.pop(s, 0)
            live_elements -= consumed
            release_seq.append((consumed, live_elements))
            step_evicted = 0.0  # enforce_capacity's per-call accumulator
            while live_elements * elem > csr_cap and live:
                victim = max(live)
                if victim <= s:
                    break
                over = int(-(-(live_elements * elem - csr_cap) // elem))
                take = min(over, live[victim])
                live[victim] -= take
                if live[victim] == 0:
                    del live[victim]
                live_elements -= take
                n_bytes = take * elem
                reload_due[victim] = reload_due.get(victim, 0.0) + n_bytes
                evict_events.append(n_bytes)
                step_evicted += n_bytes
            evict_step_bytes[s] = step_evicted

        self.csr_capacity_bytes = csr_cap
        self.element_bytes = elem
        self.reload_bytes = reload_bytes
        self.live_before_admit = live_before_admit
        self.live_after_admit = live_after_admit
        self.release_seq = release_seq
        self.evict_events = np.asarray(evict_events, dtype=np.float64)
        self.evict_step_bytes = evict_step_bytes
        self.undrained_elements = live_elements
        self._repack_threshold = config.repack_threshold
        self._repack_memo: Dict[int, Tuple[int, int, Tuple[bool, ...]]] = {}

    def drain_check(self) -> None:
        if self.undrained_elements != 0:
            raise BufferError_(
                f"{self.undrained_elements} elements left in the reuse window "
                "after pair drain"
            )

    def repack_replay(self, carry: int) -> Tuple[int, int, Tuple[bool, ...]]:
        """Repack events over one pair given the inter-pair consumed-element
        carry; returns ``(events, carry_out, fired_per_step)``. Integer
        recurrence, memoized."""
        memo = self._repack_memo.get(carry)
        if memo is not None:
            return memo
        carry_in = carry
        thr = self._repack_threshold
        events = 0
        fired: List[bool] = []
        for consumed, live in self.release_seq:
            carry += consumed
            if live > 0 and carry > thr * (live + carry):
                events += 1
                carry = 0
                fired.append(True)
            else:
                fired.append(False)
        memo = (events, carry, tuple(fired))
        self._repack_memo[carry_in] = memo
        return memo


#: Cross-run cache of buffer statics. The replay depends only on the load
#: plan and the two capacity knobs, and load plans are themselves cached
#: per matrix (:meth:`LoadPlan.from_matrix`), so sweeps that revisit a
#: matrix — the backend bench grid, autotuning — pay the buffer replay
#: once. Entries die with their plan (weakref finalizer on the plan).
_STATICS_CACHE: Dict[Tuple[int, float, float, float], _BufferStatics] = {}


def _statics_for(plan: LoadPlan, capacity: float,
                 config: SparsepipeConfig) -> _BufferStatics:
    key = (
        id(plan), float(capacity),
        float(config.csr_window_fraction), float(config.repack_threshold),
    )
    statics = _STATICS_CACHE.get(key)
    if statics is None:
        statics = _BufferStatics(plan, capacity, config)
        _STATICS_CACHE[key] = statics
        weakref.finalize(plan, _STATICS_CACHE.pop, key, None)
    return statics


class _PairKernel:
    """Per-(act1, act2, residency-carry) simulation of one OEI pair."""

    __slots__ = (
        "step_cycles", "moved", "compute_ops", "is_ops", "peak_candidates",
        "resident_out", "stage_cycles", "script",
    )

    def __init__(self, step_cycles, moved, compute_ops, is_ops,
                 peak_candidates, resident_out, stage_cycles):
        self.step_cycles = step_cycles          #: (n_steps,)
        self.moved = moved                      #: category -> (n_steps,)
        self.compute_ops = compute_ops          #: (3 * n_steps,) interleaved
        self.is_ops = is_ops                    #: (n_steps,)
        self.peak_candidates = peak_candidates  #: (n_subtensors,) occupied at admit
        self.resident_out = resident_out        #: prefetch residency carry-out
        self.stage_cycles = stage_cycles        #: (os, ew, is, extra, mem)
        self.script = None                      #: lazy synthesized event script

    def replay_script(self, evict_step_bytes: np.ndarray) -> list:
        """Per-step event tuples in the reference loop's exact firing
        order — built once per kernel, replayed by every pair that
        memoized onto it."""
        if self.script is None:
            os_c, ew_c, is_c, extra_c, mem_c = self.stage_cycles
            rows = zip(
                self.step_cycles.tolist(),
                self.moved["csc"].tolist(),
                self.moved["csr_reload"].tolist(),
                self.moved["csr_eager"].tolist(),
                self.moved["vector"].tolist(),
                self.moved["writeback"].tolist(),
                os_c.tolist(), ew_c.tolist(), is_c.tolist(), mem_c.tolist(),
                evict_step_bytes.tolist(),
            )
            script = []
            for s, (cyc, csc, rl, eg, vec, wb,
                    os_v, ew_v, is_v, mem_v, ev) in enumerate(rows):
                moved = {
                    "csc": csc, "csr_reload": rl, "csr_eager": eg,
                    "vector": vec, "writeback": wb,
                }
                transfers = tuple(
                    (cat, val) for cat, val in moved.items() if val
                )
                stages = {
                    "os": os_v, "ewise": ew_v, "is": is_v,
                    "extra": extra_c, "memory": mem_v,
                }
                script.append((s, cyc, eg, transfers, ev, moved, stages))
            self.script = script
        return self.script


class _StreamKernel:
    """Per-activity simulation of one producer-consumer-fused pass."""

    __slots__ = ("step_cycles", "moved", "compute_ops", "stage_cycles", "script")

    def __init__(self, step_cycles, moved, compute_ops, stage_cycles):
        self.step_cycles = step_cycles
        self.moved = moved
        self.compute_ops = compute_ops
        self.stage_cycles = stage_cycles        #: (os, ew, extra, mem)
        self.script = None

    def replay_script(self) -> list:
        if self.script is None:
            os_c, ew_c, extra_c, mem_c = self.stage_cycles
            rows = zip(
                self.step_cycles.tolist(),
                self.moved["csc"].tolist(),
                self.moved["vector"].tolist(),
                self.moved["writeback"].tolist(),
                os_c.tolist(), ew_c.tolist(), mem_c.tolist(),
            )
            script = []
            for t, (cyc, csc, vec, wb, os_v, ew_v, mem_v) in enumerate(rows):
                moved = {"csc": csc, "vector": vec, "writeback": wb}
                transfers = tuple(
                    (cat, val) for cat, val in moved.items() if val
                )
                stages = {
                    "os": os_v, "ewise": ew_v, "extra": extra_c,
                    "memory": mem_v,
                }
                script.append((t, cyc, transfers, moved, stages))
            self.script = script
        return self.script


class _FastRun:
    """One vectorized run: statics built once, pair/stream kernels memoized."""

    def __init__(self, config: SparsepipeConfig, plan: LoadPlan,
                 profile: WorkloadProfile, capacity: float):
        self.config = config
        self.plan = plan
        self.profile = profile
        self.capacity = capacity

        self._pes = config.pes_per_core
        self._achievable = config.bytes_per_cycle * config.dram_efficiency
        self._overhead = float(config.step_overhead_cycles)
        # Same expression as ComputePipeline.tree_depth / the reference fill.
        tree_depth = max(1, int(math.ceil(math.log2(config.pes_per_core))))
        self._fill = float(config.read_latency_cycles + tree_depth)

        # Banked DRAM (detailed_dram): same model object and per-category
        # burst hints the reference MemoryController uses.
        if config.detailed_dram:
            self._banked: Optional[BankedDRAM] = BankedDRAM(
                config.memory, config.clock_ghz,
                stream_efficiency=config.dram_efficiency,
            )
            self._hints = burst_hints(plan, profile)
        else:
            self._banked = None
            self._hints = {}

        n_steps, n_sub = plan.n_steps, plan.n_subtensors
        # width(s) and its lagged views, zero outside [0, n_subtensors).
        w = np.zeros(n_steps)
        w[:n_sub] = plan.subtensor_width.astype(np.float64)
        self._w = w
        self._w1 = np.concatenate(([0.0], w[:-1]))          # width(s - 1)
        self._w2 = np.concatenate(([0.0, 0.0], w[:-2]))     # width(s - 2)
        self._os_nnz = np.zeros(n_steps)
        self._os_nnz[:n_sub] = plan.os_nnz
        self._csc0 = np.zeros(n_steps)
        self._csc0[:n_sub] = plan.csc_bytes                 # untouched demand
        # Any column bytes left beyond sub-tensor s the prefetcher could pull?
        future = np.zeros(n_steps, dtype=bool)
        if n_sub > 1:
            remaining_after = np.cumsum(plan.csc_bytes[::-1])[::-1]
            future[: n_sub - 1] = remaining_after[1:] > 0
        self._future_csc = future

        self._buffer: Optional[_BufferStatics] = None
        self._pair_memo: Dict[Tuple[float, float, float], _PairKernel] = {}
        self._stream_memo: Dict[float, _StreamKernel] = {}
        # Synthesized event batches, memoized per (kernel, repack firing
        # pattern). The kernels above keep the ids stable for the run's
        # lifetime, and the batch objects double as the anchor for any
        # observer-side templates (ReplayBatch.cache).
        self._batch_memo: Dict[tuple, ReplayBatch] = {}

    # -- shared per-step cost pieces (exact reference association) --------
    def _ceil_div_cycles(self, amount: np.ndarray, feature_dim: int) -> np.ndarray:
        """``math.ceil(amount * f / pes)`` with the <=0 guard, elementwise."""
        raw = np.ceil(amount * feature_dim / self._pes)
        return np.where(amount > 0, raw, 0.0)

    def _banked_cycles(self, category: str, n_bytes) -> np.ndarray:
        return self._banked.cycles_batch(
            n_bytes, self._hints.get(category, _DEFAULT_BURST_HINT)
        )

    def _buffer_statics(self) -> _BufferStatics:
        if self._buffer is None:
            self._buffer = _statics_for(self.plan, self.capacity, self.config)
        return self._buffer

    # ------------------------------------------------------------------
    # OEI pair
    # ------------------------------------------------------------------
    def pair(self, act1: float, act2: float, resident_in: float) -> _PairKernel:
        key = (act1, act2, resident_in)
        kern = self._pair_memo.get(key)
        if kern is None:
            kern = self._build_pair(act1, act2, resident_in)
            self._pair_memo[key] = kern
        return kern

    def _build_pair(self, act1: float, act2: float,
                    resident_in: float) -> _PairKernel:
        plan, profile, config = self.plan, self.profile, self.config
        buf = self._buffer_statics()
        buf.drain_check()
        f = profile.feature_dim
        both = act1 + act2
        n_ops = profile.total_ewise_ops
        extra_dram_share = 2 * profile.extra_dram_bytes_per_iteration / plan.n_steps
        extra_ops_share = 2 * profile.extra_ops_per_iteration / plan.n_steps
        n_sub = plan.n_subtensors

        reload = buf.reload_bytes
        vec_read = (VECTOR_ELEMENT_BYTES * f) * (
            self._w * act1 + (self._w1 * profile.aux_streams) * both
        )
        writeback = (
            ((VECTOR_ELEMENT_BYTES * f) * self._w2) * profile.writeback_streams
        ) * both
        vector_cat = vec_read + extra_dram_share

        os_c = self._ceil_div_cycles(self._os_nnz * act1, f)
        ew_elems = self._w1 * both
        ew_c = np.where(
            (ew_elems > 0) & (n_ops > 0),
            np.ceil(ew_elems * f / self._pes) * n_ops, 0.0,
        )
        is_c = self._ceil_div_cycles(plan.scatter_nnz * act2, f)
        extra_c = extra_ops_share / self._pes if extra_ops_share > 0 else 0.0
        fixed_c = np.maximum.reduce([ew_c, is_c, np.maximum(os_c, extra_c)])
        fixed_c = np.maximum(fixed_c, self._overhead)

        # Static (no-prefetch) trajectory. The banked model folds
        # per-category cycle costs in the reference demand-dict order
        # (csc, csr_reload, vector, writeback — eager pays no demand).
        csc0 = self._csc0
        if self._banked is None:
            mem_total0 = ((csc0 + reload) + vector_cat) + writeback
            mem_c0 = mem_total0 / self._achievable
        else:
            mem_c0 = (
                (self._banked_cycles("csc", csc0)
                 + self._banked_cycles("csr_reload", reload))
                + self._banked_cycles("vector", vector_cat)
            ) + self._banked_cycles("writeback", writeback)
        step_cycles0 = np.maximum(fixed_c, mem_c0)
        demand0 = (((csc0 + reload) + vec_read) + writeback) + extra_dram_share
        leftover0 = step_cycles0 * self._achievable - demand0
        live_bytes_before = buf.live_before_admit * buf.element_bytes
        slack0 = buf.csr_capacity_bytes - (live_bytes_before + resident_in)

        fires = (
            config.eager_is
            and bool(np.any((leftover0 > 0) & (slack0 > 0) & self._future_csc))
        )
        if not fires:
            step_cycles, csc, eager, resident_out = (
                step_cycles0, csc0, np.zeros(plan.n_steps), resident_in,
            )
            mem_c = mem_c0
            peak_candidates = (
                buf.live_after_admit[:n_sub] * buf.element_bytes + resident_in
            )
        else:
            step_cycles, csc, eager, peak_candidates, resident_out, mem_c = (
                self._scan_pair(
                    fixed_c, reload, vec_read, vector_cat, writeback,
                    extra_dram_share, resident_in, buf,
                )
            )

        moved = {
            "csc": csc,
            "csr_reload": reload,
            "csr_eager": eager,
            "vector": vector_cat,
            "writeback": writeback,
        }

        # _os_nnz is zero-padded past n_subtensors, matching the
        # reference's explicit `else 0.0` at drain steps.
        os_ops = (self._os_nnz * act1) * f
        ew_ops = ((self._w1 * both) * n_ops) * f
        is_ops = (plan.scatter_nnz * act2) * f
        compute = np.empty((plan.n_steps, 3))
        compute[:, 0] = os_ops
        compute[:, 1] = ew_ops
        compute[:, 2] = is_ops + extra_ops_share
        return _PairKernel(
            step_cycles, moved, compute.ravel(), is_ops, peak_candidates,
            resident_out, (os_c, ew_c, is_c, extra_c, mem_c),
        )

    def _scan_pair(self, fixed_c, reload, vec_read, vector_cat, writeback,
                   extra_dram_share, resident_in, buf):
        """Lean scalar replay of the prefetch recurrence over the load
        steps; the ``IS_LAG`` drain tail is static (no demand, no release)."""
        plan = self.plan
        n_sub, n_steps = plan.n_subtensors, plan.n_steps
        achievable = self._achievable
        horizon_enabled = self.config.eager_is
        elem = buf.element_bytes
        csr_cap = buf.csr_capacity_bytes

        banked = self._banked
        if banked is not None:
            # Static categories pay their banked cost independent of the
            # prefetch recurrence; only csc demand varies step to step.
            rl_cyc = self._banked_cycles("csr_reload", reload).tolist()
            vc_cyc = self._banked_cycles("vector", vector_cat).tolist()
            wb_cyc = self._banked_cycles("writeback", writeback).tolist()
            csc_hint = self._hints.get("csc", _DEFAULT_BURST_HINT)

        remaining = plan.csc_bytes.astype(np.float64).copy()
        prefetched = np.zeros(n_sub)
        resident = resident_in
        fixed = fixed_c.tolist()
        reload_l = reload.tolist()
        vec_l = vec_read.tolist()
        vcat_l = vector_cat.tolist()
        wb_l = writeback.tolist()
        live_before = buf.live_before_admit.tolist()
        live_after = buf.live_after_admit.tolist()

        step_cycles = fixed_c.copy()
        mem_arr = np.zeros(n_steps)
        csc = np.zeros(n_steps)
        eager = np.zeros(n_steps)
        peak_candidates = np.zeros(n_sub)
        first_nz = 0

        s = 0
        while s < n_sub:
            released = float(prefetched[s])
            prefetched[s] = 0.0
            resident = max(0.0, resident - released)
            csc_due = float(remaining[s])
            remaining[s] = 0.0
            if banked is None:
                mem_total = ((csc_due + reload_l[s]) + vcat_l[s]) + wb_l[s]
                mem_c = mem_total / achievable
            else:
                mem_c = (
                    (banked.cycles(csc_due, csc_hint) + rl_cyc[s])
                    + vc_cyc[s]
                ) + wb_cyc[s]
            cyc = fixed[s] if fixed[s] >= mem_c else mem_c
            demand = (
                (((csc_due + reload_l[s]) + vec_l[s]) + wb_l[s])
                + extra_dram_share
            )
            leftover = cyc * achievable - demand
            slack = csr_cap - (live_before[s] * elem + resident)
            if slack < 0.0:
                slack = 0.0
            moved = 0.0
            if horizon_enabled and leftover > 0 and slack > 0:
                budget = leftover if leftover <= slack else slack
                if first_nz <= s:
                    first_nz = s + 1
                t = first_nz
                while budget > 0 and t < n_sub:
                    rem = float(remaining[t])
                    if rem > 0:
                        take = budget if budget <= rem else rem
                        remaining[t] = rem - take
                        prefetched[t] += take
                        moved += take
                        budget -= take
                    elif t == first_nz:
                        first_nz = t + 1
                    t += 1
            resident += moved
            step_cycles[s] = cyc
            mem_arr[s] = mem_c
            csc[s] = csc_due
            eager[s] = moved
            peak_candidates[s] = live_after[s] * elem + resident
            s += 1
        # Drain tail: no column demand, no releases, no admissions — the
        # static trajectory with zero csc demand, which _csc0 already is
        # beyond n_subtensors. Prefetch cannot fire (nothing remains).
        if n_steps > n_sub:
            if banked is None:
                mem_tail = (
                    ((0.0 + reload[n_sub:]) + vector_cat[n_sub:])
                    + writeback[n_sub:]
                )
                mem_tail_c = mem_tail / achievable
            else:
                mem_tail_c = (
                    (self._banked_cycles("csr_reload", reload[n_sub:])
                     + self._banked_cycles("vector", vector_cat[n_sub:]))
                ) + self._banked_cycles("writeback", writeback[n_sub:])
            mem_arr[n_sub:] = mem_tail_c
            step_cycles[n_sub:] = np.maximum(fixed_c[n_sub:], mem_tail_c)
        return step_cycles, csc, eager, peak_candidates, resident, mem_arr

    # ------------------------------------------------------------------
    # Streamed single iteration
    # ------------------------------------------------------------------
    def stream(self, act: float) -> _StreamKernel:
        kern = self._stream_memo.get(act)
        if kern is None:
            kern = self._build_stream(act)
            self._stream_memo[act] = kern
        return kern

    def _build_stream(self, act: float) -> _StreamKernel:
        plan, profile = self.plan, self.profile
        f = profile.feature_dim
        n_ops = profile.total_ewise_ops
        n_sub = plan.n_subtensors
        extra_dram_share = profile.extra_dram_bytes_per_iteration / max(1, n_sub)
        extra_ops_share = profile.extra_ops_per_iteration / max(1, n_sub)

        w = plan.subtensor_width.astype(np.float64)
        csc = plan.csc_bytes.astype(np.float64)
        vec_read = ((VECTOR_ELEMENT_BYTES * f) * w) * (
            act + profile.aux_streams * act
        )
        writeback = (((VECTOR_ELEMENT_BYTES * f) * w) * profile.writeback_streams) * act
        vector_cat = vec_read + extra_dram_share

        os_c = self._ceil_div_cycles(plan.os_nnz * act, f)
        ew_elems = w * act
        ew_c = np.where(
            (ew_elems > 0) & (n_ops > 0),
            np.ceil(ew_elems * f / self._pes) * n_ops, 0.0,
        )
        extra_c = extra_ops_share / self._pes if extra_ops_share > 0 else 0.0
        if self._banked is None:
            mem_total = (csc + vector_cat) + writeback
            mem_c = mem_total / self._achievable
        else:
            mem_c = (
                self._banked_cycles("csc", csc)
                + self._banked_cycles("vector", vector_cat)
            ) + self._banked_cycles("writeback", writeback)
        step_cycles = np.maximum.reduce(
            [os_c, ew_c, np.maximum(np.full(n_sub, extra_c), mem_c)]
        )
        step_cycles = np.maximum(step_cycles, self._overhead)

        compute = ((plan.os_nnz * act) * f + (ew_elems * n_ops) * f) + extra_ops_share
        moved = {"csc": csc, "vector": vector_cat, "writeback": writeback}
        return _StreamKernel(
            step_cycles, moved, compute, (os_c, ew_c, extra_c, mem_c)
        )

    # ------------------------------------------------------------------
    # Batched event synthesis (replay through the instrumentation)
    # ------------------------------------------------------------------
    def _stage_columns(self, kern) -> tuple:
        """``(stage, busy, stall)`` column triples from a kernel's stage
        arrays — ``stall`` is the same ``max(0.0, cycles - busy)`` the
        reference loop computes per step, folded elementwise."""
        cyc = kern.step_cycles
        names = (
            ("os", "ewise", "is", "extra", "memory")
            if len(kern.stage_cycles) == 5
            else ("os", "ewise", "extra", "memory")
        )
        out = []
        for name, busy in zip(names, kern.stage_cycles):
            if not isinstance(busy, np.ndarray):   # scalar extra share
                busy = np.full(cyc.size, busy)
            out.append((name, busy, np.maximum(0.0, cyc - busy)))
        return tuple(out)

    def replay_pair(self, instr: Instrumentation, kern: _PairKernel,
                    repack_fired: Tuple[bool, ...]) -> None:
        """Deliver one pair's synthesized event stream (closing with the
        FILL_STEP charge) as a memoized :class:`ReplayBatch` — the
        reference loop's exact firing order, batched, with the kernel's
        own vectors passed through as the columnar view."""
        key = (id(kern), repack_fired)
        batch = self._batch_memo.get(key)
        if batch is None:
            evict_bytes = self._buffer_statics().evict_step_bytes
            script = kern.replay_script(evict_bytes)
            steps = [
                (s, cyc, pref, transfers, ev, rp, moved, stages)
                for (s, cyc, pref, transfers, ev, moved, stages), rp
                in zip(script, repack_fired)
            ]
            steps.append((FILL_STEP, self._fill, 0.0, (), 0.0, False, {}, None))
            eager = kern.moved["csr_eager"]
            batch = ReplayBatch(steps, columns={
                "cycles": np.concatenate((kern.step_cycles, (self._fill,))),
                "dram": tuple(kern.moved.items()),
                "stages": self._stage_columns(kern),
                "evict": evict_bytes,
                "prefetch": eager,
                "n_real": int(kern.step_cycles.size),
                "n_evict": int(np.count_nonzero(evict_bytes)),
                "n_prefetch": int(np.count_nonzero(eager)),
                "n_repack": sum(1 for f in repack_fired if f),
            })
            self._batch_memo[key] = batch
        instr.replay(batch)

    def replay_stream(self, instr: Instrumentation,
                      kern: _StreamKernel) -> None:
        key = (id(kern),)
        batch = self._batch_memo.get(key)
        if batch is None:
            steps = [
                (t, cyc, 0.0, transfers, 0.0, False, moved, stages)
                for t, cyc, transfers, moved, stages in kern.replay_script()
            ]
            steps.append((FILL_STEP, self._fill, 0.0, (), 0.0, False, {}, None))
            empty = np.empty(0)
            batch = ReplayBatch(steps, columns={
                "cycles": np.concatenate((kern.step_cycles, (self._fill,))),
                "dram": tuple(kern.moved.items()),
                "stages": self._stage_columns(kern),
                "evict": empty,
                "prefetch": empty,
                "n_real": int(kern.step_cycles.size),
                "n_evict": 0,
                "n_prefetch": 0,
                "n_repack": 0,
            })
            self._batch_memo[key] = batch
        instr.replay(batch)


def run_fastpath(
    config: SparsepipeConfig,
    plan: LoadPlan,
    profile: WorkloadProfile,
    capacity: float,
    instr: Optional[Instrumentation] = None,
) -> SimResult:
    """Vectorized equivalent of the reference iteration loop — same
    ``SimResult`` for every configuration (flat or banked DRAM).

    ``instr`` is the caller's instrumentation dispatcher. With observers
    attached, the synthesized PR-3 event stream is replayed through it
    post-hoc (byte-identical traces/metrics, Fig 15 samples via any
    registered :class:`StepTraceObserver`); a falsy/absent ``instr`` is
    the zero-observer fast path — no events, ``bandwidth_samples=[]``.
    """
    run = _FastRun(config, plan, profile, capacity)
    replay = instr if instr else None

    cycle_chunks: List[np.ndarray] = []
    traffic_chunks: Dict[str, List[np.ndarray]] = {
        c: [] for c in _PAIR_CATEGORIES
    }
    compute_chunks: List[np.ndarray] = []
    is_ops_chunks: List[np.ndarray] = []
    peak_values: List[np.ndarray] = []
    n_pairs = 0
    repack_events = 0
    repack_carry = 0
    resident_carry = 0.0
    fill = np.array([run._fill])

    k = 0
    while k < profile.n_iterations:
        if profile.has_oei and k + 1 < profile.n_iterations:
            kern = run.pair(
                profile.activity_at(k), profile.activity_at(k + 1), resident_carry
            )
            cycle_chunks.append(kern.step_cycles)
            cycle_chunks.append(fill)
            for cat in _PAIR_CATEGORIES:
                traffic_chunks[cat].append(kern.moved[cat])
            compute_chunks.append(kern.compute_ops)
            is_ops_chunks.append(kern.is_ops)
            peak_values.append(kern.peak_candidates)
            events, new_carry, fired = (
                run._buffer_statics().repack_replay(repack_carry)
            )
            repack_carry = new_carry
            repack_events += events
            if replay is not None:
                run.replay_pair(replay, kern, fired)
            resident_carry = kern.resident_out
            n_pairs += 1
            k += 2
        else:
            kern = run.stream(profile.activity_at(k))
            cycle_chunks.append(kern.step_cycles)
            cycle_chunks.append(fill)
            for cat, arr in kern.moved.items():
                traffic_chunks[cat].append(arr)
            compute_chunks.append(kern.compute_ops)
            if replay is not None:
                run.replay_stream(replay, kern)
            k += 1

    cycles = _fold(cycle_chunks)
    traffic = TrafficBreakdown()
    for cat, chunks in traffic_chunks.items():
        traffic.bytes_by_category[cat] = _fold(chunks)
    compute_ops = _fold(compute_chunks)
    is_ops = _fold(is_ops_chunks)

    evicted = 0.0
    peak = 0.0
    if n_pairs:
        buf = run._buffer_statics()
        if buf.evict_events.size:
            evicted = _fold([buf.evict_events] * n_pairs)
        if peak_values:
            peak = max(0.0, float(np.max(np.concatenate(peak_values))))

    samples = []
    if instr is not None:
        trace_obs = instr.find(StepTraceObserver)
        if trace_obs is not None:
            samples = trace_obs.samples(config.bytes_per_cycle)

    seconds = config.seconds(cycles)
    total_bytes = traffic.total_bytes
    deliverable = cycles * config.bytes_per_cycle
    scatter_updates = is_ops * 2 * VECTOR_ELEMENT_BYTES
    return SimResult(
        name=profile.name,
        cycles=cycles,
        seconds=seconds,
        traffic=traffic,
        bandwidth_utilization=(
            min(1.0, total_bytes / deliverable) if deliverable else 0.0
        ),
        bandwidth_samples=samples,
        compute_ops=compute_ops,
        buffer_peak_bytes=peak,
        oom_evicted_bytes=evicted,
        repack_events=repack_events,
        n_iterations=profile.n_iterations,
        sram_access_bytes=2.0 * total_bytes + scatter_updates,
        extra={"buffer_capacity_bytes": float(capacity)},
    )
