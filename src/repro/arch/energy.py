"""Energy model (Section V-A, Fig 23).

Per-event energy constants in the style of Accelergy/Cacti-driven
estimation: every DRAM byte, SRAM byte, and PE operation costs a fixed
energy. The paper reports *relative* energy between Sparsepipe and the
baseline accelerator running identical workloads, which this model
reproduces directly from the simulators' traffic and operation counts.

Constants are representative of a ~5 nm node with GDDR6X memory
(DRAM ~15 pJ/byte, large SRAM ~1 pJ/byte, a 64-bit PE op ~0.8 pJ);
absolute Joules are not the quantity under test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.stats import SimResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per category, in Joules (Fig 23's three stacks)."""

    compute_j: float
    memory_j: float
    buffer_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.memory_j + self.buffer_j

    def relative_to(self, other: "EnergyBreakdown") -> float:
        """This design's total energy as a fraction of ``other``'s."""
        if other.total_j <= 0:
            raise ValueError("reference energy must be positive")
        return self.total_j / other.total_j


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants."""

    dram_pj_per_byte: float = 15.0
    sram_pj_per_byte: float = 1.0
    op_pj: float = 0.8

    def evaluate(self, result: SimResult) -> EnergyBreakdown:
        """Energy of one simulated run."""
        return EnergyBreakdown(
            compute_j=result.compute_ops * self.op_pj * 1e-12,
            memory_j=result.total_bytes * self.dram_pj_per_byte * 1e-12,
            buffer_j=result.sram_access_bytes * self.sram_pj_per_byte * 1e-12,
        )
