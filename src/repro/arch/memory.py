"""DRAM controller model.

Converts byte demands into cycle costs at the configured bandwidth
(Table II) and accounts every byte in a :class:`TrafficBreakdown`.

Two fidelity levels, selected by ``SparsepipeConfig.detailed_dram``:

- **flat** (default): every byte moves at ``peak x dram_efficiency`` —
  the granularity the paper's headline evaluation uses (achieved
  bandwidth and traffic volume, Figs 15/21/22);
- **banked**: per-category burst sizes drive a row-buffer/bank model
  (:mod:`repro.arch.dram`), so scattered row reloads cost more than
  streaming column loads.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.arch.config import SparsepipeConfig
from repro.arch.dram import BankedDRAM
from repro.arch.stats import TrafficBreakdown


class MemoryController:
    """Per-run DRAM accounting for one simulation."""

    def __init__(
        self,
        config: SparsepipeConfig,
        burst_hints: Optional[Mapping[str, float]] = None,
    ) -> None:
        self._config = config
        self.traffic = TrafficBreakdown()
        self._banked: Optional[BankedDRAM] = None
        self._hints: Mapping[str, float] = dict(burst_hints or {})
        if config.detailed_dram:
            self._banked = BankedDRAM(
                config.memory,
                config.clock_ghz,
                stream_efficiency=config.dram_efficiency,
            )

    @property
    def bytes_per_cycle(self) -> float:
        return self._config.bytes_per_cycle

    def cycles_for(self, n_bytes: float) -> float:
        """Cycles to transfer ``n_bytes`` at achievable streaming
        bandwidth (flat model; also the banked model's best case)."""
        if n_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {n_bytes}")
        return n_bytes / (self.bytes_per_cycle * self._config.dram_efficiency)

    def demand_cycles(self, moved: Mapping[str, float]) -> float:
        """Cycles to serve one step's demand, by category.

        Flat model: total bytes at achievable bandwidth. Banked model:
        each category pays for its burst granularity (hints default to
        streaming-friendly large bursts when absent).
        """
        if self._banked is None:
            return self.cycles_for(sum(moved.values()))
        total = 0.0
        for category, n_bytes in moved.items():
            if n_bytes <= 0:
                continue
            hint = self._hints.get(category, 4096.0)
            total += self._banked.cycles(n_bytes, hint)
        return total

    def transfer(self, category: str, n_bytes: float) -> float:
        """Record a transfer and return its (flat) cycle cost."""
        self.traffic.add(category, n_bytes)
        return self.cycles_for(n_bytes)
