"""Simulation statistics: traffic breakdowns, bandwidth samples, and the
top-level :class:`SimResult` every experiment consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.util.numeric import safe_div

#: Traffic categories, matching the stacked areas of Fig 15.
TRAFFIC_CATEGORIES = (
    "csc",         # demand column loads for the OS stage
    "csr_eager",   # eager row prefetches with leftover bandwidth (Fig 9)
    "csr_reload",  # ping-pong reloads after OOM evictions
    "vector",      # input vector + e-wise operand streams
    "writeback",   # finalized output elements
)


@dataclass
class TrafficBreakdown:
    """Bytes moved to/from DRAM, by category."""

    bytes_by_category: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in TRAFFIC_CATEGORIES}
    )

    def add(self, category: str, n_bytes: float) -> None:
        if category not in self.bytes_by_category:
            raise KeyError(
                f"unknown traffic category {category!r}; "
                f"expected one of {TRAFFIC_CATEGORIES}"
            )
        self.bytes_by_category[category] += n_bytes

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_by_category.values())

    @property
    def matrix_bytes(self) -> float:
        return (
            self.bytes_by_category["csc"]
            + self.bytes_by_category["csr_eager"]
            + self.bytes_by_category["csr_reload"]
        )

    @property
    def prefetch_hit_ratio(self) -> float:
        """Fraction of row traffic served by the eager prefetcher
        rather than ping-pong reloads: eager / (eager + reload), 0.0
        when no row bytes moved (Fig 9 vs Fig 15d)."""
        eager = self.bytes_by_category["csr_eager"]
        reload_ = self.bytes_by_category["csr_reload"]
        total = eager + reload_
        return eager / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Per-category bytes, canonical order, JSON-plain."""
        return {c: float(self.bytes_by_category[c]) for c in TRAFFIC_CATEGORIES}

    def merged(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        out = TrafficBreakdown()
        for cat in TRAFFIC_CATEGORIES:
            out.bytes_by_category[cat] = (
                self.bytes_by_category[cat] + other.bytes_by_category[cat]
            )
        return out


@dataclass(frozen=True)
class BandwidthSample:
    """One bar of Fig 15: utilization within a progress interval."""

    progress: float            #: end of interval, fraction of run [0, 1]
    utilization: float         #: moved / deliverable, in [0, 1]
    category_share: Dict[str, float]  #: fraction of moved bytes per category


@dataclass
class StepTrace:
    """Raw per-step record accumulated by the simulator."""

    cycles: List[float] = field(default_factory=list)
    bytes_by_category: List[Dict[str, float]] = field(default_factory=list)

    def record(self, cycles: float, moved: Dict[str, float]) -> None:
        self.cycles.append(cycles)
        self.bytes_by_category.append(dict(moved))

    def samples(self, bytes_per_cycle: float, n_bins: int = 25) -> List[BandwidthSample]:
        """Aggregate per-step records into Fig 15's 4% progress bins."""
        if not self.cycles:
            return []
        cycles = np.asarray(self.cycles, dtype=np.float64)
        total = cycles.sum()
        boundaries = np.cumsum(cycles)
        out: List[BandwidthSample] = []
        lo = 0.0
        step_idx = 0
        for b in range(1, n_bins + 1):
            hi = total * b / n_bins
            bin_cycles = 0.0
            bin_bytes = {c: 0.0 for c in TRAFFIC_CATEGORIES}
            while step_idx < cycles.size and boundaries[step_idx] <= hi + 1e-9:
                bin_cycles += cycles[step_idx]
                for cat, val in self.bytes_by_category[step_idx].items():
                    bin_bytes[cat] += val
                step_idx += 1
            moved = sum(bin_bytes.values())
            util = safe_div(moved, bin_cycles * bytes_per_cycle)
            share = {c: safe_div(v, moved) for c, v in bin_bytes.items()}
            out.append(BandwidthSample(b / n_bins, min(1.0, util), share))
            lo = hi
        return out


@dataclass
class SimResult:
    """Outcome of simulating one (workload, matrix, architecture) tuple."""

    name: str
    cycles: float
    seconds: float
    traffic: TrafficBreakdown
    bandwidth_utilization: float        #: whole-run average, [0, 1]
    bandwidth_samples: List[BandwidthSample]
    compute_ops: float                  #: total PE operations executed
    buffer_peak_bytes: float
    oom_evicted_bytes: float
    repack_events: int
    n_iterations: int
    sram_access_bytes: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return self.traffic.total_bytes

    def speedup_over(self, other: "SimResult") -> float:
        """``other.seconds / self.seconds`` — how much faster this run is."""
        if self.seconds <= 0:
            raise ValueError(f"non-positive runtime for {self.name!r}")
        return other.seconds / self.seconds

    # ------------------------------------------------------------------
    # JSON round-trip (the on-disk result cache's wire format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation; ``from_dict`` inverts it exactly
        (floats survive JSON round-trips bit-for-bit in Python 3)."""
        return {
            "name": self.name,
            "cycles": float(self.cycles),
            "seconds": float(self.seconds),
            "traffic": {
                c: float(v) for c, v in self.traffic.bytes_by_category.items()
            },
            "bandwidth_utilization": float(self.bandwidth_utilization),
            "bandwidth_samples": [
                {
                    "progress": float(s.progress),
                    "utilization": float(s.utilization),
                    "category_share": {
                        c: float(v) for c, v in s.category_share.items()
                    },
                }
                for s in self.bandwidth_samples
            ],
            "compute_ops": float(self.compute_ops),
            "buffer_peak_bytes": float(self.buffer_peak_bytes),
            "oom_evicted_bytes": float(self.oom_evicted_bytes),
            "repack_events": int(self.repack_events),
            "n_iterations": int(self.n_iterations),
            "sram_access_bytes": float(self.sram_access_bytes),
            "extra": {k: float(v) for k, v in self.extra.items()},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SimResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        traffic = TrafficBreakdown(
            bytes_by_category={
                c: float(v) for c, v in doc["traffic"].items()
            }
        )
        samples = [
            BandwidthSample(
                progress=float(s["progress"]),
                utilization=float(s["utilization"]),
                category_share={
                    c: float(v) for c, v in s["category_share"].items()
                },
            )
            for s in doc["bandwidth_samples"]
        ]
        return cls(
            name=str(doc["name"]),
            cycles=float(doc["cycles"]),
            seconds=float(doc["seconds"]),
            traffic=traffic,
            bandwidth_utilization=float(doc["bandwidth_utilization"]),
            bandwidth_samples=samples,
            compute_ops=float(doc["compute_ops"]),
            buffer_peak_bytes=float(doc["buffer_peak_bytes"]),
            oom_evicted_bytes=float(doc["oom_evicted_bytes"]),
            repack_events=int(doc["repack_events"]),
            n_iterations=int(doc["n_iterations"]),
            sram_access_bytes=float(doc["sram_access_bytes"]),
            extra={k: float(v) for k, v in doc["extra"].items()},
        )
