"""The Sparsepipe pipeline simulator (Sections IV-D and V-A).

``SparsepipeSimulator.run`` walks every loop iteration of a workload
over the preprocessed input matrix. Iterations are fused in OEI pairs
when the compiled program allows it; each pair is simulated step by
step: the CSC loader, e-wise vector loader, OS/E-Wise/IS cores, eager
CSR prefetcher, and the on-chip buffer all charge cycles and bytes per
sub-tensor step, and the step's duration is the slowest of them (the
pipeline advances in lock-step, Fig 13).  Workloads without an OEI path
(cg, bgs) run producer-consumer-fused single passes.

Instrumentation is pluggable: pass ``observers`` to receive the
step / transfer / evict / repack / prefetch event stream
(:mod:`repro.engine.instrumentation`).  The default (``observers=None``)
registers one :class:`~repro.engine.instrumentation.StepTraceObserver`
so the returned :class:`SimResult` carries Fig 15's bandwidth samples
exactly as before; pass ``observers=()`` for the zero-observer fast
path (no per-step recording, ``bandwidth_samples=[]``) when only the
aggregate numbers matter — sweeps and autotuning, for instance.

The observability layer (:mod:`repro.obs`) builds on the same stream:
a :class:`~repro.obs.timeline.TimelineObserver` exports the run as a
Chrome/Perfetto trace and a :class:`~repro.obs.metrics.MetricsObserver`
feeds the shared metrics registry — ``python -m repro trace`` attaches
both.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.arch.buffer import OnChipBuffer
from repro.arch.config import (
    PAPER_BUFFER_BYTES,
    SparsepipeConfig,
    scaled_buffer_bytes,
)
from repro.arch.cores import ComputePipeline
from repro.arch.fastpath import VECTOR_ELEMENT_BYTES, burst_hints, run_fastpath
from repro.arch.loaders import EagerPrefetcher, LoadPlan
from repro.arch.memory import MemoryController
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import SimResult
from repro.engine.instrumentation import (
    FILL_STEP,
    Instrumentation,
    Observer,
    StepTraceObserver,
)
from repro.engine.registry import register_arch
from repro.formats.coo import COOMatrix
from repro.preprocess.pipeline import PreprocessResult



@register_arch(
    "sparsepipe",
    takes_config=True,
    description="the Sparsepipe OEI pipeline simulator (Sections IV-V)",
    observable=True,
)
class SparsepipeSimulator:
    """Simulates one Sparsepipe instance over (workload, matrix) pairs."""

    def __init__(self, config: SparsepipeConfig = SparsepipeConfig()) -> None:
        self.config = config
        #: Which execution backend served the last ``run`` — the bench
        #: and CI assert observed runs never silently downgrade.
        self.last_backend: Optional[str] = None

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def prepare(
        self, profile: WorkloadProfile, matrix: Union[COOMatrix, PreprocessResult]
    ) -> LoadPlan:
        """Structure-derived load plan for this config's sub-tensor
        width (the Engine protocol's warm-up hook)."""
        return LoadPlan.from_matrix(matrix, self.config.subtensor_cols)

    def run(
        self,
        profile: WorkloadProfile,
        matrix: Union[COOMatrix, PreprocessResult],
        paper_nnz: Optional[int] = None,
        observers: Optional[Sequence[Observer]] = None,
    ) -> SimResult:
        """Simulate the full application run.

        ``paper_nnz`` enables per-matrix buffer scaling (DESIGN.md):
        the buffer capacity keeps the paper's buffer-to-matrix ratio.
        ``observers`` receive the simulator's event stream; ``None``
        attaches the default step-trace observer, ``()`` disables
        instrumentation entirely (fast path, no bandwidth samples).
        """
        config = self.config
        plan = self.prepare(profile, matrix)
        if config.buffer_bytes is not None:
            capacity = config.buffer_bytes
        elif paper_nnz is not None:
            capacity = scaled_buffer_bytes(plan.total_nnz, paper_nnz)
        else:
            capacity = PAPER_BUFFER_BYTES

        if observers is None:
            instr = Instrumentation((StepTraceObserver(),))
        else:
            instr = Instrumentation(observers)

        # Vectorized backend: bit-identical to the loop below
        # (repro.arch.fastpath) for every configuration — attached
        # observers receive the synthesized PR-3 event stream post-hoc
        # and the banked DRAM model is vectorized per category, so there
        # is no reference-loop fallback.
        if config.backend == "vectorized":
            self.last_backend = "vectorized"
            return run_fastpath(config, plan, profile, capacity, instr=instr)
        self.last_backend = "reference"

        memory = MemoryController(
            config, burst_hints=self._burst_hints(plan, profile)
        )
        cores = ComputePipeline(config)
        buffer = OnChipBuffer(
            capacity_bytes=capacity,
            csr_window_fraction=config.csr_window_fraction,
            element_bytes=plan.element_bytes,
            repack_threshold=config.repack_threshold,
        )
        state = _RunState()

        k = 0
        while k < profile.n_iterations:
            if profile.has_oei and k + 1 < profile.n_iterations:
                self._simulate_pair(plan, profile, k, memory, cores, buffer, instr, state)
                k += 2
            else:
                self._simulate_stream(plan, profile, k, memory, cores, instr, state)
                k += 1

        cycles = state.cycles
        seconds = config.seconds(cycles)
        total_bytes = memory.traffic.total_bytes
        deliverable = cycles * config.bytes_per_cycle
        scatter_updates = state.is_ops * 2 * VECTOR_ELEMENT_BYTES
        trace_obs = instr.find(StepTraceObserver)
        samples = (
            trace_obs.samples(config.bytes_per_cycle) if trace_obs is not None else []
        )
        return SimResult(
            name=profile.name,
            cycles=cycles,
            seconds=seconds,
            traffic=memory.traffic,
            bandwidth_utilization=min(1.0, total_bytes / deliverable) if deliverable else 0.0,
            bandwidth_samples=samples,
            compute_ops=state.compute_ops,
            buffer_peak_bytes=buffer.peak_bytes,
            oom_evicted_bytes=buffer.evicted_bytes,
            repack_events=buffer.repack_events,
            n_iterations=profile.n_iterations,
            sram_access_bytes=2.0 * total_bytes + scatter_updates,
            extra={"buffer_capacity_bytes": float(buffer.capacity_bytes)},
        )

    @staticmethod
    def _burst_hints(plan: LoadPlan, profile: WorkloadProfile) -> dict:
        """Average DRAM burst sizes per traffic category (banked DRAM
        model only); one definition shared with the fastpath."""
        return burst_hints(plan, profile)

    # ------------------------------------------------------------------
    # OEI pair (iterations k and k+1 fused)
    # ------------------------------------------------------------------
    def _simulate_pair(
        self,
        plan: LoadPlan,
        profile: WorkloadProfile,
        k: int,
        memory: MemoryController,
        cores: ComputePipeline,
        buffer: OnChipBuffer,
        instr: Instrumentation,
        state: "_RunState",
    ) -> None:
        config = self.config
        f = profile.feature_dim
        act1 = profile.activity_at(k)
        act2 = profile.activity_at(k + 1)
        both = act1 + act2
        n_ops = profile.total_ewise_ops
        extra_dram_share = 2 * profile.extra_dram_bytes_per_iteration / plan.n_steps
        extra_ops_share = 2 * profile.extra_ops_per_iteration / plan.n_steps
        prefetcher = EagerPrefetcher(plan, config.eager_is)

        def width(t: int) -> float:
            if 0 <= t < plan.n_subtensors:
                return float(plan.subtensor_width[t])
            return 0.0

        for s in range(plan.n_steps):
            moved = {}
            # --- demand traffic --------------------------------------
            reload_bytes = buffer.pop_reload(s)
            csc_due = prefetcher.demand(s)
            buffer.prefetch_resident_bytes = max(
                0.0, buffer.prefetch_resident_bytes - prefetcher.release_at(s)
            )
            # OS input x at s, e-wise operand vectors at s-1 (both
            # pair halves), finalized outputs at s-2.
            vec_read = VECTOR_ELEMENT_BYTES * f * (
                width(s) * act1 + width(s - 1) * profile.aux_streams * both
            )
            writeback = (
                VECTOR_ELEMENT_BYTES * f * width(s - 2)
                * profile.writeback_streams * both
            )
            demand_by_category = {
                "csc": csc_due,
                "csr_reload": reload_bytes,
                "vector": vec_read + extra_dram_share,
                "writeback": writeback,
            }
            demand = csc_due + reload_bytes + vec_read + writeback + extra_dram_share

            # --- compute --------------------------------------------
            os_c = cores.os_cycles(plan.os_nnz[s] * act1, f) if s < plan.n_subtensors else 0.0
            ew_c = cores.ewise_cycles(width(s - 1) * both, n_ops, f)
            is_c = cores.is_cycles(plan.scatter_nnz[s] * act2, f)
            extra_c = cores.extra_cycles(extra_ops_share)
            mem_c = memory.demand_cycles(demand_by_category)
            step_cycles = max(
                os_c, ew_c, is_c, extra_c, mem_c, float(config.step_overhead_cycles)
            )

            # --- eager CSR prefetch with leftover bandwidth ----------
            achievable = memory.bytes_per_cycle * config.dram_efficiency
            leftover = step_cycles * achievable - demand
            prefetched = prefetcher.prefetch(s, leftover, buffer.slack_bytes())
            buffer.prefetch_resident_bytes += prefetched
            if instr and prefetched:
                instr.prefetch(s, prefetched)

            # --- account --------------------------------------------
            moved["csc"] = csc_due
            moved["csr_reload"] = reload_bytes
            moved["csr_eager"] = prefetched
            moved["vector"] = vec_read + extra_dram_share
            moved["writeback"] = writeback
            for cat, val in moved.items():
                if val:
                    memory.transfer(cat, val)
                    if instr:
                        instr.transfer(cat, val)

            # --- reuse-window transitions ----------------------------
            if s < plan.n_subtensors:
                buffer.admit(plan.enter_counts[s])
            repacks_before = buffer.repack_events
            buffer.release(s)
            evicted = buffer.enforce_capacity(s)
            if instr:
                if evicted:
                    instr.evict(s, evicted)
                if buffer.repack_events > repacks_before:
                    instr.repack(s)

            state.cycles += step_cycles
            if instr:
                instr.step(
                    s, step_cycles, moved,
                    {"os": os_c, "ewise": ew_c, "is": is_c,
                     "extra": extra_c, "memory": mem_c},
                )
            state.compute_ops += (
                plan.os_nnz[s] * act1 * f if s < plan.n_subtensors else 0.0
            )
            state.compute_ops += width(s - 1) * both * n_ops * f
            state.compute_ops += plan.scatter_nnz[s] * act2 * f + extra_ops_share
            state.is_ops += plan.scatter_nnz[s] * act2 * f
        buffer.drain_check()
        # Pipeline fill: the first DRAM access and the adder-tree drain
        # are exposed once per pair (hidden in steady state).
        fill = float(config.read_latency_cycles + cores.tree_depth)
        state.cycles += fill
        if instr:
            instr.step(FILL_STEP, fill, {})

    # ------------------------------------------------------------------
    # Single streamed iteration (odd tail, or non-OEI workloads)
    # ------------------------------------------------------------------
    def _simulate_stream(
        self,
        plan: LoadPlan,
        profile: WorkloadProfile,
        k: int,
        memory: MemoryController,
        cores: ComputePipeline,
        instr: Instrumentation,
        state: "_RunState",
    ) -> None:
        """One producer-consumer-fused pass: the matrix streams once,
        e-wise consumes OS output on-chip, final outputs write back."""
        config = self.config
        f = profile.feature_dim
        act = profile.activity_at(k)
        n_ops = profile.total_ewise_ops
        extra_dram_share = profile.extra_dram_bytes_per_iteration / max(1, plan.n_subtensors)
        extra_ops_share = profile.extra_ops_per_iteration / max(1, plan.n_subtensors)

        for t in range(plan.n_subtensors):
            w = float(plan.subtensor_width[t])
            vec_read = VECTOR_ELEMENT_BYTES * f * w * (act + profile.aux_streams * act)
            writeback = VECTOR_ELEMENT_BYTES * f * w * profile.writeback_streams * act
            demand_by_category = {
                "csc": float(plan.csc_bytes[t]),
                "vector": vec_read + extra_dram_share,
                "writeback": writeback,
            }

            os_c = cores.os_cycles(plan.os_nnz[t] * act, f)
            ew_c = cores.ewise_cycles(w * act, n_ops, f)
            extra_c = cores.extra_cycles(extra_ops_share)
            mem_c = memory.demand_cycles(demand_by_category)
            step_cycles = max(os_c, ew_c, extra_c, mem_c, float(config.step_overhead_cycles))

            moved = {
                "csc": float(plan.csc_bytes[t]),
                "vector": vec_read + extra_dram_share,
                "writeback": writeback,
            }
            for cat, val in moved.items():
                if val:
                    memory.transfer(cat, val)
                    if instr:
                        instr.transfer(cat, val)
            state.cycles += step_cycles
            if instr:
                instr.step(
                    t, step_cycles, moved,
                    {"os": os_c, "ewise": ew_c, "extra": extra_c, "memory": mem_c},
                )
            state.compute_ops += (
                plan.os_nnz[t] * act * f + w * act * n_ops * f + extra_ops_share
            )
        fill = float(config.read_latency_cycles + cores.tree_depth)
        state.cycles += fill
        if instr:
            instr.step(FILL_STEP, fill, {})


class _RunState:
    """Mutable accumulators shared across pairs within one run."""

    def __init__(self) -> None:
        self.cycles = 0.0
        self.compute_ops = 0.0
        self.is_ops = 0.0
