"""Text rendering of the OEI pipeline schedule — Fig 13 as ASCII.

``render_pipeline`` draws, for a handful of sub-tensors, which pipeline
stage touches which sub-tensor at each step: the CSC loader one step
ahead of the OS stage, the e-wise stage one behind, the IS stage two
behind. Useful in docs and for eyeballing schedule changes.
"""

from __future__ import annotations

from typing import List

from repro.oei.schedule import OEISchedule

#: Row order of the rendering, matching Fig 13 top-to-bottom.
STAGES = ("csc load", "os", "e-wise", "is")


def render_pipeline(n: int, subtensor_cols: int, max_steps: int = 12) -> str:
    """Render the schedule of one OEI pair as an ASCII Gantt chart.

    Cells contain the sub-tensor index each stage processes at that
    step (``.`` when idle); the CSC loader runs one step ahead of the
    OS stage per Fig 13.
    """
    schedule = OEISchedule(n, subtensor_cols)
    n_steps = min(schedule.n_steps + 1, max_steps)
    header = "step      " + " ".join(f"{s:>3}" for s in range(n_steps))
    lines: List[str] = [header, "-" * len(header)]
    for stage in STAGES:
        cells = []
        for step in range(n_steps):
            if stage == "csc load":
                target = step + 1  # loading for the OS stage of step+1
                sub = (
                    schedule.subtensor(target)
                    if 0 <= target < schedule.n_subtensors
                    else None
                )
            elif stage == "os":
                sub = schedule.os_at(step)
            elif stage == "e-wise":
                sub = schedule.ewise_at(step)
            else:
                sub = schedule.is_at(step)
            cells.append(f"{sub.index:>3}" if sub is not None else "  .")
        lines.append(f"{stage:<9} " + " ".join(cells))
    if schedule.n_steps + 1 > max_steps:
        lines.append(f"... ({schedule.n_steps} steps total)")
    return "\n".join(lines)
