"""Text rendering of the OEI pipeline schedule — Fig 13 as ASCII.

``render_pipeline`` draws, for a handful of sub-tensors, which pipeline
stage touches which sub-tensor at each step: the CSC loader one step
ahead of the OS stage, the e-wise stage one behind, the IS stage two
behind. Useful in docs and for eyeballing schedule changes.

:class:`PipelineActivityObserver` is the *measured* counterpart: it
plugs into :meth:`SparsepipeSimulator.run
<repro.arch.simulator.SparsepipeSimulator.run>` as an instrumentation
observer and records which component bound each simulated step, so
``render_bottlenecks`` shows where the lock-step pipeline actually
spent its time rather than the nominal schedule.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.instrumentation import FILL_STEP, Observer
from repro.oei.schedule import OEISchedule

#: Row order of the rendering, matching Fig 13 top-to-bottom.
STAGES = ("csc load", "os", "e-wise", "is")


def render_pipeline(n: int, subtensor_cols: int, max_steps: int = 12) -> str:
    """Render the schedule of one OEI pair as an ASCII Gantt chart.

    Cells contain the sub-tensor index each stage processes at that
    step (``.`` when idle); the CSC loader runs one step ahead of the
    OS stage per Fig 13.
    """
    schedule = OEISchedule(n, subtensor_cols)
    n_steps = min(schedule.n_steps + 1, max_steps)
    header = "step      " + " ".join(f"{s:>3}" for s in range(n_steps))
    lines: List[str] = [header, "-" * len(header)]
    for stage in STAGES:
        cells = []
        for step in range(n_steps):
            if stage == "csc load":
                target = step + 1  # loading for the OS stage of step+1
                sub = (
                    schedule.subtensor(target)
                    if 0 <= target < schedule.n_subtensors
                    else None
                )
            elif stage == "os":
                sub = schedule.os_at(step)
            elif stage == "e-wise":
                sub = schedule.ewise_at(step)
            else:
                sub = schedule.is_at(step)
            cells.append(f"{sub.index:>3}" if sub is not None else "  .")
        lines.append(f"{stage:<9} " + " ".join(cells))
    if schedule.n_steps + 1 > max_steps:
        lines.append(f"... ({schedule.n_steps} steps total)")
    return "\n".join(lines)


class PipelineActivityObserver(Observer):
    """Records per-step component timings from a live simulation.

    Register with ``SparsepipeSimulator(...).run(..., observers=[obs])``;
    afterwards ``bottlenecks()`` names the slowest component of each
    step and ``render_bottlenecks()`` draws the lock-step occupancy as
    ASCII (``#`` where a component set the step's duration, ``+`` where
    it was within 10% of it).
    """

    def __init__(self) -> None:
        #: (step index, step cycles, component -> cycles)
        self.steps: List[Tuple[int, float, Dict[str, float]]] = []

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        if step == FILL_STEP or stage_cycles is None:
            return
        self.steps.append((step, cycles, dict(stage_cycles)))

    def bottlenecks(self) -> List[str]:
        """The slowest component per recorded step (``overhead`` when
        the fixed step overhead set the duration)."""
        out = []
        for _, cycles, stages in self.steps:
            name, worst = max(stages.items(), key=lambda kv: kv[1])
            out.append(name if worst >= cycles else "overhead")
        return out

    def busy_fraction(self) -> Dict[str, float]:
        """Fraction of recorded steps each component bound — the
        scalar companion to the per-step timeline the observability
        layer (:class:`~repro.obs.timeline.TimelineObserver`) exports."""
        names = self.bottlenecks()
        if not names:
            return {}
        return {
            comp: names.count(comp) / len(names) for comp in sorted(set(names))
        }

    def render_bottlenecks(self, max_steps: int = 16) -> str:
        """ASCII occupancy chart of the measured pipeline steps."""
        if not self.steps:
            return "(no steps recorded)"
        shown = self.steps[:max_steps]
        components = sorted({c for _, _, stages in shown for c in stages})
        header = "step      " + " ".join(
            f"{s:>3}" for s, _, _ in shown
        )
        lines = [header, "-" * len(header)]
        for comp in components:
            cells = []
            for _, cycles, stages in shown:
                v = stages.get(comp, 0.0)
                if v >= cycles:
                    cells.append("  #")
                elif cycles > 0 and v >= 0.9 * cycles:
                    cells.append("  +")
                else:
                    cells.append("  .")
            lines.append(f"{comp:<9} " + " ".join(cells))
        if len(self.steps) > max_steps:
            lines.append(f"... ({len(self.steps)} steps total)")
        return "\n".join(lines)
