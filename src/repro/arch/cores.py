"""Timing models of the three compute cores (Section IV-C).

All three cores are arrays of ``pes_per_core`` identical PEs; they
differ in how work maps onto the array:

- the **OS core** reduces columns with a SIGMA-style forwarding adder
  tree, so a sub-tensor's cost is its non-zero count spread over the
  PEs plus the tree's pipeline depth;
- the **E-Wise core** executes the fused instruction stream in SIMD
  over the sub-tensor's elements;
- the **IS core** scatters element-row products; its cost is the number
  of products it may legally compute this step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import SparsepipeConfig


@dataclass(frozen=True)
class CoreTimings:
    """Per-step cycle costs of the three pipeline stages."""

    os_cycles: float
    ewise_cycles: float
    is_cycles: float

    @property
    def bottleneck(self) -> float:
        return max(self.os_cycles, self.ewise_cycles, self.is_cycles)


class ComputePipeline:
    """Cycle cost calculators shared by the simulator."""

    def __init__(self, config: SparsepipeConfig) -> None:
        self._pes = config.pes_per_core
        #: Forwarding-adder-tree drain depth (log2 of the PE array).
        self._tree_depth = max(1, int(math.ceil(math.log2(config.pes_per_core))))

    @property
    def tree_depth(self) -> int:
        """Forwarding-adder-tree pipeline depth — a latency, not a
        throughput cost (the tree is fully pipelined)."""
        return self._tree_depth

    def os_cycles(self, nnz: float, feature_dim: int = 1) -> float:
        """Dot-product work of one column sub-tensor."""
        if nnz <= 0:
            return 0.0
        return math.ceil(nnz * feature_dim / self._pes)

    def ewise_cycles(self, elements: float, n_ops: int, feature_dim: int = 1) -> float:
        """SIMD evaluation of the fused instruction stream."""
        if elements <= 0 or n_ops <= 0:
            return 0.0
        return math.ceil(elements * feature_dim / self._pes) * n_ops

    def is_cycles(self, scatter_nnz: float, feature_dim: int = 1) -> float:
        """Scatter-multiply work legal at this step."""
        if scatter_nnz <= 0:
            return 0.0
        return math.ceil(scatter_nnz * feature_dim / self._pes)

    def extra_cycles(self, ops: float) -> float:
        """Off-pipeline compute (dense MM, solver dots), at full array
        throughput."""
        if ops <= 0:
            return 0.0
        return ops / self._pes
