"""Area model (Section VI-G, Fig 20b).

The paper synthesizes Sparsepipe RTL at 45 nm and scales to TSMC N5:
253.95 mm^2 total with the on-chip buffer contributing 78%. This model
is calibrated to those two published figures — the buffer density and
per-PE area below reproduce them exactly for the evaluated
configuration (64 MB buffer, 3 cores x 1024 PEs) — and is then used
parametrically for ablations and the performance-per-area comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Die areas of the comparison systems, mm^2 (Section VI-G; the CPU
#: figure is the Zen3 CCD plus stacked V-cache of the 5800X3D).
GPU_AREA_MM2 = 294.0
CPU_AREA_MM2 = 121.0

#: The paper's published result, used for calibration checks.
PAPER_SPARSEPIPE_AREA_MM2 = 253.95
PAPER_BUFFER_SHARE = 0.78


@dataclass(frozen=True)
class AreaModel:
    """Parametric N5 area estimates."""

    sram_mm2_per_mb: float = PAPER_SPARSEPIPE_AREA_MM2 * PAPER_BUFFER_SHARE / 64.0
    pe_mm2: float = 0.0150
    control_mm2: float = 9.8  # loaders, dispatchers, scatter network

    def sparsepipe_mm2(self, buffer_mb: float = 64.0, n_pes: int = 3 * 1024) -> float:
        """Total die area of a Sparsepipe instance."""
        if buffer_mb < 0 or n_pes < 0:
            raise ValueError("area parameters must be non-negative")
        return self.sram_mm2_per_mb * buffer_mb + self.pe_mm2 * n_pes + self.control_mm2

    def buffer_share(self, buffer_mb: float = 64.0, n_pes: int = 3 * 1024) -> float:
        """Fraction of the die spent on the buffer (paper: 78%)."""
        total = self.sparsepipe_mm2(buffer_mb, n_pes)
        return self.sram_mm2_per_mb * buffer_mb / total

    def perf_per_area(self, relative_perf: float, area_mm2: float) -> float:
        """Performance-per-area figure of merit (Fig 20b)."""
        if area_mm2 <= 0:
            raise ValueError(f"area must be positive, got {area_mm2}")
        return relative_perf / area_mm2
