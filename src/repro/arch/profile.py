"""Workload profiles: what the timing models need to know about one
STA application's loop body.

A profile is produced by each workload definition (compiled program +
functional characterization) and consumed by the Sparsepipe simulator
and all baseline models, so every architecture is timed from the same
description of the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.dataflow.program import OEIProgram
from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-iteration resource demands of a loop body.

    Attributes
    ----------
    semiring_name:
        Opcode of the contractions.
    has_oei:
        Whether the OEI pair fusion applies (Table III: all apps except
        ``cg`` and ``bgs``).
    n_iterations:
        Loop trips to simulate (from the functional run's convergence).
    path_ewise_ops / side_ewise_ops:
        E-wise instructions on and off the fused OEI path.
    aux_streams:
        Auxiliary vectors streamed from memory per element per
        iteration (the e-wise vector loader's demand).
    writeback_streams:
        Output vectors written back per iteration.
    feature_dim:
        Dense feature width: 1 for vector workloads, >1 for the SpMM of
        GCN (each "element" is a length-F row).
    activity:
        Optional per-iteration active fraction of the vector (frontier
        occupancy for BFS-like workloads); missing entries default 1.0.
    extra_ops_per_iteration:
        Non-pipeline compute per iteration (e.g. GCN's dense MM,
        GMRES's orthogonalization dots).
    extra_dram_bytes_per_iteration:
        Non-matrix, non-vector traffic (e.g. GCN weight matrices).
    """

    name: str
    semiring_name: str
    has_oei: bool
    n_iterations: int
    path_ewise_ops: int = 0
    side_ewise_ops: int = 0
    aux_streams: int = 0
    writeback_streams: int = 1
    feature_dim: int = 1
    activity: Tuple[float, ...] = ()
    extra_ops_per_iteration: float = 0.0
    extra_dram_bytes_per_iteration: float = 0.0

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ConfigError(f"n_iterations must be >= 1, got {self.n_iterations}")
        if self.feature_dim < 1:
            raise ConfigError(f"feature_dim must be >= 1, got {self.feature_dim}")
        for a in self.activity:
            if not 0.0 <= a <= 1.0:
                raise ConfigError(f"activity fractions must be in [0, 1], got {a}")

    @property
    def total_ewise_ops(self) -> int:
        return self.path_ewise_ops + self.side_ewise_ops

    def activity_at(self, iteration: int) -> float:
        """Active vector fraction for one iteration (default 1.0)."""
        if 0 <= iteration < len(self.activity):
            return self.activity[iteration]
        return 1.0

    @classmethod
    def from_program(
        cls,
        program: OEIProgram,
        n_iterations: int,
        activity: Tuple[float, ...] = (),
        feature_dim: int = 1,
        writeback_streams: int = 1,
        extra_ops_per_iteration: float = 0.0,
        extra_dram_bytes_per_iteration: float = 0.0,
    ) -> "WorkloadProfile":
        """Derive the static fields from a compiled OEI program."""
        return cls(
            name=program.name,
            semiring_name=program.semiring_name,
            has_oei=program.has_oei,
            n_iterations=n_iterations,
            path_ewise_ops=program.n_path_ops,
            side_ewise_ops=program.side_ewise_ops,
            aux_streams=len(program.aux_vectors),
            writeback_streams=writeback_streams,
            feature_dim=feature_dim,
            activity=tuple(activity),
            extra_ops_per_iteration=extra_ops_per_iteration,
            extra_dram_bytes_per_iteration=extra_dram_bytes_per_iteration,
        )
