"""Sub-tensor dependency classification (Section III-A, Fig 3).

An operation exhibits *sub-tensor dependency* when producing element
``i`` of its output requires only element ``i`` of each vector input —
the property that lets the schedule perform partial computation and
shorten the reuse distance between consecutive ``vxm`` operations.
"""

from __future__ import annotations

from enum import Enum

from repro.dataflow.graph import OpKind, OpNode


class DependencyClass(Enum):
    """How an op's output elements depend on its input elements."""

    #: Element i of the output needs only element i of vector inputs.
    ELEMENTWISE = "elementwise"
    #: The output (a scalar) needs every input element (fold/dot).
    REDUCTION = "reduction"
    #: A contraction against the sparse matrix: under the OS dataflow an
    #: output element needs the whole input vector; under IS an input
    #: element touches many output elements.
    CONTRACTION = "contraction"


_CLASS_BY_KIND = {
    OpKind.EWISE: DependencyClass.ELEMENTWISE,
    OpKind.APPLY: DependencyClass.ELEMENTWISE,
    OpKind.NOOP: DependencyClass.ELEMENTWISE,
    OpKind.REDUCE: DependencyClass.REDUCTION,
    OpKind.DOT: DependencyClass.REDUCTION,
    OpKind.VXM: DependencyClass.CONTRACTION,
    OpKind.MXV: DependencyClass.CONTRACTION,
    OpKind.MXM: DependencyClass.CONTRACTION,
}


def classify_op(op: OpNode) -> DependencyClass:
    """Classify one op; raises on an unknown kind so new kinds must be
    classified deliberately."""
    try:
        return _CLASS_BY_KIND[op.kind]
    except KeyError:  # pragma: no cover - defensive
        raise ValueError(f"unclassified op kind {op.kind!r}")


def is_subtensor(op: OpNode) -> bool:
    """True when the op preserves sub-tensor (element-level) dependency."""
    return classify_op(op) is DependencyClass.ELEMENTWISE
