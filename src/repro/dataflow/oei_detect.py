"""OEI subgraph detection (Section III-A).

Cross-iteration reuse is legal when there is a path from the output
vector of one contraction, through *sub-tensor-dependency-only*
operations (and possibly across the loop-carried boundary), to the
input vector of a contraction against the *same constant matrix*. The
three shapes the paper discusses all reduce to this search:

- PageRank: ``vxm -> e-wise 1 -> e-wise 0 -> (carry) -> vxm``,
- KNN: ``vxm -> no-op -> vxm`` within one iteration, circularly,
- GCN: ``SpMM -> MM -> ReLU -> (next layer) -> SpMM``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dataflow.dependency import is_subtensor
from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind


@dataclass(frozen=True)
class OEIPath:
    """A legal OEI fusion: ``src`` feeds ``dst`` through ``ewise_ops``.

    ``iteration_distance`` counts loop-boundary crossings along the
    path: 1 for classic cross-iteration reuse (PageRank), 0 when both
    contractions sit in the same iteration (KNN's circular pair
    contributes one 0-distance path and one 1-distance path).
    """

    src: OpNode
    dst: OpNode
    matrix_name: str
    ewise_ops: Tuple[OpNode, ...]
    iteration_distance: int

    @property
    def n_ewise_ops(self) -> int:
        return len(self.ewise_ops)


def _vector_input(op: OpNode) -> Optional[str]:
    """Name of a contraction's vector operand (its IS-side input)."""
    for t in op.inputs:
        if t.kind is TensorKind.VECTOR:
            return t.name
    return None


def _matrix_input(op: OpNode) -> Optional[str]:
    for t in op.inputs:
        if t.kind is TensorKind.MATRIX:
            return t.name
    return None


def _upstream_closure(graph: DataflowGraph, tensor: str) -> set:
    """All tensor names ``tensor`` transitively depends on within one
    iteration (no loop-boundary crossing)."""
    seen = set()
    stack = [tensor]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        producer = graph.producer_of(name)
        if producer is not None:
            stack.extend(t.name for t in producer.inputs)
    return seen


def _scalar_blockers(graph: DataflowGraph) -> dict:
    """For each in-graph-produced scalar: its upstream tensor closure.

    An e-wise op whose ``scalar_operand`` is produced *this iteration*
    from data downstream of the path source is a hidden reduction
    dependency (CG's ``alpha = r.r / p.Ap``) and breaks sub-tensor
    dependency. Scalars not produced in-graph (constants, or values
    lagged to the previous iteration like pipelined GMRES coefficients
    and PageRank's teleport term) do not block.
    """
    out = {}
    for op in graph.ops:
        if op.output.kind is TensorKind.SCALAR:
            out[op.output.name] = _upstream_closure(graph, op.output.name)
    return out


def find_oei_path(graph: DataflowGraph) -> Optional[OEIPath]:
    """Find the shortest legal OEI path in ``graph``, or ``None``.

    BFS from each contraction's output tensor through element-wise ops;
    loop-carried edges may be crossed at most twice (a path that loops
    around more than that fuses nothing new).
    """
    contractions = graph.contractions()
    scalar_upstream = _scalar_blockers(graph)
    if not contractions:
        return None
    targets = {}
    for op in contractions:
        vec = _vector_input(op)
        if vec is not None:
            targets.setdefault(vec, []).append(op)

    best: Optional[OEIPath] = None
    for src in contractions:
        src_matrix = _matrix_input(src)
        if src_matrix is None or not graph.tensors[src_matrix].constant:
            continue
        # state: (tensor name, crossings, ewise ops so far)
        queue = deque([(src.output.name, 0, ())])
        seen = {(src.output.name, 0)}
        while queue:
            tensor, crossings, path_ops = queue.popleft()
            for dst in targets.get(tensor, []):
                if _matrix_input(dst) != src_matrix:
                    continue
                if dst is src and crossings == 0:
                    continue  # a vxm cannot feed itself within one iteration
                candidate = OEIPath(
                    src=src,
                    dst=dst,
                    matrix_name=src_matrix,
                    ewise_ops=path_ops,
                    iteration_distance=crossings,
                )
                if best is None or candidate.n_ewise_ops < best.n_ewise_ops:
                    best = candidate
            # Walk forward through element-wise consumers.
            for consumer in graph.consumers_of(tensor):
                if not is_subtensor(consumer):
                    continue
                blocker = scalar_upstream.get(consumer.scalar_operand)
                if blocker is not None and src.output.name in blocker:
                    # The op's runtime scalar reduces this iteration's
                    # own contraction output — not sub-tensor dependent.
                    continue
                state = (consumer.output.name, crossings)
                if state not in seen:
                    seen.add(state)
                    queue.append(
                        (consumer.output.name, crossings, path_ops + (consumer,))
                    )
            # Cross the iteration boundary.
            carried = graph.loop_carried.get(tensor)
            if carried is not None and crossings < 2:
                state = (carried, crossings + 1)
                if state not in seen:
                    seen.add(state)
                    queue.append((carried, crossings + 1, path_ops))
    return best
