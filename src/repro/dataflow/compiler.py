"""Offline compilation of a dataflow graph into an OEI program.

Mirrors Section IV-F: dependence analysis separates the sub-tensor
dependence group (the OEI path) from all other operation groups,
consecutive e-wise operations merge into a fixed vector instruction
stream, and the semiring opcode is extracted for the OS/IS cores. All
of it happens statically — no runtime code generation.

Before lowering, :func:`compile_program` runs the static verifier
(:mod:`repro.analysis.passes`) over the graph. ``verify="error"`` (the
default) raises a :class:`~repro.errors.CompileError` carrying the
structured diagnostics; ``"warn"`` emits Python warnings instead;
``"off"`` reproduces the pre-verifier behavior exactly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.absint import StaticOEIDecision

from repro.analysis.diagnostics import DiagnosticWarning
from repro.dataflow.fusion import FusedGroup, fuse_ewise
from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind
from repro.dataflow.oei_detect import OEIPath, find_oei_path
from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind
from repro.errors import CompileError, ConfigError, Diagnostic
from repro.semiring.binaryops import BINARY_OPS
from repro.semiring.unaryops import UNARY_OPS

#: Valid ``verify`` modes of :func:`compile_program`.
VERIFY_MODES = ("error", "warn", "off")


@dataclass(frozen=True)
class DataflowAnalysis:
    """What the dependence analysis learned about a loop body.

    ``static_oei`` carries the abstract interpreter's independent
    fusibility verdict (:mod:`repro.analysis.absint`); it agrees with
    ``oei_path`` on every verified graph — a disagreement is an SP701
    error the verifier raises before lowering.
    """

    graph: DataflowGraph
    fused_groups: tuple
    oei_path: Optional[OEIPath]
    semiring_name: str
    static_oei: Optional["StaticOEIDecision"] = None

    @property
    def has_oei(self) -> bool:
        return self.oei_path is not None

    @property
    def n_fused_groups(self) -> int:
        return len(self.fused_groups)

    @property
    def total_ewise_ops(self) -> int:
        return sum(g.n_ops for g in self.fused_groups)


def _contraction_semiring(graph: DataflowGraph) -> str:
    """All contractions in a loop body must share one semiring — the
    cores are configured once before execution (Section IV-C3)."""
    names = {op.op_name for op in graph.contractions()}
    if not names:
        raise CompileError(
            f"graph {graph.name!r} has no contraction to accelerate",
            diagnostics=[Diagnostic.error(
                "SP202",
                f"graph {graph.name!r} has no contraction to accelerate",
                location=f"graph {graph.name}",
            )],
        )
    if len(names) > 1:
        raise CompileError(
            f"graph {graph.name!r} mixes semirings {sorted(names)}; "
            "Sparsepipe preloads a single opcode per kernel launch",
            diagnostics=[Diagnostic.error(
                "SP201",
                f"graph {graph.name!r} mixes semirings {sorted(names)}",
                location=f"graph {graph.name}",
            )],
        )
    return names.pop()


def analyze(graph: DataflowGraph) -> DataflowAnalysis:
    """Dependence analysis: fuse e-wise groups and find the OEI path,
    plus the abstract interpreter's independent fusibility decision."""
    from repro.analysis.absint import static_oei_decision

    return DataflowAnalysis(
        graph=graph,
        fused_groups=tuple(fuse_ewise(graph)),
        oei_path=find_oei_path(graph),
        semiring_name=_contraction_semiring(graph),
        static_oei=static_oei_decision(graph),
    )


def _validate_op_name(op: OpNode, arity: int) -> None:
    table = UNARY_OPS if arity == 1 else BINARY_OPS
    if op.op_name not in table:
        kind = "unary" if arity == 1 else "binary"
        raise CompileError(
            f"op {op.name!r}: {op.op_name!r} is not a known {kind} operator",
            diagnostics=[Diagnostic.error(
                "SP103",
                f"{op.op_name!r} is not a known {kind} operator",
                location=f"op {op.name}",
            )],
        )


def _run_verifier(graph: DataflowGraph, verify: str) -> None:
    """Run the static verifier pipeline in the requested mode."""
    from repro.analysis.passes import verify_graph

    report = verify_graph(graph)
    if verify == "error":
        report.raise_if_errors(
            CompileError, header=f"graph {graph.name!r} failed verification"
        )
    else:
        for diag in report:
            warnings.warn(str(diag), DiagnosticWarning, stacklevel=3)


def compile_program(graph: DataflowGraph, verify: str = "error") -> OEIProgram:
    """Lower a loop body to an :class:`OEIProgram`.

    The e-wise ops on the OEI path become the E-Wise core's instruction
    stream; every other e-wise op is counted as side work for the timing
    model. Graphs without an OEI path (cg, bgs) compile to a program
    with ``has_oei=False`` that still benefits from producer-consumer
    fusion.

    ``verify`` selects how the static verifier gates compilation:
    ``"error"`` (default) raises on error-severity diagnostics,
    ``"warn"`` reports every diagnostic as a :class:`DiagnosticWarning`,
    and ``"off"`` skips verification entirely (the pre-verifier
    behavior, bit-identical).
    """
    if verify not in VERIFY_MODES:
        raise ConfigError(
            f"verify={verify!r} is not one of {VERIFY_MODES}"
        )
    if verify != "off":
        _run_verifier(graph, verify)
    analysis = analyze(graph)
    path = analysis.oei_path
    total_ops = analysis.total_ewise_ops

    if path is None:
        return OEIProgram(
            name=graph.name,
            semiring_name=analysis.semiring_name,
            has_oei=False,
            side_ewise_ops=total_ops,
        )

    y_name = path.src.output.name
    registers: Dict[str, int] = {}
    instructions: List[EWiseInstr] = []
    aux: List[str] = []
    scalars: List[str] = []

    def operand_for(tensor_name: str, kind: TensorKind) -> Operand:
        if tensor_name == y_name:
            return Operand(OperandKind.Y)
        if tensor_name in registers:
            return Operand(OperandKind.REG, registers[tensor_name])
        if kind is TensorKind.SCALAR:
            if tensor_name not in scalars:
                scalars.append(tensor_name)
            return Operand(OperandKind.SCALAR, tensor_name)
        if tensor_name not in aux:
            aux.append(tensor_name)
        return Operand(OperandKind.AUX, tensor_name)

    for op in graph.topo_order(path.ewise_ops):
        srcs = [operand_for(t.name, t.kind) for t in op.inputs]
        if op.scalar_operand is not None:
            if op.scalar_operand not in scalars:
                scalars.append(op.scalar_operand)
            srcs.append(Operand(OperandKind.SCALAR, op.scalar_operand))
        if op.immediate is not None:
            srcs.append(Operand(OperandKind.CONST, float(op.immediate)))
        _validate_op_name(op, len(srcs))
        dst = len(registers)
        registers[op.output.name] = dst
        instructions.append(EWiseInstr(op.op_name, dst, tuple(srcs)))

    # The tensor entering the destination contraction: walk the carry
    # edge back if the path crosses the iteration boundary.
    dst_vec = next(
        t.name for t in path.dst.inputs if t.kind is TensorKind.VECTOR
    )
    produced = {v: k for k, v in graph.loop_carried.items()}
    final_name = produced.get(dst_vec, dst_vec)
    if final_name == y_name:
        result_reg = None  # no-op path (KNN)
    elif final_name in registers:
        result_reg = registers[final_name]
    else:
        raise CompileError(
            f"graph {graph.name!r}: OEI path does not produce the "
            f"destination vector {final_name!r}",
            diagnostics=[Diagnostic.error(
                "SP210",
                f"OEI path does not produce the destination vector "
                f"{final_name!r}",
                location=f"graph {graph.name}",
            )],
        )

    return OEIProgram(
        name=graph.name,
        semiring_name=analysis.semiring_name,
        instructions=tuple(instructions),
        result_reg=result_reg,
        aux_vectors=tuple(aux),
        scalar_names=tuple(scalars),
        n_registers=len(registers),
        has_oei=True,
        iteration_distance=path.iteration_distance,
        side_ewise_ops=total_ops - len(path.ewise_ops),
    )
