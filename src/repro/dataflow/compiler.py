"""Offline compilation of a dataflow graph into an OEI program.

Mirrors Section IV-F: dependence analysis separates the sub-tensor
dependence group (the OEI path) from all other operation groups,
consecutive e-wise operations merge into a fixed vector instruction
stream, and the semiring opcode is extracted for the OS/IS cores. All
of it happens statically — no runtime code generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dataflow.fusion import FusedGroup, fuse_ewise
from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind
from repro.dataflow.oei_detect import OEIPath, find_oei_path
from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind
from repro.errors import CompileError
from repro.semiring.binaryops import BINARY_OPS
from repro.semiring.unaryops import UNARY_OPS


@dataclass(frozen=True)
class DataflowAnalysis:
    """What the dependence analysis learned about a loop body."""

    graph: DataflowGraph
    fused_groups: tuple
    oei_path: Optional[OEIPath]
    semiring_name: str

    @property
    def has_oei(self) -> bool:
        return self.oei_path is not None

    @property
    def n_fused_groups(self) -> int:
        return len(self.fused_groups)

    @property
    def total_ewise_ops(self) -> int:
        return sum(g.n_ops for g in self.fused_groups)


def _contraction_semiring(graph: DataflowGraph) -> str:
    """All contractions in a loop body must share one semiring — the
    cores are configured once before execution (Section IV-C3)."""
    names = {op.op_name for op in graph.contractions()}
    if not names:
        raise CompileError(f"graph {graph.name!r} has no contraction to accelerate")
    if len(names) > 1:
        raise CompileError(
            f"graph {graph.name!r} mixes semirings {sorted(names)}; "
            "Sparsepipe preloads a single opcode per kernel launch"
        )
    return names.pop()


def analyze(graph: DataflowGraph) -> DataflowAnalysis:
    """Dependence analysis: fuse e-wise groups and find the OEI path."""
    return DataflowAnalysis(
        graph=graph,
        fused_groups=tuple(fuse_ewise(graph)),
        oei_path=find_oei_path(graph),
        semiring_name=_contraction_semiring(graph),
    )


def _validate_op_name(op: OpNode, arity: int) -> None:
    table = UNARY_OPS if arity == 1 else BINARY_OPS
    if op.op_name not in table:
        raise CompileError(
            f"op {op.name!r}: {op.op_name!r} is not a known "
            f"{'unary' if arity == 1 else 'binary'} operator"
        )


def compile_program(graph: DataflowGraph) -> OEIProgram:
    """Lower a loop body to an :class:`OEIProgram`.

    The e-wise ops on the OEI path become the E-Wise core's instruction
    stream; every other e-wise op is counted as side work for the timing
    model. Graphs without an OEI path (cg, bgs) compile to a program
    with ``has_oei=False`` that still benefits from producer-consumer
    fusion.
    """
    analysis = analyze(graph)
    path = analysis.oei_path
    total_ops = analysis.total_ewise_ops

    if path is None:
        return OEIProgram(
            name=graph.name,
            semiring_name=analysis.semiring_name,
            has_oei=False,
            side_ewise_ops=total_ops,
        )

    y_name = path.src.output.name
    registers: Dict[str, int] = {}
    instructions: List[EWiseInstr] = []
    aux: List[str] = []
    scalars: List[str] = []

    def operand_for(tensor_name: str, kind: TensorKind) -> Operand:
        if tensor_name == y_name:
            return Operand(OperandKind.Y)
        if tensor_name in registers:
            return Operand(OperandKind.REG, registers[tensor_name])
        if kind is TensorKind.SCALAR:
            if tensor_name not in scalars:
                scalars.append(tensor_name)
            return Operand(OperandKind.SCALAR, tensor_name)
        if tensor_name not in aux:
            aux.append(tensor_name)
        return Operand(OperandKind.AUX, tensor_name)

    for op in graph.topo_order(path.ewise_ops):
        srcs = [operand_for(t.name, t.kind) for t in op.inputs]
        if op.scalar_operand is not None:
            if op.scalar_operand not in scalars:
                scalars.append(op.scalar_operand)
            srcs.append(Operand(OperandKind.SCALAR, op.scalar_operand))
        if op.immediate is not None:
            srcs.append(Operand(OperandKind.CONST, float(op.immediate)))
        _validate_op_name(op, len(srcs))
        dst = len(registers)
        registers[op.output.name] = dst
        instructions.append(EWiseInstr(op.op_name, dst, tuple(srcs)))

    # The tensor entering the destination contraction: walk the carry
    # edge back if the path crosses the iteration boundary.
    dst_vec = next(
        t.name for t in path.dst.inputs if t.kind is TensorKind.VECTOR
    )
    produced = {v: k for k, v in graph.loop_carried.items()}
    final_name = produced.get(dst_vec, dst_vec)
    if final_name == y_name:
        result_reg = None  # no-op path (KNN)
    elif final_name in registers:
        result_reg = registers[final_name]
    else:
        raise CompileError(
            f"graph {graph.name!r}: OEI path does not produce the "
            f"destination vector {final_name!r}"
        )

    return OEIProgram(
        name=graph.name,
        semiring_name=analysis.semiring_name,
        instructions=tuple(instructions),
        result_reg=result_reg,
        aux_vectors=tuple(aux),
        scalar_names=tuple(scalars),
        n_registers=len(registers),
        has_oei=True,
        iteration_distance=path.iteration_distance,
        side_ewise_ops=total_ops - len(path.ewise_ops),
    )
