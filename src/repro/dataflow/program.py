"""Compiled OEI program representation (Section IV-F).

An :class:`OEIProgram` is what the offline compiler hands the hardware:
the semiring opcode preloaded into the OS and IS cores, plus a fixed
vector instruction stream for the E-Wise core that transforms one OS
output element (and aligned auxiliary vector elements) into the next
contraction's input element. The functional executor interprets the
same stream, so the software and timing models cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompileError
from repro.semiring.binaryops import BINARY_OPS
from repro.semiring.semirings import Semiring, semiring_by_name
from repro.semiring.unaryops import UNARY_OPS


class OperandKind(Enum):
    """Where an e-wise instruction operand comes from."""

    Y = "y"            #: the OS-stage output element for this index
    AUX = "aux"        #: element of a named auxiliary vector, same index
    SCALAR = "scalar"  #: a named runtime scalar (updated between pairs)
    CONST = "const"    #: an immediate constant
    REG = "reg"        #: an earlier instruction's result


@dataclass(frozen=True)
class Operand:
    kind: OperandKind
    ref: object = None  # name (AUX/SCALAR), value (CONST), or reg index (REG)

    def __repr__(self) -> str:
        if self.kind is OperandKind.Y:
            return "y"
        return f"{self.kind.value}:{self.ref}"


@dataclass(frozen=True)
class EWiseInstr:
    """One SIMD e-wise instruction: ``reg[dst] = op(*srcs)``."""

    op_name: str
    dst: int
    srcs: Tuple[Operand, ...]

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.srcs))
        return f"r{self.dst} = {self.op_name}({args})"


@dataclass
class OEIProgram:
    """A compiled loop body ready for the Sparsepipe pipeline.

    Attributes
    ----------
    semiring_name:
        Opcode for the OS and IS cores.
    instructions:
        The E-Wise core's fixed stream; evaluated per element slice.
    result_reg:
        Register holding the next contraction's input element; ``None``
        means the OS output feeds the IS stage unchanged (KNN's no-op).
    aux_vectors:
        Names of auxiliary vectors streamed alongside the OS output.
    scalar_names:
        Runtime scalars the stream reads (updated at pair boundaries).
    n_registers:
        Register-file size required.
    has_oei:
        Whether an OEI path exists (cg/bgs compile with ``False`` and
        only get producer-consumer fusion).
    side_ewise_ops / total_ewise_ops:
        Op counts off and on the fused path; the timing model charges
        the E-Wise core for all of them.
    """

    name: str
    semiring_name: str
    instructions: Tuple[EWiseInstr, ...] = ()
    result_reg: Optional[int] = None
    aux_vectors: Tuple[str, ...] = ()
    scalar_names: Tuple[str, ...] = ()
    n_registers: int = 0
    has_oei: bool = True
    iteration_distance: int = 1
    side_ewise_ops: int = 0
    _register_cache: dict = field(default_factory=dict, repr=False)

    @property
    def semiring(self) -> Semiring:
        return semiring_by_name(self.semiring_name)

    @property
    def n_path_ops(self) -> int:
        return len(self.instructions)

    @property
    def total_ewise_ops(self) -> int:
        return self.n_path_ops + self.side_ewise_ops

    # ------------------------------------------------------------------
    # Interpretation (shared by the functional executor and tests)
    # ------------------------------------------------------------------
    def run_elementwise(
        self,
        y: np.ndarray,
        indices: np.ndarray,
        aux: Mapping[str, np.ndarray],
        scalars: Mapping[str, float],
    ) -> np.ndarray:
        """Evaluate the instruction stream over an element slice.

        ``y`` holds OS output values for positions ``indices``; each AUX
        operand reads its vector at the same positions. Returns the
        next-contraction input elements for those positions.
        """
        y = np.asarray(y, dtype=np.float64)
        regs: Dict[int, np.ndarray] = {}

        def load(operand: Operand) -> np.ndarray:
            if operand.kind is OperandKind.Y:
                return y
            if operand.kind is OperandKind.REG:
                return regs[operand.ref]
            if operand.kind is OperandKind.AUX:
                try:
                    vec = aux[operand.ref]
                except KeyError:
                    raise CompileError(
                        f"program {self.name!r} needs aux vector {operand.ref!r}"
                    ) from None
                return np.asarray(vec)[indices]
            if operand.kind is OperandKind.SCALAR:
                try:
                    return np.full(y.shape, float(scalars[operand.ref]))
                except KeyError:
                    raise CompileError(
                        f"program {self.name!r} needs scalar {operand.ref!r}"
                    ) from None
            if operand.kind is OperandKind.CONST:
                return np.full(y.shape, float(operand.ref))
            raise AssertionError(f"unhandled operand {operand!r}")

        for instr in self.instructions:
            srcs = [load(s) for s in instr.srcs]
            if len(srcs) == 1:
                op = UNARY_OPS.get(instr.op_name)
                if op is None:
                    raise CompileError(f"unknown unary op {instr.op_name!r}")
                regs[instr.dst] = op(srcs[0])
            elif len(srcs) == 2:
                op = BINARY_OPS.get(instr.op_name)
                if op is None:
                    raise CompileError(f"unknown binary op {instr.op_name!r}")
                regs[instr.dst] = op(srcs[0], srcs[1])
            else:
                raise CompileError(
                    f"instruction arity {len(srcs)} unsupported: {instr!r}"
                )
        if self.result_reg is None:
            return y
        return regs[self.result_reg]
