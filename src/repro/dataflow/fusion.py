"""E-wise fusion (Section II-A, Fig 2b).

Consecutive element-wise operations are fused by taking connected
components of the sub-graph induced by e-wise ops and the vector
tensors flowing between them. Each component becomes one
:class:`FusedGroup` executed by the E-Wise core as a single fixed
instruction stream, eliminating the intermediate tensors between member
ops (the producer-consumer reuse of Section I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.dataflow.dependency import is_subtensor
from repro.dataflow.graph import DataflowGraph, OpNode, TensorKind


@dataclass(frozen=True)
class FusedGroup:
    """A maximal connected set of e-wise ops, in topological order.

    ``internal_tensors`` are produced and consumed entirely inside the
    group — after fusion they live in registers, never in memory; their
    count measures the producer-consumer traffic the fusion removed.
    """

    ops: tuple
    internal_tensors: tuple
    external_inputs: tuple
    outputs: tuple

    @property
    def n_ops(self) -> int:
        return len(self.ops)


def fuse_ewise(graph: DataflowGraph) -> List[FusedGroup]:
    """Partition the graph's e-wise ops into maximal fused groups."""
    ewise_ops = [op for op in graph.ops if is_subtensor(op)]
    if not ewise_ops:
        return []

    # Union-find over e-wise ops, joined through shared vector tensors
    # that stay element-wise on both sides.
    parent: Dict[str, str] = {op.name: op.name for op in ewise_ops}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: str, y: str) -> None:
        parent[find(x)] = find(y)

    by_name = {op.name: op for op in ewise_ops}
    for op in ewise_ops:
        producer = {t.name: graph.producer_of(t.name) for t in op.inputs}
        for t in op.inputs:
            p = producer[t.name]
            if p is not None and p.name in by_name and t.kind is TensorKind.VECTOR:
                union(op.name, p.name)

    components: Dict[str, List[OpNode]] = {}
    for op in ewise_ops:
        components.setdefault(find(op.name), []).append(op)

    groups: List[FusedGroup] = []
    for members in components.values():
        ordered = graph.topo_order(members)
        member_names: Set[str] = {op.name for op in ordered}
        produced = {op.output.name for op in ordered}
        consumed_inside: Dict[str, int] = {}
        for op in ordered:
            for t in op.inputs:
                consumed_inside[t.name] = consumed_inside.get(t.name, 0) + 1

        internal = []
        outputs = []
        for name in produced:
            consumers = graph.consumers_of(name)
            escapes = (
                any(c.name not in member_names for c in consumers)
                or name in graph.loop_carried
                or not consumers
            )
            if escapes:
                outputs.append(name)
            else:
                internal.append(name)
        external_inputs = sorted(
            name for name in consumed_inside if name not in produced
        )
        groups.append(
            FusedGroup(
                ops=tuple(ordered),
                internal_tensors=tuple(sorted(internal)),
                external_inputs=tuple(external_inputs),
                outputs=tuple(sorted(outputs)),
            )
        )
    # Deterministic ordering: by first op's position in the graph.
    position = {op.name: i for i, op in enumerate(graph.ops)}
    groups.sort(key=lambda g: position[g.ops[0].name])
    return groups
