"""Sparse tensor dataflow graphs and the offline OEI compiler.

This package realizes Sections II-A, III-A and IV-F of the paper:

- :mod:`repro.dataflow.graph` — the tensor dataflow graph IR a
  GraphBLAS-style program lowers to (Fig 2),
- :mod:`repro.dataflow.fusion` — e-wise fusion by connected components,
- :mod:`repro.dataflow.dependency` — sub-tensor dependency
  classification (Fig 3),
- :mod:`repro.dataflow.oei_detect` — detection of the
  "sub-tensor-dependency-only region" between two ``vxm`` operations
  that makes cross-iteration reuse legal,
- :mod:`repro.dataflow.compiler` — static compilation into an
  :class:`~repro.dataflow.program.OEIProgram`: semiring opcodes for the
  OS/IS cores plus a fixed vector-instruction stream for the E-Wise
  core.
"""

from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind, TensorNode
from repro.dataflow.fusion import FusedGroup, fuse_ewise
from repro.dataflow.dependency import DependencyClass, classify_op
from repro.dataflow.oei_detect import OEIPath, find_oei_path
from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind
from repro.dataflow.compiler import DataflowAnalysis, analyze, compile_program

__all__ = [
    "DataflowGraph",
    "TensorNode",
    "TensorKind",
    "OpNode",
    "OpKind",
    "FusedGroup",
    "fuse_ewise",
    "DependencyClass",
    "classify_op",
    "OEIPath",
    "find_oei_path",
    "OEIProgram",
    "EWiseInstr",
    "Operand",
    "OperandKind",
    "DataflowAnalysis",
    "analyze",
    "compile_program",
]
