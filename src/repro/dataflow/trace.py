"""Tracing frontend: record a GraphBLAS-mini loop body into a
:class:`DataflowGraph` automatically.

The paper's conclusion asks: *"How can we leverage the modern compiler
framework for tensor applications to automatically find applications
with cross-iteration reuse and accelerate them with the OEI
dataflow?"* This module is that path for GraphBLAS-mini: run one loop
iteration under a :class:`Tracer`, and every operation both executes
(the values are real) and appends the corresponding IR node. The
recorded graph feeds :func:`repro.dataflow.compiler.compile_program`
unchanged, so OEI legality is decided from the trace, not from a
hand-written graph.

Example
-------
>>> tracer = Tracer("pagerank")
>>> pr_t = tracer.source("pr", pr_vector)
>>> link_t = tracer.constant_matrix("L", link)
>>> y = tracer.vxm(pr_t, link_t, MUL_ADD)
>>> scaled = tracer.apply_bind(y, TIMES, 0.85)
>>> new = tracer.apply_scalar(scaled, PLUS, "teleport", teleport_value)
>>> tracer.carry(new, pr_t)
>>> program = compile_program(tracer.graph)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind, TensorNode
from repro.errors import CompileError
from repro.graphblas import ops as gb_ops
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.semiring.binaryops import BinaryOp
from repro.semiring.monoids import Monoid
from repro.semiring.semirings import Semiring
from repro.semiring.unaryops import UnaryOp


@dataclass(frozen=True)
class TracedVector:
    """A live vector value tagged with its IR tensor node."""

    node: TensorNode
    value: Vector


@dataclass(frozen=True)
class TracedMatrix:
    """A matrix operand tagged with its IR tensor node."""

    node: TensorNode
    value: Matrix


@dataclass(frozen=True)
class TracedScalar:
    """A scalar value produced by a traced reduction."""

    node: TensorNode
    value: float


class Tracer:
    """Records one loop-body's operations while executing them."""

    def __init__(self, name: str) -> None:
        self.graph = DataflowGraph(name)
        self._op_counter = itertools.count()
        self._tensor_counter = itertools.count()

    # ------------------------------------------------------------------
    # Operand introduction
    # ------------------------------------------------------------------
    def source(self, name: str, value: Vector) -> TracedVector:
        """A loop-carried input vector (e.g. the PageRank vector)."""
        return TracedVector(self.graph.vector(name), value)

    def constant_matrix(self, name: str, value: Matrix) -> TracedMatrix:
        """The shared sparse matrix, constant across iterations — the
        cross-iteration reuse target."""
        return TracedMatrix(self.graph.matrix(name, constant=True), value)

    def varying_matrix(self, name: str, value: Matrix) -> TracedMatrix:
        """A matrix rewritten between iterations (no reuse possible)."""
        return TracedMatrix(self.graph.matrix(name, constant=False), value)

    def _fresh(self, prefix: str) -> str:
        return f"{prefix}_{next(self._tensor_counter)}"

    def _op_name(self, kind: str) -> str:
        return f"{kind}_{next(self._op_counter)}"

    # ------------------------------------------------------------------
    # Traced operations (each executes AND records)
    # ------------------------------------------------------------------
    def vxm(
        self, v: TracedVector, a: TracedMatrix, semiring: Semiring
    ) -> TracedVector:
        out = self.graph.vector(self._fresh("v"))
        self.graph.vxm(self._op_name("vxm"), v.node, a.node, out, semiring.name)
        return TracedVector(out, gb_ops.vxm(v.value, a.value, semiring))

    def mxv(
        self, a: TracedMatrix, v: TracedVector, semiring: Semiring
    ) -> TracedVector:
        out = self.graph.vector(self._fresh("v"))
        self.graph.add_op(
            OpNode(self._op_name("mxv"), OpKind.MXV, (v.node, a.node), out,
                   op_name=semiring.name)
        )
        return TracedVector(out, gb_ops.mxv(a.value, v.value, semiring))

    def ewise(
        self, op: BinaryOp, u: TracedVector, v: TracedVector
    ) -> TracedVector:
        out = self.graph.vector(self._fresh("v"))
        self.graph.ewise(self._op_name("ewise"), op.name, [u.node, v.node], out)
        return TracedVector(out, gb_ops.ewise_add(u.value, v.value, op))

    def ewise_mult(
        self, op: BinaryOp, u: TracedVector, v: TracedVector
    ) -> TracedVector:
        out = self.graph.vector(self._fresh("v"))
        self.graph.ewise(self._op_name("ewise"), op.name, [u.node, v.node], out)
        return TracedVector(out, gb_ops.ewise_mult(u.value, v.value, op))

    def apply(self, op: UnaryOp, u: TracedVector) -> TracedVector:
        out = self.graph.vector(self._fresh("v"))
        self.graph.ewise(self._op_name("apply"), op.name, [u.node], out)
        return TracedVector(out, gb_ops.apply(u.value, op))

    def apply_bind(
        self, u: TracedVector, op: BinaryOp, immediate: float
    ) -> TracedVector:
        """Binary op with a compile-time constant operand."""
        out = self.graph.vector(self._fresh("v"))
        self.graph.ewise(
            self._op_name("bind"), op.name, [u.node], out, immediate=float(immediate)
        )
        return TracedVector(out, gb_ops.apply_bind(u.value, op, immediate))

    def apply_scalar(
        self, u: TracedVector, op: BinaryOp, scalar_name: str, value: float
    ) -> TracedVector:
        """Binary op with a *runtime* scalar operand.

        The scalar is identified by name: if a traced reduction of this
        iteration produced a scalar with the same name, the compiler
        will see the dependency and reject OEI paths through this op
        (the CG ``alpha`` case); a fresh name marks a lagged or
        external scalar (the PageRank ``teleport`` case).
        """
        self.graph.scalar(scalar_name)
        out = self.graph.vector(self._fresh("v"))
        self.graph.ewise(
            self._op_name("bind"), op.name, [u.node], out, scalar_operand=scalar_name
        )
        return TracedVector(out, gb_ops.apply_bind(u.value, op, value))

    def reduce(
        self, u: TracedVector, monoid: Monoid, scalar_name: Optional[str] = None
    ) -> TracedScalar:
        name = scalar_name or self._fresh("s")
        node = self.graph.scalar(name)
        self.graph.reduce(self._op_name("reduce"), u.node, node, monoid.name)
        return TracedScalar(node, gb_ops.reduce(u.value, monoid))

    def dot(
        self,
        u: TracedVector,
        v: TracedVector,
        semiring: Semiring,
        scalar_name: Optional[str] = None,
    ) -> TracedScalar:
        name = scalar_name or self._fresh("s")
        node = self.graph.scalar(name)
        self.graph.dot(self._op_name("dot"), u.node, v.node, node, semiring.name)
        return TracedScalar(node, gb_ops.vector_dot(u.value, v.value, semiring))

    # ------------------------------------------------------------------
    # Loop wiring
    # ------------------------------------------------------------------
    def carry(self, produced: TracedVector, consumed_next: TracedVector) -> None:
        """Declare that ``produced`` of this iteration becomes
        ``consumed_next`` of the following iteration."""
        if produced.node.name == consumed_next.node.name:
            raise CompileError(
                f"cannot carry {produced.node.name!r} into itself"
            )
        self.graph.carry(produced.node, consumed_next.node)
