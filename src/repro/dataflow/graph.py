"""Tensor dataflow graph IR.

A :class:`DataflowGraph` describes one *loop-iteration body* of an STA
application as tensors (data nodes) and operations (compute nodes),
exactly the abstraction of Fig 2. Loop structure is captured by
``loop_carried``: a mapping from an output tensor of this iteration to
the input tensor it becomes in the next iteration (e.g. PageRank's
``pr_nextnext -> pr_next``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.errors import CompileError, Diagnostic


class TensorKind(Enum):
    """Rank of a data node."""

    MATRIX = "matrix"
    VECTOR = "vector"
    SCALAR = "scalar"


class OpKind(Enum):
    """Operation classes the IR distinguishes.

    ``VXM``/``MXV``/``MXM`` are the leading contractions; ``EWISE``,
    ``APPLY``, and ``NOOP`` are element-wise; ``REDUCE`` and ``DOT``
    collapse vectors to scalars (``fold``/``dot`` in Fig 1).
    """

    VXM = "vxm"
    MXV = "mxv"
    MXM = "mxm"
    EWISE = "ewise"
    APPLY = "apply"
    REDUCE = "reduce"
    DOT = "dot"
    NOOP = "noop"


@dataclass(frozen=True)
class TensorNode:
    """A data node. ``constant`` marks tensors reused unchanged across
    iterations — the shared sparse matrix of Section II-A is the
    canonical example and the target of cross-iteration reuse."""

    name: str
    kind: TensorKind
    constant: bool = False

    def __repr__(self) -> str:
        flag = ", constant" if self.constant else ""
        return f"TensorNode({self.name}: {self.kind.value}{flag})"


@dataclass(frozen=True)
class OpNode:
    """A compute node.

    ``op_name`` holds the semiring name for contractions and the
    binary/unary operator name for e-wise nodes; ``scalar_operand``
    optionally binds one e-wise input to a named runtime scalar or an
    immediate constant.
    """

    name: str
    kind: OpKind
    inputs: Sequence[TensorNode]
    output: TensorNode
    op_name: str = ""
    scalar_operand: Optional[str] = None
    immediate: Optional[float] = None
    #: Optional dataflow pin for contractions: ``"os"`` (column/CSC
    #: order), ``"is"`` (row/CSR order), or ``None`` for either. The
    #: verifier checks OEI pairs for OS->IS compatibility (SP205).
    dataflow: Optional[str] = None

    def __repr__(self) -> str:
        ins = ", ".join(t.name for t in self.inputs)
        return f"OpNode({self.name}: {self.kind.value}({ins}) -> {self.output.name})"


@dataclass
class DataflowGraph:
    """One loop-iteration body plus its loop-carried wiring."""

    name: str
    tensors: Dict[str, TensorNode] = field(default_factory=dict)
    ops: List[OpNode] = field(default_factory=list)
    #: output tensor name -> input tensor name it feeds next iteration
    loop_carried: Dict[str, str] = field(default_factory=dict)
    #: matrix tensor name -> storage sides available on chip (subset of
    #: {"csc", "csr"}); matrices without an entry are assumed dual. The
    #: verifier requires both sides on an OEI pair's shared matrix
    #: (SP204).
    matrix_formats: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction API (used by the workload definitions)
    # ------------------------------------------------------------------
    def tensor(
        self, name: str, kind: TensorKind, constant: bool = False
    ) -> TensorNode:
        """Declare (or fetch) a tensor node."""
        if name in self.tensors:
            existing = self.tensors[name]
            if existing.kind != kind or existing.constant != constant:
                raise CompileError(
                    f"tensor {name!r} redeclared with different attributes",
                    diagnostics=[Diagnostic.error(
                        "SP112",
                        f"tensor {name!r} redeclared as "
                        f"{kind.value}/constant={constant}, previously "
                        f"{existing.kind.value}/constant={existing.constant}",
                        location=f"graph {self.name} / tensor {name}",
                    )],
                )
            return existing
        node = TensorNode(name, kind, constant)
        self.tensors[name] = node
        return node

    def matrix(
        self, name: str, constant: bool = True,
        formats: Optional[Sequence[str]] = None,
    ) -> TensorNode:
        """Declare a matrix; ``formats`` optionally restricts which
        storage sides (``"csc"``/``"csr"``) the buffer holds for it."""
        node = self.tensor(name, TensorKind.MATRIX, constant)
        if formats is not None:
            self.matrix_formats[name] = frozenset(formats)
        return node

    def vector(self, name: str) -> TensorNode:
        return self.tensor(name, TensorKind.VECTOR)

    def scalar(self, name: str) -> TensorNode:
        return self.tensor(name, TensorKind.SCALAR)

    def add_op(self, op: OpNode) -> OpNode:
        """Append a compute node; tensors must be declared first."""
        for t in list(op.inputs) + [op.output]:
            if t.name not in self.tensors:
                raise CompileError(
                    f"op {op.name!r} references undeclared tensor {t.name!r}",
                    diagnostics=[Diagnostic.error(
                        "SP114",
                        f"op {op.name!r} references undeclared tensor "
                        f"{t.name!r}",
                        location=f"graph {self.name} / op {op.name}",
                    )],
                )
        if any(existing.name == op.name for existing in self.ops):
            raise CompileError(
                f"duplicate op name {op.name!r}",
                diagnostics=[Diagnostic.error(
                    "SP113", f"duplicate op name {op.name!r}",
                    location=f"graph {self.name} / op {op.name}",
                )],
            )
        self.ops.append(op)
        return op

    def vxm(
        self, name: str, vector: TensorNode, matrix: TensorNode,
        output: TensorNode, semiring: str,
        dataflow: Optional[str] = None,
    ) -> OpNode:
        return self.add_op(
            OpNode(name, OpKind.VXM, (vector, matrix), output,
                   op_name=semiring, dataflow=dataflow)
        )

    def ewise(
        self, name: str, op_name: str, inputs: Sequence[TensorNode],
        output: TensorNode, scalar_operand: Optional[str] = None,
        immediate: Optional[float] = None,
    ) -> OpNode:
        kind = OpKind.APPLY if len(inputs) == 1 and scalar_operand is None and immediate is None else OpKind.EWISE
        return self.add_op(
            OpNode(name, kind, tuple(inputs), output, op_name=op_name,
                   scalar_operand=scalar_operand, immediate=immediate)
        )

    def reduce(self, name: str, vector: TensorNode, output: TensorNode,
               monoid: str) -> OpNode:
        return self.add_op(
            OpNode(name, OpKind.REDUCE, (vector,), output, op_name=monoid)
        )

    def dot(self, name: str, u: TensorNode, v: TensorNode,
            output: TensorNode, semiring: str = "mul_add") -> OpNode:
        """Vector-vector dot product (a reduction — blocks OEI paths)."""
        return self.add_op(
            OpNode(name, OpKind.DOT, (u, v), output, op_name=semiring)
        )

    def carry(self, produced: TensorNode, consumed_next: TensorNode) -> None:
        """Wire ``produced`` of iteration *k* to ``consumed_next`` of
        iteration *k+1*."""
        self.loop_carried[produced.name] = consumed_next.name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def producer_of(self, tensor_name: str) -> Optional[OpNode]:
        """The op writing ``tensor_name`` within the iteration body."""
        for op in self.ops:
            if op.output.name == tensor_name:
                return op
        return None

    def consumers_of(self, tensor_name: str) -> List[OpNode]:
        """Ops reading ``tensor_name`` within the iteration body."""
        return [op for op in self.ops if any(t.name == tensor_name for t in op.inputs)]

    def contractions(self) -> List[OpNode]:
        """The leading matrix operations (vxm/mxv/mxm)."""
        return [op for op in self.ops if op.kind in (OpKind.VXM, OpKind.MXV, OpKind.MXM)]

    def ewise_ops(self) -> List[OpNode]:
        """All element-wise compute nodes."""
        return [op for op in self.ops if op.kind in (OpKind.EWISE, OpKind.APPLY, OpKind.NOOP)]

    def topo_order(self, ops: Sequence[OpNode]) -> List[OpNode]:
        """Topologically sort a subset of ops by tensor dependencies."""
        remaining = list(ops)
        produced_by = {op.output.name: op for op in remaining}
        done: set = set()
        order: List[OpNode] = []
        progress = True
        while remaining and progress:
            progress = False
            for op in list(remaining):
                deps = [
                    produced_by[t.name]
                    for t in op.inputs
                    if t.name in produced_by and produced_by[t.name] is not op
                ]
                if all(d.name in done for d in deps):
                    order.append(op)
                    done.add(op.name)
                    remaining.remove(op)
                    progress = True
        if remaining:
            stuck = [op.name for op in remaining]
            raise CompileError(
                f"cycle among ops: {stuck}",
                diagnostics=[Diagnostic.error(
                    "SP107", f"cycle among ops {stuck}",
                    location=f"graph {self.name}",
                )],
            )
        return order
