"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``list``                      — workloads, matrices, architectures
- ``experiment <id> [...]``     — run table1 / fig14..fig23 / all
- ``simulate -w pr -m wi``      — one (workload, matrix) on all archs
- ``analyze <matrix.mtx>``      — Table-I reuse analysis of a file
- ``footprint``                 — Table I over the built-in suite
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments.runner import ARCHITECTURES, ExperimentContext

_EXPERIMENTS = (
    "table1", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
    "fig20", "fig21", "fig22", "fig23",
)


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.matrices import SUITE, suite_names
    from repro.workloads import WORKLOADS, workload_names

    print("workloads (Table III):")
    for name in workload_names():
        w = WORKLOADS[name]
        oei = "cross-iteration" if w.program().has_oei else "producer-consumer"
        print(f"  {name:6} {w.semiring:9} {oei:17} {w.domain}")
    print("\nmatrices (Table I analogs):")
    for name in suite_names():
        spec = SUITE[name]
        print(f"  {name:3} {spec.structure:28} paper {spec.paper_rows} rows / "
              f"{spec.paper_nnz} nnz")
    print(f"\narchitectures: {', '.join(ARCHITECTURES)}")
    print(f"experiments: {', '.join(_EXPERIMENTS)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    ids = list(_EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; available: {_EXPERIMENTS}",
              file=sys.stderr)
        return 2
    context = ExperimentContext()
    for exp_id in ids:
        module = importlib.import_module(f"repro.experiments.{exp_id}")
        if exp_id == "table1":
            module.main()
        else:
            module.main(context)
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table

    context = ExperimentContext()
    rows = []
    for arch in args.arch:
        result = context.simulate(arch, args.workload, args.matrix)
        rows.append(
            (arch, f"{result.seconds * 1e6:.2f}", round(result.cycles),
             f"{result.bandwidth_utilization:.0%}",
             f"{result.total_bytes / 1e6:.2f}")
        )
    print(format_table(
        ["architecture", "time (us)", "cycles", "bw util", "DRAM (MB)"],
        rows,
        title=f"{args.workload} on {args.matrix}",
    ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.formats import read_matrix_market
    from repro.oei import reuse_footprint
    from repro.util import human_bytes

    coo = read_matrix_market(args.path)
    stats = reuse_footprint(coo)
    print(f"{args.path}: {coo.shape}, {coo.nnz} non-zeros")
    print(f"OEI reuse window: max {stats.max_pct:.1f}% "
          f"({human_bytes(stats.max_bytes())}), avg {stats.avg_pct:.1f}%")
    return 0


def _cmd_footprint(_args: argparse.Namespace) -> int:
    from repro.experiments import table1

    table1.main()
    return 0


def _cmd_summary(_args: argparse.Namespace) -> int:
    from repro.experiments import summary

    summary.main(ExperimentContext())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all

    path = export_all(args.path, ExperimentContext())
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sparsepipe reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads / matrices / experiments")

    p_exp = sub.add_parser("experiment", help="run experiment drivers")
    p_exp.add_argument("ids", nargs="+",
                       help=f"experiment ids ({', '.join(_EXPERIMENTS)}, or 'all')")

    p_sim = sub.add_parser("simulate", help="simulate one (workload, matrix)")
    p_sim.add_argument("-w", "--workload", required=True)
    p_sim.add_argument("-m", "--matrix", required=True)
    p_sim.add_argument("-a", "--arch", nargs="+", default=list(ARCHITECTURES))

    p_an = sub.add_parser("analyze", help="Table-I analysis of a MatrixMarket file")
    p_an.add_argument("path")

    sub.add_parser("footprint", help="Table I over the built-in suite")
    sub.add_parser("summary", help="all Section VI headline claims, paper vs measured")

    p_ex = sub.add_parser("export", help="run everything and write results as JSON")
    p_ex.add_argument("path", help="output JSON path")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "simulate": _cmd_simulate,
        "analyze": _cmd_analyze,
        "footprint": _cmd_footprint,
        "summary": _cmd_summary,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
