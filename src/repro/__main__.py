"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``list``                      — workloads, matrices, architectures
- ``experiment <id> [...]``     — run table1 / fig14..fig23 / all
- ``simulate -w pr -m wi``      — one (workload, matrix) on all archs
- ``analyze <matrix.mtx>``      — Table-I reuse analysis of a file
- ``footprint``                 — Table I over the built-in suite
- ``lint [workload ...]``       — static verifier over workload graphs
- ``selfcheck``                 — AST self-lint of the library source
- ``check [workload ...]``      — absint oracle: static traffic/buffer
  bounds and OEI legality cross-checked against the simulator
- ``trace <workload> -o t.json``— export a Chrome/Perfetto trace plus
  run manifest of one simulated run (load in https://ui.perfetto.dev)
- ``sweep A/W/M [...]``         — supervised sweep over explicit
  (arch/workload/matrix) points with per-point status reporting
- ``autotune -w pr -m gy``      — explore sub-tensor widths (Section
  IV-F), optionally fanning the probes out over a scheduler backend
- ``serve``                     — simulation-service daemon: async job
  queue with request coalescing over the shared result store
- ``client <op> [...]``         — talk to a running daemon (submit /
  status / result / cancel / stats / shutdown); see docs/service.md
- ``worker <jobfile>``          — execute one spool-scheduler job file
  (spawned by the ``spool`` backend; docs/scheduling.md)

``lint``/``selfcheck`` take ``--format text|json`` and ``--baseline
FILE`` (a per-code finding budget; exceeding it fails the command even
for warnings, so new findings cannot accumulate silently — CI pins
``diagnostics_baseline.json``). ``--jobs N`` fans sweeps out over N
worker processes; ``--cache DIR`` persists simulation results on disk
so reruns skip straight to the tables; ``--on-error skip|retry`` keeps
a sweep alive through per-point failures (recorded in run manifests —
docs/robustness.md); ``--scheduler inprocess|localpool|spool`` picks
the execution substrate the fan-out runs on (docs/scheduling.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Dict, List

from repro.engine.registry import arch_names, get_arch
from repro.experiments.runner import ExperimentContext

_EXPERIMENTS = (
    "table1", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
    "fig20", "fig21", "fig22", "fig23",
)


def _make_context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        cache_dir=getattr(args, "cache", None),
        cache_max_bytes=getattr(args, "cache_bytes", None),
        max_workers=getattr(args, "jobs", None),
        on_error=getattr(args, "on_error", "raise") or "raise",
        scheduler=getattr(args, "scheduler", None),
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.matrices import SUITE, suite_names
    from repro.workloads import WORKLOADS, workload_names

    print("workloads (Table III):")
    for name in workload_names():
        w = WORKLOADS[name]
        oei = "cross-iteration" if w.program().has_oei else "producer-consumer"
        print(f"  {name:6} {w.semiring:9} {oei:17} {w.domain}")
    print("\nmatrices (Table I analogs):")
    for name in suite_names():
        spec = SUITE[name]
        print(f"  {name:3} {spec.structure:28} paper {spec.paper_rows} rows / "
              f"{spec.paper_nnz} nnz")
    print("\narchitectures:")
    for name in arch_names():
        print(f"  {name:12} {get_arch(name).description}")
    print(f"\nexperiments: {', '.join(_EXPERIMENTS)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    ids = list(_EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; available: {_EXPERIMENTS}",
              file=sys.stderr)
        return 2
    context = _make_context(args)
    for exp_id in ids:
        module = importlib.import_module(f"repro.experiments.{exp_id}")
        module.main(context)
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table

    context = _make_context(args)
    results = context.simulate_many(
        [(arch, args.workload, args.matrix) for arch in args.arch]
    )
    rows = []
    for arch, result in zip(args.arch, results):
        rows.append(
            (arch, f"{result.seconds * 1e6:.2f}", round(result.cycles),
             f"{result.bandwidth_utilization:.0%}",
             f"{result.total_bytes / 1e6:.2f}")
        )
    print(format_table(
        ["architecture", "time (us)", "cycles", "bw util", "DRAM (MB)"],
        rows,
        title=f"{args.workload} on {args.matrix}",
    ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.formats import read_matrix_market
    from repro.oei import reuse_footprint
    from repro.util import human_bytes

    coo = read_matrix_market(args.path, strict=args.strict)
    stats = reuse_footprint(coo)
    print(f"{args.path}: {coo.shape}, {coo.nnz} non-zeros")
    print(f"OEI reuse window: max {stats.max_pct:.1f}% "
          f"({human_bytes(stats.max_bytes())}), avg {stats.avg_pct:.1f}%")
    return 0


def _cmd_footprint(_args: argparse.Namespace) -> int:
    from repro.experiments import table1

    table1.main()
    return 0


def _baseline_exceeded(
    counts: Dict[str, int], baseline_path: str, section: str
) -> int:
    """Compare per-code finding counts against the baseline file's
    ``section``; report and count codes over budget."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        budgets = json.load(fh).get(section, {})
    over = 0
    for code in sorted(counts):
        budget = int(budgets.get(code, 0))
        if counts[code] > budget:
            over += 1
            print(f"baseline exceeded: {code} x{counts[code]} "
                  f"(budget {budget}) — new findings must be fixed or "
                  "the baseline deliberately re-frozen", file=sys.stderr)
    return over


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.workloads.registry import lint_registry

    reports = lint_registry(args.workloads or None)
    n_errors = sum(len(r.errors) for r in reports.values())
    n_warnings = sum(len(r.warnings) for r in reports.values())
    counts = Counter(c for r in reports.values() for c in r.codes())

    if args.format == "json":
        print(json.dumps({
            "workloads": {
                name: [d.as_dict() for d in report]
                for name, report in reports.items()
            },
            "counts": dict(sorted(counts.items())),
            "n_errors": n_errors,
            "n_warnings": n_warnings,
        }, sort_keys=True))
    else:
        for name, report in reports.items():
            if len(report) == 0:
                print(f"{name}: ok")
            else:
                print(f"{name}:")
                for line in report.format().splitlines():
                    print(f"  {line}")
        print(f"\n{len(reports)} workload(s): {n_errors} error(s), "
              f"{n_warnings} warning(s)")
    over = (_baseline_exceeded(counts, args.baseline, "lint")
            if args.baseline else 0)
    return 1 if n_errors or over else 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.analysis.selfcheck import selfcheck

    report = selfcheck()
    counts = Counter(report.codes())
    if args.format == "json":
        print(json.dumps({
            "diagnostics": [d.as_dict() for d in report],
            "counts": dict(sorted(counts.items())),
            "n_errors": len(report.errors),
            "n_warnings": len(report.warnings),
        }, sort_keys=True))
    elif len(report) == 0:
        print("selfcheck: ok")
    else:
        print(report.format())
        print(f"\n{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
    over = (_baseline_exceeded(counts, args.baseline, "selfcheck")
            if args.baseline else 0)
    return 1 if report.errors or over else 0


def _cmd_check(args: argparse.Namespace) -> int:
    """The absint oracle: static bounds + OEI legality vs the
    simulator, per workload."""
    from repro.analysis.bounds import resolve_capacity, static_report
    from repro.arch.config import SparsepipeConfig
    from repro.arch.loaders import LoadPlan
    from repro.arch.simulator import SparsepipeSimulator
    from repro.matrices import SUITE
    from repro.workloads.registry import get_workload, workload_names

    backends = (("vectorized", "reference") if args.backend == "both"
                else (args.backend,))
    workloads = args.workloads or list(workload_names())
    context = _make_context(args)
    paper_nnz = SUITE[args.matrix].paper_nnz
    prep = context.prepared(args.matrix)

    docs = []
    n_errors = 0
    for name in workloads:
        profile = context.profile(name, args.matrix)
        graph = get_workload(name).build_graph()
        for backend in backends:
            config = SparsepipeConfig(backend=backend)
            plan = LoadPlan.from_matrix(prep, config.subtensor_cols)
            capacity = resolve_capacity(config, plan, paper_nnz)
            report = static_report(
                graph, profile, plan, config, capacity, matrix=args.matrix
            )
            result = SparsepipeSimulator(config).run(
                profile, prep, paper_nnz=paper_nnz, observers=()
            )
            oracle = report.check_against(result)
            oracle.extend(report.diagnostics)
            n_errors += len(oracle.errors)
            # The SP701 agreement is already diagnosed inside the report;
            # this is the belt-and-braces dynamic side of the same check.
            agree = report.oei.fusible == profile.has_oei
            if not agree:
                n_errors += 1
            doc = report.to_dict()
            doc["backend"] = backend
            doc["oracle_ok"] = oracle.ok and agree
            doc["simulated"] = {
                "traffic": dict(result.traffic.bytes_by_category),
                "total_bytes": result.traffic.total_bytes,
                "buffer_peak_bytes": result.buffer_peak_bytes,
            }
            docs.append(doc)
            if args.format != "json":
                verdict = "ok" if (oracle.ok and agree) else "VIOLATED"
                oei = "oei" if report.oei.fusible else "stream"
                print(f"{name:6} {backend:10} {oei:6} "
                      f"traffic {result.traffic.total_bytes:>12.0f} "
                      f"<= {report.bounds.total_bytes:>12.0f} B  "
                      f"peak {result.buffer_peak_bytes:>9.0f} "
                      f"<= {report.bounds.buffer_peak_bytes:>10.0f} B  "
                      f"{verdict}")
                for line in oracle.format().splitlines()[1:]:
                    print(f"  {line}")
    if args.format == "json":
        print(json.dumps({"points": docs, "n_errors": n_errors},
                         sort_keys=True))
    else:
        print(f"\n{len(docs)} point(s) checked: {n_errors} violation(s)")
    return 1 if n_errors else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import capture_run

    cap = capture_run(
        args.workload, matrix=args.matrix, arch=args.arch, seed=args.seed
    )
    trace_path, manifest_path = cap.write_trace(args.out)
    result = cap.result
    print(f"{args.workload} on {args.matrix} ({args.arch}): "
          f"{round(result.cycles)} cycles, "
          f"{result.total_bytes / 1e6:.2f} MB DRAM, "
          f"{cap.timeline.steps} steps")
    print(f"wrote {trace_path} ({len(cap.timeline.events)} events)")
    print(f"wrote {manifest_path} (digest {cap.manifest.digest()})")
    print("load the trace in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _parse_points(specs: List[str]) -> List[tuple]:
    points = []
    for spec in specs:
        parts = tuple(spec.split("/"))
        if len(parts) != 3:
            raise SystemExit(
                f"a sweep point is ARCH/WORKLOAD/MATRIX, got {spec!r}")
        points.append(parts)
    return points


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Supervised sweep over explicit points, reporting per-point
    status from the run manifests (docs/robustness.md)."""
    from repro.experiments.report import format_table

    context = _make_context(args)
    points = _parse_points(args.points)
    results = context.simulate_many(points)
    rows = []
    failed = 0
    for point, result in zip(points, results):
        manifest = context.manifest(*point)
        status = manifest.status if manifest is not None else "unknown"
        failed += result is None
        rows.append((
            "/".join(point), status,
            "-" if result is None else round(result.cycles),
            "-" if result is None else f"{result.total_bytes / 1e6:.2f}",
        ))
    print(format_table(
        ["point", "status", "cycles", "DRAM (MB)"], rows,
        title=f"sweep ({len(points)} point(s))",
    ))
    if args.metrics:
        print()
        print(context.metrics_report())
    return 1 if failed else 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    """Section IV-F sub-tensor width exploration, with the candidate
    probes optionally fanned out over a scheduler backend."""
    from repro.arch.autotune import DEFAULT_CANDIDATES, autotune_subtensor_cols
    from repro.matrices import SUITE

    context = _make_context(args)
    candidates = (tuple(int(c) for c in args.candidates.split(","))
                  if args.candidates else DEFAULT_CANDIDATES)
    profile = context.profile(args.workload, args.matrix)
    prep = context.prepared(args.matrix)
    best, result = autotune_subtensor_cols(
        profile, prep,
        candidates=candidates,
        paper_nnz=SUITE[args.matrix].paper_nnz,
        probe_iterations=args.probe_iterations,
        arch=args.arch,
        scheduler=args.scheduler,
        max_workers=args.jobs,
    )
    print(f"{args.workload} on {args.matrix} ({args.arch}): "
          f"best sub-tensor width {best} "
          f"(candidates {', '.join(str(c) for c in candidates)})")
    print(f"full run at width {best}: {round(result.cycles)} cycles, "
          f"{result.total_bytes / 1e6:.2f} MB DRAM")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Spool-scheduler worker: execute one job file and write its
    verdict beside it (spawned by the spool backend, not by hand)."""
    from repro.scheduler.spool import run_worker

    return run_worker(args.job_file)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.daemon import run_daemon

    def announce(daemon) -> None:
        # The readiness line CI (and scripts) wait for; flushed so a
        # piped supervisor sees it immediately.
        print(f"repro-service listening on {daemon.host}:{daemon.port}",
              flush=True)
        if daemon.endpoint_file:
            print(f"endpoint advertised in {daemon.endpoint_file}",
                  flush=True)

    try:
        asyncio.run(run_daemon(
            context=_make_context(args),
            spool_dir=args.spool,
            host=args.host,
            port=args.port,
            endpoint_file=args.endpoint_file,
            sim_workers=args.jobs,
            on_error=args.on_error if args.on_error != "raise" else "retry",
            scheduler=args.scheduler,
            announce=announce,
        ))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient, endpoint_from_file

    host, port = args.host, args.port
    if args.endpoint_file:
        host, port = endpoint_from_file(args.endpoint_file)
    client = ServiceClient(host=host, port=port, timeout_s=args.timeout)

    def show(doc) -> None:
        print(json.dumps(doc, indent=2, sort_keys=True))

    try:
        op = args.client_op
        if op == "submit":
            job_ids = [
                client.submit(point.split("/"), priority=args.priority)
                for point in args.points
            ]
            for job_id in job_ids:
                print(job_id)
            if args.wait:
                failed = 0
                for doc in client.wait_all(job_ids, timeout_s=args.timeout):
                    failed += doc["status"] != "done"
                    show(doc if args.full else
                         {k: v for k, v in doc.items() if k != "result"})
                return 1 if failed else 0
        elif op == "status":
            show(client.status(args.job_id))
        elif op == "result":
            doc = client.result(args.job_id, timeout_s=args.timeout)
            show(doc if args.full else
                 {k: v for k, v in doc.items() if k != "result"})
            return 0 if doc["status"] == "done" else 1
        elif op == "cancel":
            cancelled = client.cancel(args.job_id)
            print("cancelled" if cancelled else "not cancellable")
            return 0 if cancelled else 1
        elif op == "stats":
            show(client.stats())
        elif op == "shutdown":
            client.shutdown()
            print("daemon stopping")
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.experiments import summary

    summary.main(_make_context(args))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all

    path = export_all(args.path, _make_context(args))
    print(f"wrote {path}")
    return 0


def _add_diag_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON per-code finding budget; counts above it fail the "
             "command even for warnings (CI pins diagnostics_baseline.json)",
    )


def _add_context_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="simulate on N worker processes (default: serial)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist simulation results under DIR (e.g. .repro_cache)",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="N",
        dest="cache_bytes",
        help="byte budget for the on-disk result store; least-recently"
             "-used entries are evicted past it (default: unbounded)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        dest="on_error",
        help="per-point failure policy for sweeps: raise (default), "
             "skip (record failure, continue), or retry (bounded "
             "re-attempts, then skip); see docs/robustness.md",
    )
    parser.add_argument(
        "--scheduler", choices=("inprocess", "localpool", "spool"),
        default=None,
        help="execution backend for sweep fan-outs: inprocess (serial, "
             "deterministic), localpool (process pool), or spool "
             "(subprocess-per-job over a spool directory); default: "
             "pool when --jobs > 1, serial otherwise (docs/scheduling.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sparsepipe reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads / matrices / experiments")

    p_exp = sub.add_parser("experiment", help="run experiment drivers")
    p_exp.add_argument("ids", nargs="+",
                       help=f"experiment ids ({', '.join(_EXPERIMENTS)}, or 'all')")
    _add_context_flags(p_exp)

    p_sim = sub.add_parser("simulate", help="simulate one (workload, matrix)")
    p_sim.add_argument("-w", "--workload", required=True)
    p_sim.add_argument("-m", "--matrix", required=True)
    p_sim.add_argument("-a", "--arch", nargs="+", default=list(arch_names()))
    _add_context_flags(p_sim)

    p_an = sub.add_parser("analyze", help="Table-I analysis of a MatrixMarket file")
    p_an.add_argument("path")
    p_an.add_argument(
        "--strict", action="store_true",
        help="strict ingest: also reject out-of-bounds indices, "
             "trailing tokens, duplicate coordinates, non-finite values",
    )

    sub.add_parser("footprint", help="Table I over the built-in suite")

    p_lint = sub.add_parser(
        "lint", help="static verifier + schedule linter over workloads"
    )
    p_lint.add_argument(
        "workloads", nargs="*",
        help="workload names (default: every registered workload)",
    )
    _add_diag_flags(p_lint)

    p_self = sub.add_parser(
        "selfcheck", help="AST self-lint of the library source"
    )
    _add_diag_flags(p_self)

    p_chk = sub.add_parser(
        "check",
        help="absint oracle: static bounds and OEI legality vs the simulator",
    )
    p_chk.add_argument(
        "workloads", nargs="*",
        help="workload names (default: every registered workload)",
    )
    p_chk.add_argument("-m", "--matrix", default="gy",
                       help="suite matrix name (default: gy)")
    p_chk.add_argument(
        "--backend", choices=("both", "vectorized", "reference"),
        default="both",
        help="simulator backend(s) to cross-check (default: both)",
    )
    p_chk.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (default: text)")
    _add_context_flags(p_chk)

    p_tr = sub.add_parser(
        "trace", help="export a Chrome/Perfetto trace of one simulated run"
    )
    p_tr.add_argument("workload", help="workload name (see 'list')")
    p_tr.add_argument("-m", "--matrix", default="gy",
                      help="suite matrix name (default: gy)")
    p_tr.add_argument("-a", "--arch", default="sparsepipe",
                      help="observable architecture (default: sparsepipe)")
    p_tr.add_argument("-o", "--out", default="trace.json", metavar="PATH",
                      help="output trace path (default: trace.json)")
    p_tr.add_argument("--seed", type=int, default=0,
                      help="seed recorded in the run manifest")

    p_sw = sub.add_parser(
        "sweep", help="supervised sweep over explicit points"
    )
    p_sw.add_argument("points", nargs="+", metavar="ARCH/WORKLOAD/MATRIX",
                      help="e.g. sparsepipe/pr/gy")
    p_sw.add_argument("--metrics", action="store_true",
                      help="print the sweep-wide metrics registry too")
    _add_context_flags(p_sw)

    p_at = sub.add_parser(
        "autotune", help="explore sub-tensor widths (Section IV-F)"
    )
    p_at.add_argument("-w", "--workload", required=True)
    p_at.add_argument("-m", "--matrix", required=True)
    p_at.add_argument("-a", "--arch", default="sparsepipe",
                      help="architecture to tune (default: sparsepipe)")
    p_at.add_argument("--candidates", default=None, metavar="W1,W2,...",
                      help="comma-separated candidate widths "
                           "(default: 32,64,128,256,512)")
    p_at.add_argument("--probe-iterations", type=int, default=2,
                      dest="probe_iterations",
                      help="iterations charged per candidate probe "
                           "(default: 2)")
    _add_context_flags(p_at)

    p_wk = sub.add_parser(
        "worker", help="execute one spool-scheduler job file"
    )
    p_wk.add_argument("job_file", help="path to a <job_id>.job file")

    p_srv = sub.add_parser(
        "serve", help="simulation-service daemon (docs/service.md)"
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 picks a free one (default: 0)")
    p_srv.add_argument(
        "--spool", default=None, metavar="DIR",
        help="journal jobs under DIR for crash recovery; a restarted "
             "daemon re-enqueues whatever never finished",
    )
    p_srv.add_argument(
        "--endpoint-file", default=None, metavar="FILE",
        dest="endpoint_file",
        help="advertise the bound host/port in FILE (how scripts "
             "discover a --port 0 daemon)",
    )
    _add_context_flags(p_srv)

    p_cl = sub.add_parser(
        "client", help="talk to a running simulation-service daemon"
    )
    p_cl.add_argument("--host", default="127.0.0.1")
    p_cl.add_argument("--port", type=int, default=0)
    p_cl.add_argument(
        "--endpoint-file", default=None, metavar="FILE",
        dest="endpoint_file",
        help="read host/port from a daemon's --endpoint-file",
    )
    p_cl.add_argument("--timeout", type=float, default=300.0,
                      help="per-request budget in seconds (default: 300)")
    cl_sub = p_cl.add_subparsers(dest="client_op", required=True)
    p_cs = cl_sub.add_parser("submit", help="submit arch/workload/matrix points")
    p_cs.add_argument("points", nargs="+", metavar="ARCH/WORKLOAD/MATRIX",
                      help="e.g. sparsepipe/pr/gy")
    p_cs.add_argument("--priority", type=int, default=0)
    p_cs.add_argument("--wait", action="store_true",
                      help="block until every job is terminal")
    p_cs.add_argument("--full", action="store_true",
                      help="with --wait, include result payloads")
    for op, needs_id in (("status", True), ("result", True),
                         ("cancel", True), ("stats", False),
                         ("shutdown", False)):
        p_op = cl_sub.add_parser(op)
        if needs_id:
            p_op.add_argument("job_id")
        if op == "result":
            p_op.add_argument("--full", action="store_true",
                              help="include the result payload")

    p_sum = sub.add_parser(
        "summary", help="all Section VI headline claims, paper vs measured"
    )
    _add_context_flags(p_sum)

    p_ex = sub.add_parser("export", help="run everything and write results as JSON")
    p_ex.add_argument("path", help="output JSON path")
    _add_context_flags(p_ex)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "simulate": _cmd_simulate,
        "analyze": _cmd_analyze,
        "footprint": _cmd_footprint,
        "lint": _cmd_lint,
        "selfcheck": _cmd_selfcheck,
        "check": _cmd_check,
        "trace": _cmd_trace,
        "sweep": _cmd_sweep,
        "autotune": _cmd_autotune,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "summary": _cmd_summary,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
