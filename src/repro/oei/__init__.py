"""The OEI (Output-stationary / E-wise / Input-stationary) dataflow.

- :mod:`repro.oei.schedule` — the pipeline-step timing skew of Fig 8
  (e-wise lags OS by one step, IS by two),
- :mod:`repro.oei.executor` — a functional executor that runs iteration
  pairs under the OEI schedule and must agree exactly with sequential
  reference execution (the legality proof of Section III, executable),
- :mod:`repro.oei.reuse` — the cross-iteration residency analysis
  behind Table I.
"""

from repro.oei.schedule import OEISchedule, SubTensor
from repro.oei.executor import OEIExecution, run_oei_pairs, run_reference
from repro.oei.reuse import ReuseStats, reuse_footprint
from repro.oei.validate import (
    ScheduleTimeline,
    assert_oei_matches_reference,
    replay_schedule,
    validate_schedule,
)

__all__ = [
    "OEISchedule",
    "SubTensor",
    "OEIExecution",
    "run_oei_pairs",
    "run_reference",
    "ReuseStats",
    "reuse_footprint",
    "ScheduleTimeline",
    "replay_schedule",
    "validate_schedule",
    "assert_oei_matches_reference",
]
