"""OEI pipeline-step schedule (Fig 8 / Fig 13).

Execution advances in *steps*; each step moves one sub-tensor of ``T``
columns through one pipeline stage. Within a fused iteration pair,

- the OS stage processes sub-tensor ``s`` at step ``s``,
- the E-Wise stage processes sub-tensor ``s`` at step ``s + 1``
  (it needs the OS output of step ``s``),
- the IS stage processes sub-tensor ``s`` at step ``s + 2``
  (it needs the e-wise output of step ``s + 1``).

So a pair over ``S`` sub-tensors drains after ``S + 2`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigError, Diagnostic

#: Stage skews relative to the OS stage, in steps (Fig 8).
EWISE_LAG = 1
IS_LAG = 2


@dataclass(frozen=True)
class SubTensor:
    """A contiguous column range ``[start, stop)`` of the input matrix
    (equivalently an element range of the vectors)."""

    index: int
    start: int
    stop: int

    @property
    def width(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class OEISchedule:
    """Sub-tensor decomposition of an ``n``-column matrix."""

    n: int
    subtensor_cols: int

    def __post_init__(self) -> None:
        if self.subtensor_cols <= 0 or self.n < 0:
            message = (
                f"n={self.n} must be non-negative and "
                f"subtensor_cols={self.subtensor_cols} positive"
            )
            raise ConfigError(
                message,
                diagnostics=[Diagnostic.error(
                    "SP306", message,
                    location=f"OEISchedule(n={self.n}, "
                             f"subtensor_cols={self.subtensor_cols})",
                )],
            )

    @property
    def n_subtensors(self) -> int:
        return -(-self.n // self.subtensor_cols) if self.n else 0

    @property
    def n_steps(self) -> int:
        """Steps to drain one iteration pair (Fig 13)."""
        return self.n_subtensors + IS_LAG if self.n_subtensors else 0

    def subtensor(self, index: int) -> SubTensor:
        if not 0 <= index < self.n_subtensors:
            raise IndexError(
                f"sub-tensor {index} out of range for {self.n_subtensors}"
            )
        start = index * self.subtensor_cols
        return SubTensor(index, start, min(self.n, start + self.subtensor_cols))

    def subtensors(self) -> Iterator[SubTensor]:
        for i in range(self.n_subtensors):
            yield self.subtensor(i)

    # ------------------------------------------------------------------
    # Which sub-tensor each stage touches at a given step
    # ------------------------------------------------------------------
    def os_at(self, step: int) -> Optional[SubTensor]:
        """Sub-tensor in the OS stage at ``step``, if any."""
        return self._stage_at(step, 0)

    def ewise_at(self, step: int) -> Optional[SubTensor]:
        """Sub-tensor in the E-Wise stage at ``step``, if any."""
        return self._stage_at(step, EWISE_LAG)

    def is_at(self, step: int) -> Optional[SubTensor]:
        """Sub-tensor in the IS stage at ``step``, if any."""
        return self._stage_at(step, IS_LAG)

    def _stage_at(self, step: int, lag: int) -> Optional[SubTensor]:
        index = step - lag
        if 0 <= index < self.n_subtensors:
            return self.subtensor(index)
        return None
