"""Cross-iteration reuse residency analysis — the machinery of Table I.

Under OEI pairing, element ``(i, j)`` of the matrix is loaded when the
OS stage consumes column ``j`` (step ``j``) and reused when the IS
stage scatters row ``i`` (step ``i + 2``, the IS lag of Fig 8). Its
on-chip residency interval is therefore

    [j, max(j + 1, i + 2))

— elements above the diagonal (``j > i + 2``) are reused the moment
they arrive (eagerly-loaded IS data flowing to OS, Fig 9) and occupy
the buffer for a single step, while elements far below the diagonal
wait ``i + 2 - j`` steps. The occupancy at step ``s`` counts live
intervals; Table I reports its max and mean as a percentage of nnz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.formats.compressed import INDEX_BYTES, VALUE_BYTES
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.oei.schedule import IS_LAG
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ReuseStats:
    """Residency statistics of one matrix under the OEI dataflow."""

    nnz: int
    n_steps: int
    max_live: int
    avg_live: float
    series: np.ndarray  #: live elements at each step

    @property
    def max_pct(self) -> float:
        """Peak on-chip fraction — Table I's ``max (%)`` column."""
        return 100.0 * self.max_live / self.nnz if self.nnz else 0.0

    @property
    def avg_pct(self) -> float:
        """Mean on-chip fraction — Table I's ``avg (%)`` column."""
        return 100.0 * self.avg_live / self.nnz if self.nnz else 0.0

    def max_bytes(self, bytes_per_element: int = INDEX_BYTES + VALUE_BYTES) -> int:
        """Peak buffer demand of the reuse window, in bytes."""
        return self.max_live * bytes_per_element

    def avg_bytes(self, bytes_per_element: int = INDEX_BYTES + VALUE_BYTES) -> float:
        return self.avg_live * bytes_per_element


def reuse_footprint(
    matrix: Union[COOMatrix, CSCMatrix],
    subtensor_cols: int = 1,
    fusion_depth: int = 2,
) -> ReuseStats:
    """Compute the OEI residency profile of a matrix.

    ``subtensor_cols`` > 1 evaluates the footprint at sub-tensor
    granularity (steps process ``T`` columns / rows at once), which is
    what the hardware actually buffers.

    ``fusion_depth`` generalizes beyond the paper's pairwise fusion: a
    depth-``k`` chain alternates OS/IS stages, each lagging ``IS_LAG``
    steps behind the previous, so element ``(i, j)`` is last touched at
    ``max(j + 1, i + IS_LAG) + IS_LAG * (k - 2)``. Depth 2 is the
    paper's OEI; larger depths trade a longer residency window for
    fewer matrix streams (see ``bench_fusion_depth``).
    """
    check_positive("subtensor_cols", subtensor_cols)
    if fusion_depth < 2:
        raise ValueError(f"fusion_depth must be >= 2, got {fusion_depth}")
    if isinstance(matrix, CSCMatrix):
        rows, cols, _ = matrix.to_coo_arrays()
        shape = matrix.shape
    else:
        dedup = matrix.deduplicate()
        rows, cols, shape = dedup.rows, dedup.cols, dedup.shape
    nnz = rows.size
    extra_lag = IS_LAG * (fusion_depth - 2)
    n_steps_total = -(-max(shape) // subtensor_cols) + IS_LAG + extra_lag
    if nnz == 0:
        return ReuseStats(0, n_steps_total, 0, 0.0, np.zeros(n_steps_total, dtype=np.int64))

    load_step = cols // subtensor_cols
    reuse_step = rows // subtensor_cols + IS_LAG
    start = load_step
    stop = np.maximum(load_step + 1, reuse_step) + extra_lag

    diff = np.zeros(n_steps_total + 1, dtype=np.int64)
    np.add.at(diff, start, 1)
    np.add.at(diff, stop, -1)
    series = np.cumsum(diff[:-1])
    return ReuseStats(
        nnz=int(nnz),
        n_steps=n_steps_total,
        max_live=int(series.max()),
        avg_live=float(series.mean()),
        series=series,
    )


def window_entry_bytes(plan) -> float:
    """Bytes that ever *enter* a pair's CSR reuse window under the
    given :class:`~repro.arch.loaders.LoadPlan` — elements whose
    scatter step trails their load step.

    Every ``csr_reload`` byte the buffer can charge in one pair is a
    re-fetch of an evicted window element, and each element is evicted
    at most once, so this is a sound per-pair upper bound on reload
    traffic (used by :mod:`repro.analysis.bounds`).
    """
    entered = sum(c for counts in plan.enter_counts for c in counts.values())
    return float(entered) * plan.element_bytes


def window_peak_bytes(plan) -> float:
    """Peak bytes live in a pair's CSR reuse window assuming *no*
    eviction ever happens, from the plan's admission schedule alone.

    An element admitted at load step ``l`` with scatter step ``r`` is
    resident at every occupancy sample ``s`` with ``l <= s <= r``
    (:class:`~repro.arch.buffer.OnChipBuffer` samples after admission
    and before release). Eviction only shrinks residency, so the
    no-eviction series dominates the simulated live occupancy — the
    static buffer-peak bound of :mod:`repro.analysis.bounds` is this
    plus the prefetcher's slack-bounded CSR capacity.
    """
    diff = np.zeros(plan.n_steps + 2, dtype=np.int64)
    for l, counts in enumerate(plan.enter_counts):
        for r, c in counts.items():
            diff[l] += c
            diff[min(r + 1, plan.n_steps + 1)] -= c
    series = np.cumsum(diff[:-1])
    peak = int(series.max()) if series.size else 0
    return float(peak) * plan.element_bytes
