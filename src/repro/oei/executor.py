"""Functional executor for the OEI dataflow.

Runs iteration *pairs*: the first iteration's ``vxm`` under the
output-stationary dataflow, the fused e-wise stream one sub-tensor
behind it, and the second iteration's ``vxm`` under the
input-stationary dataflow two sub-tensors behind (Fig 8). Every value
is produced in exactly the order the hardware would produce it, using
only data legal to touch at that step, so agreement with
:func:`run_reference` is an executable proof that the OEI schedule
computes the same fixpoint iteration as the conventional sequential
schedule.

Scalar convention
-----------------
E-wise scalars for iteration ``k`` (e.g. PageRank's teleport term) are
computed by ``scalar_update(k, x_k)`` from the *input* vector of
iteration ``k``, which is fully materialized before the iteration
starts. A scalar that needed iteration ``k``'s own *output* would break
sub-tensor dependency and make the graph ineligible for OEI — the
compiler would not have produced the path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.dataflow.program import OEIProgram
from repro.errors import ScheduleError
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei.schedule import OEISchedule
from repro.semiring import kernels

AuxProvider = Callable[[int, np.ndarray], Mapping[str, np.ndarray]]
ScalarUpdate = Callable[[int, np.ndarray], Mapping[str, float]]


def _no_aux(iteration: int, x: np.ndarray) -> Mapping[str, np.ndarray]:
    return {}


def _no_scalars(iteration: int, x: np.ndarray) -> Mapping[str, float]:
    return {}


@dataclass
class OEIExecution:
    """Trace of an OEI run: per-iteration inputs and contraction outputs.

    ``x_history[k]`` is the input vector of iteration ``k`` (so
    ``x_history[0]`` is the initial vector) and ``y_history[k]`` the raw
    ``vxm`` output of iteration ``k``.
    """

    x_history: List[np.ndarray] = field(default_factory=list)
    y_history: List[np.ndarray] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.y_history)

    @property
    def final_x(self) -> np.ndarray:
        return self.x_history[-1]


def run_reference(
    csc: CSCMatrix,
    program: OEIProgram,
    x0: np.ndarray,
    n_iterations: int,
    aux_provider: AuxProvider = _no_aux,
    scalar_update: ScalarUpdate = _no_scalars,
    kernel: str = "batched",
) -> OEIExecution:
    """Conventional sequential schedule: each iteration's ``vxm``
    completes before its e-wise starts (Fig 3a)."""
    kernels.check_kernel(kernel)
    semiring = program.semiring
    n = csc.ncols
    _check_square(csc)
    x = np.asarray(x0, dtype=np.float64).copy()
    trace = OEIExecution(x_history=[x.copy()])
    all_idx = np.arange(n)
    for k in range(n_iterations):
        scalars = scalar_update(k, x)
        aux = aux_provider(k, x)
        products = semiring.mul(x[csc.indices], csc.data)
        col_ids = np.repeat(np.arange(n, dtype=np.int64), csc.col_nnz())
        y = _segment_reduce(semiring.add, products, col_ids, n, kernel)
        x = program.run_elementwise(y, all_idx, aux, scalars)
        trace.y_history.append(y)
        trace.x_history.append(x.copy())
    return trace


def run_oei_pairs(
    csc: CSCMatrix,
    csr: CSRMatrix,
    program: OEIProgram,
    x0: np.ndarray,
    n_iterations: int,
    aux_provider: AuxProvider = _no_aux,
    scalar_update: ScalarUpdate = _no_scalars,
    subtensor_cols: int = 64,
    kernel: str = "batched",
) -> OEIExecution:
    """Execute ``n_iterations`` fused in OEI pairs.

    Iterations ``2m`` (OS side) and ``2m + 1`` (IS side) share one
    streaming pass over the matrix. An odd trailing iteration runs OS-
    only. Raises :class:`ScheduleError` if the program has no OEI path.

    ``kernel`` selects how semiring reductions are dispatched:
    ``"batched"`` routes grouping-safe monoids through the segment
    kernels of :mod:`repro.semiring.kernels`, ``"reference"`` keeps the
    per-reduction :class:`~repro.semiring.Monoid` methods. Both are
    bit-identical; batched is faster on wide sub-tensors.
    """
    kernels.check_kernel(kernel)
    if not program.has_oei:
        raise ScheduleError(
            f"program {program.name!r} has no OEI path; use run_reference"
        )
    _check_square(csc)
    if csr.shape != csc.shape:
        raise ScheduleError(f"CSC {csc.shape} and CSR {csr.shape} disagree")
    semiring = program.semiring
    n = csc.ncols
    schedule = OEISchedule(n, subtensor_cols)
    x = np.asarray(x0, dtype=np.float64).copy()
    trace = OEIExecution(x_history=[x.copy()])

    iteration = 0
    while iteration < n_iterations:
        if iteration + 1 < n_iterations:
            x = _run_pair(
                csc, csr, program, semiring, schedule, x, iteration,
                aux_provider, scalar_update, trace, kernel,
            )
            iteration += 2
        else:
            # Odd tail: OS + e-wise only, still streamed per sub-tensor.
            x = _run_os_only(
                csc, program, semiring, schedule, x, iteration,
                aux_provider, scalar_update, trace, kernel,
            )
            iteration += 1
    return trace


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _check_square(csc: CSCMatrix) -> None:
    if csc.nrows != csc.ncols:
        raise ScheduleError(
            f"OEI iteration fusing needs a square matrix, got {csc.shape}"
        )


def _segment_reduce(monoid, values, segment_ids, n_segments, kernel) -> np.ndarray:
    if kernel == "batched":
        return kernels.segment_reduce(monoid, values, segment_ids, n_segments)
    return monoid.segment_reduce(values, segment_ids, n_segments)


def _scatter(monoid, out, indices, values, kernel) -> None:
    if kernel == "batched":
        kernels.scatter(monoid, out, indices, values)
    else:
        monoid.scatter(out, indices, values)


def _os_columns(
    csc: CSCMatrix, semiring, x: np.ndarray, start: int, stop: int,
    kernel: str = "batched",
) -> np.ndarray:
    """OS stage: one output element per column in ``[start, stop)``."""
    lo, hi = int(csc.indptr[start]), int(csc.indptr[stop])
    rows = csc.indices[lo:hi]
    products = semiring.mul(x[rows], csc.data[lo:hi])
    col_ids = (
        np.repeat(
            np.arange(start, stop, dtype=np.int64),
            np.diff(csc.indptr[start : stop + 1]),
        )
        - start
    )
    return _segment_reduce(semiring.add, products, col_ids, stop - start, kernel)


def _is_rows(
    csr: CSRMatrix, semiring, x_next: np.ndarray, y_partial: np.ndarray,
    start: int, stop: int,
    kernel: str = "batched",
) -> None:
    """IS stage: scatter rows ``[start, stop)`` of the matrix against the
    freshly produced input elements, merging into ``y_partial``."""
    lo, hi = int(csr.indptr[start]), int(csr.indptr[stop])
    cols = csr.indices[lo:hi]
    row_ids = np.repeat(
        np.arange(start, stop, dtype=np.int64), np.diff(csr.indptr[start : stop + 1])
    )
    products = semiring.mul(x_next[row_ids], csr.data[lo:hi])
    _scatter(semiring.add, y_partial, cols, products, kernel)


def _run_pair(
    csc, csr, program, semiring, schedule, x, iteration,
    aux_provider, scalar_update, trace, kernel="batched",
) -> np.ndarray:
    n = csc.ncols
    scalars = scalar_update(iteration, x)
    aux = aux_provider(iteration, x)
    y_first = np.empty(n, dtype=np.float64)
    x_next = np.empty(n, dtype=np.float64)
    y_second = np.full(n, semiring.zero, dtype=np.float64)

    for step in range(schedule.n_steps):
        os_st = schedule.os_at(step)
        if os_st is not None:
            y_first[os_st.start : os_st.stop] = _os_columns(
                csc, semiring, x, os_st.start, os_st.stop, kernel
            )
        ew_st = schedule.ewise_at(step)
        if ew_st is not None:
            idx = np.arange(ew_st.start, ew_st.stop)
            x_next[idx] = program.run_elementwise(
                y_first[idx], idx, aux, scalars
            )
        is_st = schedule.is_at(step)
        if is_st is not None:
            _is_rows(
                csr, semiring, x_next, y_second, is_st.start, is_st.stop, kernel
            )

    trace.y_history.append(y_first.copy())
    trace.x_history.append(x_next.copy())

    # Second iteration's e-wise runs at pair drain; its scalars derive
    # from x_next, fully materialized by now.
    scalars2 = scalar_update(iteration + 1, x_next)
    aux2 = aux_provider(iteration + 1, x_next)
    all_idx = np.arange(n)
    x_after = program.run_elementwise(y_second, all_idx, aux2, scalars2)
    trace.y_history.append(y_second.copy())
    trace.x_history.append(x_after.copy())
    return x_after


def _run_os_only(
    csc, program, semiring, schedule, x, iteration,
    aux_provider, scalar_update, trace, kernel="batched",
) -> np.ndarray:
    n = csc.ncols
    scalars = scalar_update(iteration, x)
    aux = aux_provider(iteration, x)
    y = np.empty(n, dtype=np.float64)
    x_next = np.empty(n, dtype=np.float64)
    for st in schedule.subtensors():
        y[st.start : st.stop] = _os_columns(
            csc, semiring, x, st.start, st.stop, kernel
        )
        idx = np.arange(st.start, st.stop)
        x_next[idx] = program.run_elementwise(y[idx], idx, aux, scalars)
    trace.y_history.append(y.copy())
    trace.x_history.append(x_next.copy())
    return x_next
