"""OEI schedule legality validation.

Two levels of checking:

- :func:`validate_schedule` — structural: replay the pipeline-step
  schedule and verify every stage only ever consumes data produced by
  an earlier (or same-step upstream) stage, and that each sub-tensor
  passes through each stage exactly once. This is the machine-checkable
  form of the Fig 8 skew argument.
- :func:`assert_oei_matches_reference` — numeric: run the functional
  OEI executor and the sequential reference on real data and require
  exact iteration-by-iteration agreement. Use this when adding a new
  workload or a new e-wise program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import DiagnosticReport
from repro.dataflow.program import OEIProgram
from repro.errors import ScheduleError
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei.executor import OEIExecution, run_oei_pairs, run_reference
from repro.oei.schedule import EWISE_LAG, IS_LAG, OEISchedule


@dataclass
class ScheduleTimeline:
    """Replay record of one pair's pipeline schedule."""

    n_steps: int
    os_done: List[int] = field(default_factory=list)     #: sub-tensor per step
    ewise_done: List[int] = field(default_factory=list)
    is_done: List[int] = field(default_factory=list)


def replay_schedule(
    n: int,
    subtensor_cols: int,
    ewise_lag: int = EWISE_LAG,
    is_lag: int = IS_LAG,
) -> Tuple[ScheduleTimeline, DiagnosticReport]:
    """Replay the pipeline-step schedule and report *every* dependency
    or coverage violation as diagnostics (SP304/SP305) — the same
    report format the static verifier uses, so static and replay checks
    compose into one lint output.

    ``ewise_lag``/``is_lag`` default to the Fig 8 skew; passing broken
    lags exercises the detector (and the golden tests).

    Checks, per step ``s``:

    1. the E-Wise stage only touches a sub-tensor whose OS output
       already exists (``os`` finished it at least one step earlier,
       per Fig 8),
    2. the IS stage only touches a sub-tensor whose e-wise output
       already exists,
    3. at drain, every stage has processed every sub-tensor exactly
       once, in order.
    """
    schedule = OEISchedule(n, subtensor_cols)
    n_steps = schedule.n_subtensors + max(0, ewise_lag, is_lag) \
        if schedule.n_subtensors else 0
    timeline = ScheduleTimeline(n_steps)
    report = DiagnosticReport(
        subject=f"schedule replay (n={n}, subtensor_cols={subtensor_cols})"
    )
    os_finished = -1
    ewise_finished = -1
    for step in range(n_steps):
        os_st = schedule._stage_at(step, 0)
        ew_st = schedule._stage_at(step, ewise_lag)
        is_st = schedule._stage_at(step, is_lag)
        if ew_st is not None:
            if ew_st.index > os_finished:
                report.add(
                    "SP304",
                    f"e-wise consumes sub-tensor {ew_st.index} but OS has "
                    f"only finished {os_finished}",
                    f"step {step}",
                )
            timeline.ewise_done.append(ew_st.index)
        if is_st is not None:
            if is_st.index > ewise_finished:
                report.add(
                    "SP304",
                    f"IS consumes sub-tensor {is_st.index} but e-wise has "
                    f"only finished {ewise_finished}",
                    f"step {step}",
                )
            timeline.is_done.append(is_st.index)
        # Stage completions land at end-of-step: OS output of step s is
        # consumable from step s+1 (EWISE_LAG), e-wise from s+1 more.
        if ew_st is not None:
            ewise_finished = ew_st.index
        if os_st is not None:
            os_finished = os_st.index
            timeline.os_done.append(os_st.index)

    expected = list(range(schedule.n_subtensors))
    for stage_name, done in (
        ("OS", timeline.os_done),
        ("e-wise", timeline.ewise_done),
        ("IS", timeline.is_done),
    ):
        if done != expected:
            report.add(
                "SP305",
                f"{stage_name} stage processed {done}, expected {expected}",
                f"schedule (n={n}, subtensor_cols={subtensor_cols})",
            )
    return timeline, report


def validate_schedule(
    n: int,
    subtensor_cols: int,
    ewise_lag: int = EWISE_LAG,
    is_lag: int = IS_LAG,
) -> ScheduleTimeline:
    """Structurally validate the OEI schedule for an ``n``-column
    matrix; raises :class:`ScheduleError` carrying every collected
    diagnostic (not just the first) on any violation. See
    :func:`replay_schedule` for the individual checks."""
    timeline, report = replay_schedule(n, subtensor_cols, ewise_lag, is_lag)
    report.raise_if_errors(
        ScheduleError,
        header=f"OEI schedule (n={n}, subtensor_cols={subtensor_cols}) "
               "violates the Fig 8 skew",
    )
    return timeline


def assert_oei_matches_reference(
    csc: CSCMatrix,
    csr: CSRMatrix,
    program: OEIProgram,
    x0: np.ndarray,
    n_iterations: int,
    aux_provider: Optional[Callable[[int, np.ndarray], Mapping[str, np.ndarray]]] = None,
    scalar_update: Optional[Callable[[int, np.ndarray], Mapping[str, float]]] = None,
    subtensor_cols: int = 64,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> OEIExecution:
    """Run the OEI pair schedule and require exact agreement with the
    sequential reference; returns the OEI trace on success and raises
    :class:`ScheduleError` naming the first diverging iteration."""
    kwargs = {}
    if aux_provider is not None:
        kwargs["aux_provider"] = aux_provider
    if scalar_update is not None:
        kwargs["scalar_update"] = scalar_update
    ref = run_reference(csc, program, x0, n_iterations, **kwargs)
    oei = run_oei_pairs(
        csc, csr, program, x0, n_iterations, subtensor_cols=subtensor_cols, **kwargs
    )
    for k in range(n_iterations):
        if not np.allclose(
            oei.y_history[k], ref.y_history[k], rtol=rtol, atol=atol, equal_nan=True
        ):
            raise ScheduleError(
                f"OEI vxm output diverges from reference at iteration {k}"
            )
        if not np.allclose(
            oei.x_history[k + 1], ref.x_history[k + 1], rtol=rtol, atol=atol,
            equal_nan=True,
        ):
            raise ScheduleError(
                f"OEI e-wise output diverges from reference at iteration {k}"
            )
    return oei
