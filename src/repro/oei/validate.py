"""OEI schedule legality validation.

Two levels of checking:

- :func:`validate_schedule` — structural: replay the pipeline-step
  schedule and verify every stage only ever consumes data produced by
  an earlier (or same-step upstream) stage, and that each sub-tensor
  passes through each stage exactly once. This is the machine-checkable
  form of the Fig 8 skew argument.
- :func:`assert_oei_matches_reference` — numeric: run the functional
  OEI executor and the sequential reference on real data and require
  exact iteration-by-iteration agreement. Use this when adding a new
  workload or a new e-wise program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional

import numpy as np

from repro.dataflow.program import OEIProgram
from repro.errors import ScheduleError
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei.executor import OEIExecution, run_oei_pairs, run_reference
from repro.oei.schedule import EWISE_LAG, IS_LAG, OEISchedule


@dataclass
class ScheduleTimeline:
    """Replay record of one pair's pipeline schedule."""

    n_steps: int
    os_done: List[int] = field(default_factory=list)     #: sub-tensor per step
    ewise_done: List[int] = field(default_factory=list)
    is_done: List[int] = field(default_factory=list)


def validate_schedule(n: int, subtensor_cols: int) -> ScheduleTimeline:
    """Structurally validate the OEI schedule for an ``n``-column
    matrix; raises :class:`ScheduleError` on any dependency violation.

    Checks, per step ``s``:

    1. the E-Wise stage only touches a sub-tensor whose OS output
       already exists (``os`` finished it at least ``EWISE_LAG`` steps
       earlier — one step, per Fig 8),
    2. the IS stage only touches a sub-tensor whose e-wise output
       already exists,
    3. at drain, every stage has processed every sub-tensor exactly
       once, in order.
    """
    schedule = OEISchedule(n, subtensor_cols)
    timeline = ScheduleTimeline(schedule.n_steps)
    os_finished = -1
    ewise_finished = -1
    for step in range(schedule.n_steps):
        os_st = schedule.os_at(step)
        ew_st = schedule.ewise_at(step)
        is_st = schedule.is_at(step)
        if ew_st is not None:
            if ew_st.index > os_finished:
                raise ScheduleError(
                    f"step {step}: e-wise consumes sub-tensor {ew_st.index} "
                    f"but OS has only finished {os_finished}"
                )
            timeline.ewise_done.append(ew_st.index)
        if is_st is not None:
            if is_st.index > ewise_finished:
                raise ScheduleError(
                    f"step {step}: IS consumes sub-tensor {is_st.index} "
                    f"but e-wise has only finished {ewise_finished}"
                )
            timeline.is_done.append(is_st.index)
        # Stage completions land at end-of-step: OS output of step s is
        # consumable from step s+1 (EWISE_LAG), e-wise from s+1 more.
        if ew_st is not None:
            ewise_finished = ew_st.index
        if os_st is not None:
            os_finished = os_st.index
            timeline.os_done.append(os_st.index)

    expected = list(range(schedule.n_subtensors))
    for stage_name, done in (
        ("OS", timeline.os_done),
        ("e-wise", timeline.ewise_done),
        ("IS", timeline.is_done),
    ):
        if done != expected:
            raise ScheduleError(
                f"{stage_name} stage processed {done}, expected {expected}"
            )
    return timeline


def assert_oei_matches_reference(
    csc: CSCMatrix,
    csr: CSRMatrix,
    program: OEIProgram,
    x0: np.ndarray,
    n_iterations: int,
    aux_provider: Optional[Callable[[int, np.ndarray], Mapping[str, np.ndarray]]] = None,
    scalar_update: Optional[Callable[[int, np.ndarray], Mapping[str, float]]] = None,
    subtensor_cols: int = 64,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> OEIExecution:
    """Run the OEI pair schedule and require exact agreement with the
    sequential reference; returns the OEI trace on success and raises
    :class:`ScheduleError` naming the first diverging iteration."""
    kwargs = {}
    if aux_provider is not None:
        kwargs["aux_provider"] = aux_provider
    if scalar_update is not None:
        kwargs["scalar_update"] = scalar_update
    ref = run_reference(csc, program, x0, n_iterations, **kwargs)
    oei = run_oei_pairs(
        csc, csr, program, x0, n_iterations, subtensor_cols=subtensor_cols, **kwargs
    )
    for k in range(n_iterations):
        if not np.allclose(
            oei.y_history[k], ref.y_history[k], rtol=rtol, atol=atol, equal_nan=True
        ):
            raise ScheduleError(
                f"OEI vxm output diverges from reference at iteration {k}"
            )
        if not np.allclose(
            oei.x_history[k + 1], ref.x_history[k + 1], rtol=rtol, atol=atol,
            equal_nan=True,
        ):
            raise ScheduleError(
                f"OEI e-wise output diverges from reference at iteration {k}"
            )
    return oei
