"""Exception hierarchy and structured diagnostics for the reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.

Errors raised by the static verifier (:mod:`repro.analysis`), the
dataflow compiler, and the OEI scheduler additionally carry
:class:`Diagnostic` records: a stable code (``SP101`` ...), a severity,
a graph/file location, and a one-line fix hint. ``docs/analysis.md``
catalogues every code.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence, Tuple


class Severity(Enum):
    """How bad a diagnostic is.

    ``ERROR`` diagnostics fail compilation / lint / CI; ``WARNING``
    diagnostics are legal but suspicious (e.g. a fused e-wise chain
    gated by a same-iteration reduction, which blocks OEI reuse);
    ``INFO`` is purely informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of the static verifier or self-lint.

    ``code`` is stable across releases (``SP1xx`` graph, ``SP2xx``
    fusion/OEI, ``SP3xx`` schedule, ``SP9xx`` selfcheck); ``location``
    names where the defect lives (``graph pr / op spmv`` or
    ``arch/config.py:113``); ``hint`` is one line of fix guidance.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def __str__(self) -> str:
        loc = f" at {self.location}" if self.location else ""
        hint = f" (fix: {self.hint})" if self.hint else ""
        return f"{self.code} [{self.severity.value}]{loc}: {self.message}{hint}"

    def as_dict(self) -> dict:
        """JSON-plain representation (severity as its string value) —
        the form run manifests and fault logs persist."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }

    # Convenience constructors keep call sites to one line.
    @classmethod
    def error(cls, code: str, message: str, location: str = "",
              hint: str = "") -> "Diagnostic":
        return cls(code, Severity.ERROR, message, location, hint)

    @classmethod
    def warning(cls, code: str, message: str, location: str = "",
                hint: str = "") -> "Diagnostic":
        return cls(code, Severity.WARNING, message, location, hint)

    @classmethod
    def info(cls, code: str, message: str, location: str = "",
             hint: str = "") -> "Diagnostic":
        return cls(code, Severity.INFO, message, location, hint)


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``diagnostics`` optionally attaches the structured findings behind
    the failure, so callers (and the CLI) can report codes and
    locations instead of parsing message strings.
    """

    def __init__(self, *args, diagnostics: Sequence[Diagnostic] = ()) -> None:
        super().__init__(*args)
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)

    @property
    def codes(self) -> Tuple[str, ...]:
        """Diagnostic codes attached to this error, in emission order."""
        return tuple(d.code for d in self.diagnostics)


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes."""


class FormatError(ReproError, ValueError):
    """A sparse tensor is structurally invalid (bad indptr, unsorted
    indices, out-of-range coordinates, ...)."""


class TypeMismatchError(ReproError, TypeError):
    """Operands carry incompatible value types for the requested semiring."""


class CompileError(ReproError, ValueError):
    """The dataflow compiler or static verifier rejected a tensor
    program (e.g. no OEI subgraph where one was required, or an
    unfusable e-wise group)."""


class ScheduleError(ReproError, RuntimeError):
    """The OEI scheduler or the Sparsepipe pipeline reached an
    inconsistent state (a bug, not a user error)."""


class BufferError_(ReproError, RuntimeError):
    """The on-chip buffer model was asked to do something impossible,
    such as freeing space that was never reserved."""


class ConfigError(ReproError, ValueError):
    """An architecture or experiment configuration is invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration cap."""


class WatchdogTimeout(ReproError, TimeoutError):
    """A supervised sweep item exceeded its per-item watchdog budget
    (:mod:`repro.resilience.supervisor`)."""


class InjectedFault(ReproError, RuntimeError):
    """A deterministic chaos fault (:mod:`repro.resilience.faults`)
    fired at an instrumented site. Never raised in production runs —
    only while a :class:`~repro.resilience.faults.FaultPlan` is
    active."""


class ServiceError(ReproError, RuntimeError):
    """A simulation-service request was invalid or could not be served
    (:mod:`repro.service`): unknown job id, malformed submission, a
    protocol error, or an error response from the daemon."""
