"""Exception hierarchy for the Sparsepipe reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes."""


class FormatError(ReproError, ValueError):
    """A sparse tensor is structurally invalid (bad indptr, unsorted
    indices, out-of-range coordinates, ...)."""


class TypeMismatchError(ReproError, TypeError):
    """Operands carry incompatible value types for the requested semiring."""


class CompileError(ReproError, ValueError):
    """The dataflow compiler rejected a tensor program (e.g. no OEI
    subgraph where one was required, or an unfusable e-wise group)."""


class ScheduleError(ReproError, RuntimeError):
    """The OEI scheduler or the Sparsepipe pipeline reached an
    inconsistent state (a bug, not a user error)."""


class BufferError_(ReproError, RuntimeError):
    """The on-chip buffer model was asked to do something impossible,
    such as freeing space that was never reserved."""


class ConfigError(ReproError, ValueError):
    """An architecture or experiment configuration is invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration cap."""
