"""The metrics registry: one schema for every architecture's numbers.

Every simulated run — Sparsepipe or any baseline in the engine
registry — reports through the same named metrics so sweeps, figure
drivers, and CI can read one catalogue instead of poking at per-model
result fields:

- counters (monotone totals): ``sim.cycles``, ``sim.compute_ops``,
  ``dram.bytes.<category>`` for every
  :data:`~repro.arch.stats.TRAFFIC_CATEGORIES` entry,
  ``buffer.evicted_bytes``, ``buffer.repack_events``,
  ``prefetch.bytes`` / ``prefetch.events``,
  ``pipeline.busy_cycles.<stage>`` / ``pipeline.stall_cycles.<stage>``,
- gauges (last-value): ``buffer.peak_bytes``,
  ``bandwidth.utilization``, ``prefetch.hit_ratio``,
- histograms: ``step.cycles`` (per-step duration distribution).

Two producers fill a registry:

- :func:`registry_from_result` derives the schema from a final
  :class:`~repro.arch.stats.SimResult` — works for every registered
  architecture, no instrumentation required;
- :class:`MetricsObserver` accumulates the same counters live from the
  simulator event stream (:mod:`repro.engine.instrumentation`) — the
  conservation suite asserts the two can never drift.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.stats import TRAFFIC_CATEGORIES, SimResult, TrafficBreakdown
from repro.engine.instrumentation import FILL_STEP, Observer, ReplayBatch

#: Default histogram bucket upper bounds (cycles), roughly exponential.
DEFAULT_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0)

#: Pipeline stage keys the simulator reports in ``stage_cycles``.
STAGE_KEYS = ("os", "ewise", "is", "extra", "memory")


def dram_metric(category: str) -> str:
    """Canonical counter name for one DRAM traffic category."""
    return f"dram.bytes.{category}"


def prefetch_hit_ratio(traffic: TrafficBreakdown) -> float:
    """Fraction of row traffic served by the eager prefetcher rather
    than ping-pong reloads (Fig 9 vs Fig 15d); delegates to
    :attr:`TrafficBreakdown.prefetch_hit_ratio`."""
    return traffic.prefetch_hit_ratio


class Counter:
    """Monotone non-decreasing total."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "value": float(self.value)}


class Gauge:
    """Last-observed value (may move in either direction)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum — peak gauges across a sweep."""
        self.value = max(self.value, float(value))

    def to_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "value": float(self.value)}


class Histogram:
    """Fixed-bucket distribution with a +Inf overflow bucket."""

    __slots__ = ("name", "help", "buckets", "counts", "total", "count")
    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        labels = [str(b) for b in self.buckets] + ["+Inf"]
        return {
            "type": self.kind,
            "buckets": dict(zip(labels, self.counts)),
            "sum": float(self.total),
            "count": int(self.count),
        }


class MetricsRegistry:
    """Named counters / gauges / histograms, get-or-create semantics.

    Registration order is preserved so text and JSON emitters — and the
    registry :meth:`digest` — are deterministic for a deterministic run.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    # Introspection and emitters
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str):
        """The metric object registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge, ``default`` when absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return float(metric.total)
        return float(metric.value)

    def dram_bytes_total(self) -> float:
        """Summed DRAM byte counters, in canonical category order (so
        the float sum is bit-identical to
        :attr:`TrafficBreakdown.total_bytes`)."""
        return sum(self.value(dram_metric(c)) for c in TRAFFIC_CATEGORIES)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-JSON document: one entry per metric, emission order."""
        return {name: m.to_dict() for name, m in self._metrics.items()}

    def format_text(self) -> str:
        """Aligned ``name value`` lines (histograms show sum/count)."""
        lines = []
        width = max((len(n) for n in self._metrics), default=0)
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                val = f"sum={metric.total:.6g} count={metric.count}"
            else:
                val = f"{metric.value:.6g}"
            lines.append(f"{name:<{width}}  {val}")
        return "\n".join(lines)

    def digest(self) -> str:
        """Deterministic content hash of every metric value."""
        doc = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Producers
# ----------------------------------------------------------------------
def registry_from_result(
    result: SimResult, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Fill ``registry`` (or a fresh one) with the one-schema metrics
    derived from a final :class:`SimResult`.

    This is the path *every* registered architecture reports through,
    including baselines that emit no instrumentation events; calling it
    repeatedly on one registry aggregates a sweep (counters add, peak
    gauges keep their maximum).
    """
    reg = MetricsRegistry() if registry is None else registry
    reg.counter("sim.runs", "simulated runs recorded").inc()
    reg.counter("sim.cycles", "total simulated cycles").inc(result.cycles)
    reg.counter("sim.compute_ops", "total PE operations").inc(result.compute_ops)
    for cat in TRAFFIC_CATEGORIES:
        reg.counter(
            dram_metric(cat), f"DRAM bytes moved in category {cat!r}"
        ).inc(result.traffic.bytes_by_category[cat])
    reg.counter("buffer.evicted_bytes", "bytes spilled under OOM").inc(
        result.oom_evicted_bytes
    )
    reg.counter("buffer.repack_events", "buffer compactions").inc(
        result.repack_events
    )
    reg.gauge("buffer.peak_bytes", "peak on-chip occupancy").set_max(
        result.buffer_peak_bytes
    )
    reg.gauge("bandwidth.utilization", "whole-run DRAM utilization").set(
        result.bandwidth_utilization
    )
    reg.gauge("prefetch.hit_ratio", "eager / (eager + reload) row bytes").set(
        prefetch_hit_ratio(result.traffic)
    )
    return reg


class MetricsObserver(Observer):
    """Accumulates the metric schema live from the simulator's event
    stream; :meth:`finalize` adds the result-derived gauges so the
    registry matches :func:`registry_from_result` on the shared names.

    Byte and cycle counters are incremented in exactly the order the
    simulator accounts them, so their totals equal the simulator's own
    accumulators bit-for-bit (the conservation suite's invariant).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = MetricsRegistry() if registry is None else registry
        reg = self.registry
        self._cycles = reg.counter("sim.cycles", "total simulated cycles")
        self._steps = reg.counter("sim.steps", "pipeline steps committed")
        # Canonical order up front: the registry's category iteration
        # order never depends on which category fired first.
        self._dram = {
            cat: reg.counter(dram_metric(cat), f"DRAM bytes in {cat!r}")
            for cat in TRAFFIC_CATEGORIES
        }
        self._step_hist = reg.histogram("step.cycles", help="per-step duration")
        self._evict_bytes = reg.counter("buffer.evicted_bytes")
        self._evict_events = reg.counter("buffer.evict_events")
        self._repacks = reg.counter("buffer.repack_events")
        self._prefetch_bytes = reg.counter("prefetch.bytes")
        self._prefetch_events = reg.counter("prefetch.events")
        self._busy = {
            s: reg.counter(f"pipeline.busy_cycles.{s}") for s in STAGE_KEYS
        }
        self._stall = {
            s: reg.counter(f"pipeline.stall_cycles.{s}") for s in STAGE_KEYS
        }

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        self._cycles.inc(cycles)
        if step != FILL_STEP:
            self._steps.inc()
        self._step_hist.observe(cycles)
        if stage_cycles:
            for stage, busy in stage_cycles.items():
                if stage in self._busy:
                    self._busy[stage].inc(busy)
                    self._stall[stage].inc(max(0.0, cycles - busy))

    def on_transfer(self, category, n_bytes) -> None:
        self._dram[category].inc(n_bytes)

    def on_evict(self, step, n_bytes) -> None:
        self._evict_events.inc()
        self._evict_bytes.inc(n_bytes)

    def on_repack(self, step) -> None:
        self._repacks.inc()

    def on_prefetch(self, step, n_bytes) -> None:
        self._prefetch_events.inc()
        self._prefetch_bytes.inc(n_bytes)

    # ------------------------------------------------------------------
    # Batched replay (vectorized backend)
    # ------------------------------------------------------------------
    def on_replay(self, batch: ReplayBatch) -> None:
        """Consume one synthesized batch wholesale, via its columns.

        Float counters must end on the *same* float the per-event
        ``inc`` chain produces, so every per-counter column is folded
        with ``cumsum`` seeded by the current value — a strict in-order
        left fold, never a re-associated grouping (columns include the
        zero amounts the reference hooks skip; adding them is the float
        identity). Pure event *counts* collapse to one addition (exact
        for integers in float64).
        """
        cols = batch.column_data()
        fold = self._fold_counter
        cyc = cols["cycles"]
        fold(self._cycles, cyc)
        if cols["n_real"]:
            self._steps.value += cols["n_real"]
        self._observe_hist(batch, cyc)
        for stage, busy, stall in cols["stages"]:
            counter = self._busy.get(stage)
            if counter is not None:
                fold(counter, busy)
                fold(self._stall[stage], stall)
        for cat, amounts in cols["dram"]:
            fold(self._dram[cat], amounts)
        if cols["n_evict"]:
            self._evict_events.value += cols["n_evict"]
        fold(self._evict_bytes, cols["evict"])
        if cols["n_repack"]:
            self._repacks.value += cols["n_repack"]
        if cols["n_prefetch"]:
            self._prefetch_events.value += cols["n_prefetch"]
        fold(self._prefetch_bytes, cols["prefetch"])

    @staticmethod
    def _fold_counter(counter: Counter, amounts: np.ndarray) -> None:
        """``counter.inc(a)`` for each amount, as one cumsum (the same
        sequential left fold, bit for bit)."""
        if amounts.size:
            buf = np.empty(amounts.size + 1)
            buf[0] = counter.value
            buf[1:] = amounts
            counter.value = float(buf.cumsum()[-1])

    def _observe_hist(self, batch: ReplayBatch, cyc: np.ndarray) -> None:
        hist = self._step_hist
        if not cyc.size:
            return
        # Bucket assignment depends on the histogram's bounds (a shared
        # registry may have pre-registered custom ones), so the bincount
        # is cached on the batch per bounds tuple.
        counts = batch.cache.get(("hist", hist.buckets))
        if counts is None:
            # observe() takes the first bound with value <= bound, which
            # is exactly searchsorted's left insertion point.
            idx = np.searchsorted(
                np.asarray(hist.buckets), cyc, side="left"
            )
            counts = np.bincount(idx, minlength=len(hist.buckets) + 1).tolist()
            batch.cache[("hist", hist.buckets)] = counts
        buf = np.empty(cyc.size + 1)
        buf[0] = hist.total
        buf[1:] = cyc
        hist.total = float(buf.cumsum()[-1])
        hist.count += cyc.size
        hist_counts = hist.counts
        for i, n in enumerate(counts):
            if n:
                hist_counts[i] += n

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, result: SimResult) -> MetricsRegistry:
        """Add the result-derived gauges the event stream cannot see."""
        reg = self.registry
        reg.gauge("buffer.peak_bytes").set_max(result.buffer_peak_bytes)
        reg.gauge("bandwidth.utilization").set(result.bandwidth_utilization)
        reg.gauge("prefetch.hit_ratio").set(prefetch_hit_ratio(result.traffic))
        return reg
