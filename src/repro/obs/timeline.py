"""Per-stage timeline capture and Chrome/Perfetto ``trace_event`` export.

:class:`TimelineObserver` subscribes to the simulator event stream
(:mod:`repro.engine.instrumentation`) and rebuilds the lock-step
pipeline of Fig 13 as a timeline: one *pipeline* track of step spans,
one track per compute stage (OS, E-Wise, IS, extra) showing its busy
cycles inside each step, a *DRAM channel* track, a *loaders* track of
eager-prefetch instants (Fig 9), and a *buffer* track of evict/repack
instants (Fig 15d's ping-pong). Timestamps are **simulated cycles**
(the trace metadata says so); per track they are monotone by
construction because the cursor only ever advances by each committed
step's duration.

``to_chrome_trace()`` emits the Trace Event Format JSON that both
``chrome://tracing`` and https://ui.perfetto.dev load directly;
:func:`validate_chrome_trace` is the schema check the test suite (and
CI) run over every exported document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.arch.stats import TRAFFIC_CATEGORIES
from repro.engine.instrumentation import FILL_STEP, Observer, ReplayBatch

#: Process id for the simulated Sparsepipe instance.
TRACE_PID = 1

#: Track (thread) ids, rendering top-to-bottom like Fig 13.
TRACK_IDS = {
    "pipeline": 1,
    "os": 2,
    "ewise": 3,
    "is": 4,
    "extra": 5,
    "dram": 6,
    "loaders": 7,
    "buffer": 8,
}

#: Human-readable track names emitted as thread_name metadata.
TRACK_NAMES = {
    "pipeline": "pipeline steps",
    "os": "OS core",
    "ewise": "E-Wise core",
    "is": "IS core",
    "extra": "extra ops",
    "dram": "DRAM channel",
    "loaders": "eager CSR loader",
    "buffer": "on-chip buffer",
}

#: stage_cycles keys -> track keys (memory renders on the DRAM track).
_STAGE_TRACK = {
    "os": "os", "ewise": "ewise", "is": "is", "extra": "extra",
    "memory": "dram",
}


class TimelineObserver(Observer):
    """Builds the per-core/per-stage timeline of one simulated run.

    Within-step events (transfer / prefetch / evict / repack) arrive
    *before* their closing ``step`` event, so they are buffered and
    stamped with the step's start cycle when it commits — the exported
    order is deterministic for a deterministic run.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.total_cycles = 0.0
        self.steps = 0
        self.bytes_by_category: Dict[str, float] = {
            c: 0.0 for c in TRAFFIC_CATEGORIES
        }
        self._pending_moved: Dict[str, float] = {}
        self._pending_instants: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_transfer(self, category, n_bytes) -> None:
        self._pending_moved[category] = (
            self._pending_moved.get(category, 0.0) + n_bytes
        )
        self.bytes_by_category[category] += n_bytes

    def on_prefetch(self, step, n_bytes) -> None:
        self._pending_instants.append(
            self._instant("prefetch", "loaders", {"bytes": float(n_bytes)})
        )

    def on_evict(self, step, n_bytes) -> None:
        self._pending_instants.append(
            self._instant("evict", "buffer", {"bytes": float(n_bytes)})
        )

    def on_repack(self, step) -> None:
        self._pending_instants.append(self._instant("repack", "buffer", {}))

    def on_step(self, step, cycles, moved, stage_cycles=None) -> None:
        start = self.total_cycles
        name = "fill" if step == FILL_STEP else f"step {step}"
        self.events.append(self._span(name, "pipeline", start, cycles, {
            "step": int(step), "moved_bytes": float(sum(moved.values())),
        }))
        if stage_cycles:
            for stage, busy in stage_cycles.items():
                track = _STAGE_TRACK.get(stage)
                if track is not None and busy > 0.0:
                    self.events.append(
                        self._span(stage, track, start, busy, {})
                    )
        if self._pending_moved or step != FILL_STEP:
            counts = {c: self._pending_moved.get(c, 0.0)
                      for c in TRAFFIC_CATEGORIES}
            self.events.append({
                "name": "dram bytes", "ph": "C", "ts": start,
                "pid": TRACE_PID, "tid": TRACK_IDS["dram"],
                "cat": "traffic", "args": counts,
            })
        for instant in self._pending_instants:
            instant["ts"] = start
            self.events.append(instant)
        self._pending_moved = {}
        self._pending_instants = []
        self.total_cycles += cycles
        if step != FILL_STEP:
            self.steps += 1

    # ------------------------------------------------------------------
    # Batched replay (vectorized backend)
    # ------------------------------------------------------------------
    def on_replay(self, batch: ReplayBatch) -> None:
        """Consume one synthesized batch wholesale.

        The timestamp sequence is the same sequential ``total_cycles +=
        cycles`` fold the per-event hooks perform — a seeded ``cumsum``,
        never a re-associated base-plus-offset — so the exported
        document is byte-identical to the reference stream's. The event
        dicts built on a batch's first replay double as its template
        (cached on the batch); later replays copy and restamp them
        instead of rebuilding.
        """
        cols = batch.column_data()
        cyc = cols["cycles"]
        buf = np.empty(cyc.size + 1)
        buf[0] = self.total_cycles
        buf[1:] = cyc
        ends = buf.cumsum().tolist()
        events = self.events
        tmpl = batch.cache.get("timeline")
        if tmpl is None:
            tmpl = self._first_replay(batch, ends, events)
            batch.cache["timeline"] = tmpl
        else:
            for j, proto in tmpl:
                ev = dict(proto)
                ev["ts"] = ends[j]
                events.append(ev)
        by_cat = self.bytes_by_category
        for cat, amounts in cols["dram"]:
            # Same in-order adds as on_transfer; any zero amounts the
            # hooks skip are the float-addition identity here.
            if amounts.size:
                fold = np.empty(amounts.size + 1)
                fold[0] = by_cat[cat]
                fold[1:] = amounts
                by_cat[cat] = float(fold.cumsum()[-1])
        self.total_cycles = ends[-1]
        self.steps += cols["n_real"]

    def _first_replay(self, batch: ReplayBatch, ends: List[float],
                      events: List[Dict[str, object]]) -> list:
        """Build the batch's events directly into ``events`` (stamped
        with this observer's cursor) while recording ``(step_index,
        event)`` template pairs for later replays to copy."""
        tmpl: List = []
        pid, tids = TRACE_PID, TRACK_IDS
        for j, (step, cycles, prefetch, transfers, evict, repack,
                moved, stage_cycles) in enumerate(batch.steps):
            start = ends[j]
            fill = step == FILL_STEP
            ev: Dict[str, object] = {
                "name": "fill" if fill else f"step {step}",
                "ph": "X", "ts": start, "dur": float(cycles), "pid": pid,
                "tid": tids["pipeline"], "cat": "sim",
                "args": {"step": int(step),
                         "moved_bytes": float(sum(moved.values()))},
            }
            tmpl.append((j, ev))
            events.append(ev)
            if stage_cycles:
                for stage, busy in stage_cycles.items():
                    track = _STAGE_TRACK.get(stage)
                    if track is not None and busy > 0.0:
                        ev = {
                            "name": stage, "ph": "X", "ts": start,
                            "dur": float(busy), "pid": pid,
                            "tid": tids[track], "cat": "sim", "args": {},
                        }
                        tmpl.append((j, ev))
                        events.append(ev)
            if transfers or not fill:
                pending: Dict[str, float] = {}
                for cat, val in transfers:
                    pending[cat] = pending.get(cat, 0.0) + val
                ev = {
                    "name": "dram bytes", "ph": "C", "ts": start,
                    "pid": pid, "tid": tids["dram"], "cat": "traffic",
                    "args": {c: pending.get(c, 0.0)
                             for c in TRAFFIC_CATEGORIES},
                }
                tmpl.append((j, ev))
                events.append(ev)
            # Instants flush in arrival order: the loop fires prefetch
            # before transfers, evict after them, repack last.
            if prefetch:
                ev = {"name": "prefetch", "ph": "i", "ts": start,
                      "s": "t", "pid": pid, "tid": tids["loaders"],
                      "cat": "sim", "args": {"bytes": float(prefetch)}}
                tmpl.append((j, ev))
                events.append(ev)
            if evict:
                ev = {"name": "evict", "ph": "i", "ts": start, "s": "t",
                      "pid": pid, "tid": tids["buffer"], "cat": "sim",
                      "args": {"bytes": float(evict)}}
                tmpl.append((j, ev))
                events.append(ev)
            if repack:
                ev = {"name": "repack", "ph": "i", "ts": start, "s": "t",
                      "pid": pid, "tid": tids["buffer"], "cat": "sim",
                      "args": {}}
                tmpl.append((j, ev))
                events.append(ev)
        return tmpl

    # ------------------------------------------------------------------
    # Event constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _span(name, track, ts, dur, args) -> Dict[str, object]:
        return {
            "name": name, "ph": "X", "ts": float(ts), "dur": float(dur),
            "pid": TRACE_PID, "tid": TRACK_IDS[track], "cat": "sim",
            "args": args,
        }

    @staticmethod
    def _instant(name, track, args) -> Dict[str, object]:
        # ts is stamped at flush time (step commit).
        return {
            "name": name, "ph": "i", "ts": 0.0, "s": "t",
            "pid": TRACE_PID, "tid": TRACK_IDS[track], "cat": "sim",
            "args": args,
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def total_bytes(self) -> float:
        """Summed exported DRAM bytes, in canonical category order (so
        the float sum matches ``TrafficBreakdown.total_bytes`` exactly)."""
        return sum(self.bytes_by_category[c] for c in TRAFFIC_CATEGORIES)

    def _metadata_events(self) -> List[Dict[str, object]]:
        out = [{
            "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
            "args": {"name": "sparsepipe-sim"},
        }]
        for track, tid in TRACK_IDS.items():
            out.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": TRACK_NAMES[track]},
            })
        return out

    def to_chrome_trace(
        self, manifest: Optional[object] = None
    ) -> Dict[str, object]:
        """The full Trace Event Format document.

        ``manifest`` (a :class:`~repro.obs.manifest.RunManifest`)
        embeds its *stable* fields — never wall-time — so the document
        is byte-identical across reruns of the same configuration.
        """
        metadata: Dict[str, object] = {
            "tsUnit": "cycles",
            "totalCycles": float(self.total_cycles),
            "steps": int(self.steps),
        }
        if manifest is not None:
            metadata["manifest"] = manifest.stable_dict()
            metadata["manifestDigest"] = manifest.digest()
        return {
            "traceEvents": self._metadata_events() + self.events,
            "displayTimeUnit": "ns",
            "metadata": metadata,
        }

    def write(
        self, path: Union[str, Path], manifest: Optional[object] = None
    ) -> Path:
        """Write the trace JSON deterministically (sorted keys)."""
        path = Path(path)
        doc = self.to_chrome_trace(manifest)
        path.write_text(json.dumps(doc, sort_keys=True, indent=1))
        return path


# ----------------------------------------------------------------------
# Schema validation (used by the test suite and CI)
# ----------------------------------------------------------------------
REQUIRED_EVENT_FIELDS = ("name", "ph", "pid", "tid")


def validate_chrome_trace(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Check a document against the Trace Event Format contract.

    Raises ``ValueError`` naming the first violation; returns the event
    list on success. Checks: the ``traceEvents`` envelope; required
    ``ph``/``pid``/``tid`` fields; ``ts`` on every non-metadata event
    plus ``dur`` on complete (``"X"``) events; and per-track monotone
    non-decreasing timestamps.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    last_ts: Dict[object, float] = {}
    for i, ev in enumerate(events):
        for field in REQUIRED_EVENT_FIELDS:
            if field not in ev:
                raise ValueError(f"event {i} missing required field {field!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if "ts" not in ev:
            raise ValueError(f"event {i} ({ev['name']!r}) missing 'ts'")
        if ph == "X" and "dur" not in ev:
            raise ValueError(f"complete event {i} ({ev['name']!r}) missing 'dur'")
        ts = float(ev["ts"])
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, 0.0):
            raise ValueError(
                f"event {i} ({ev['name']!r}) breaks timestamp monotonicity "
                f"on track {track}: {ts} < {last_ts[track]}"
            )
        last_ts[track] = ts
    return events
