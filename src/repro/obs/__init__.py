"""The observability layer: durable, queryable artifacts from the
simulator event stream.

Three concerns, one package:

- :mod:`repro.obs.timeline` — :class:`TimelineObserver` rebuilds the
  per-core/per-stage pipeline timeline and exports Chrome/Perfetto
  ``trace_event`` JSON (``python -m repro trace``),
- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of named
  counters/gauges/histograms every architecture reports through, fed
  either live (:class:`MetricsObserver`) or from a final result
  (:func:`registry_from_result`),
- :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  (config hash, seed, git rev, metrics digest, wall-time) attached to
  every cached and fresh result.

See ``docs/observability.md`` for the metric catalogue, the trace
loading instructions, and the manifest schema.
"""

from repro.obs.capture import CaptureResult, capture_run
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    Stopwatch,
    build_manifest,
    git_revision,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    dram_metric,
    prefetch_hit_ratio,
    registry_from_result,
)
from repro.obs.timeline import (
    TimelineObserver,
    validate_chrome_trace,
)

__all__ = [
    "CaptureResult",
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MetricsObserver",
    "MetricsRegistry",
    "RunManifest",
    "Stopwatch",
    "TimelineObserver",
    "build_manifest",
    "capture_run",
    "dram_metric",
    "git_revision",
    "prefetch_hit_ratio",
    "registry_from_result",
    "validate_chrome_trace",
]
