"""Run manifests: who produced a result, from what, and when.

Every simulated (or cache-served) result can carry a
:class:`RunManifest` recording the configuration content hash
(:meth:`SparsepipeConfig.cache_key`), the preprocessing knobs, the
seed, the git revision of the producing tree, the simulator cache
:data:`~repro.engine.cache.CODE_VERSION`, a digest of the run's
metrics, and the wall-clock time spent producing it. Manifests make
cached and fresh results distinguishable (``from_cache``) and
auditable: two manifests with equal :meth:`~RunManifest.digest` came
from the same code, configuration, and measured behavior.

The digest covers only the *stable* fields — wall-time and the
``from_cache`` flag are recorded but excluded — so a rerun of the same
configuration produces an identical digest, which is exactly the
determinism contract the test suite locks.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, registry_from_result

#: Manifest wire-format version; bump on incompatible field changes.
MANIFEST_SCHEMA = 1

_GIT_REV: Optional[str] = None
_GIT_REV_PROBED = False


def git_revision() -> Optional[str]:
    """Short git revision of the source tree, ``None`` outside a
    checkout (or without a ``git`` binary). Probed once per process."""
    global _GIT_REV, _GIT_REV_PROBED
    if not _GIT_REV_PROBED:
        _GIT_REV_PROBED = True
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=5,
            )
            _GIT_REV = out.stdout.strip() or None if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = None
    return _GIT_REV


@dataclass(frozen=True)
class RunManifest:
    """Provenance record attached to one simulation result."""

    arch: str
    workload: str
    matrix: str
    config_key: str                   #: SparsepipeConfig.cache_key()
    reorder: Optional[str]
    block_size: Optional[int]
    code_version: str
    metrics_digest: str
    seed: Optional[int] = None
    git_rev: Optional[str] = None
    wall_time_s: Optional[float] = None
    from_cache: bool = False
    #: True when this result was served by coalescing the request onto
    #: another identical in-flight submission (:mod:`repro.service`) —
    #: the simulation ran once and fanned out to every waiter. Like
    #: ``from_cache``, serving provenance, not run identity.
    coalesced: bool = False
    #: How the point got its result: ``"ok"`` (clean first attempt),
    #: ``"retried"`` (succeeded after SP601/SP602 degradation), or
    #: ``"failed"`` (exhausted its attempts; no result exists and
    #: ``metrics_digest`` is empty). Partial sweeps are first-class:
    #: failed points keep a manifest even though they have no result.
    status: str = "ok"
    #: SP6xx fault records (:meth:`repro.errors.Diagnostic.as_dict`
    #: dicts) behind a non-``"ok"`` status — pool breaks, retries,
    #: quarantined cache entries, injected faults.
    faults: Tuple[Dict[str, object], ...] = ()
    schema: int = MANIFEST_SCHEMA

    #: Fields excluded from the deterministic digest: measurement
    #: noise and serving/failure provenance, not run identity — a
    #: sweep that survived a worker death must digest identically to
    #: an undisturbed one.
    _UNSTABLE = ("wall_time_s", "from_cache", "coalesced", "status", "faults")

    def stable_dict(self) -> Dict[str, object]:
        """Every identity-bearing field, JSON-plain."""
        doc = asdict(self)
        for field in self._UNSTABLE:
            doc.pop(field, None)
        return doc

    def digest(self) -> str:
        """Deterministic content hash over the stable fields."""
        doc = json.dumps(self.stable_dict(), sort_keys=True)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """Full JSON representation (includes the digest for auditing)."""
        doc = asdict(self)
        doc["digest"] = self.digest()
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "RunManifest":
        doc = {k: v for k, v in doc.items() if k != "digest"}
        # JSON round-trips tuples as lists; restore the frozen form.
        doc["faults"] = tuple(dict(f) for f in doc.get("faults", ()))
        return cls(**doc)

    def served_from_cache(self) -> "RunManifest":
        """This manifest, marked as a cache hit (digest unchanged)."""
        return replace(self, from_cache=True)

    def served_coalesced(self) -> "RunManifest":
        """This manifest, marked as served by request coalescing
        (digest unchanged)."""
        return replace(self, coalesced=True)


def build_manifest(
    arch: str,
    workload: str,
    matrix: str,
    config,
    reorder: Optional[str],
    block_size: Optional[int],
    result=None,
    registry: Optional[MetricsRegistry] = None,
    seed: Optional[int] = None,
    wall_time_s: Optional[float] = None,
    from_cache: bool = False,
    status: str = "ok",
    faults: Sequence[Dict[str, object]] = (),
) -> RunManifest:
    """Assemble the manifest for one run.

    The metrics digest comes from ``registry`` when the caller already
    accumulated one (e.g. a :class:`~repro.obs.metrics.MetricsObserver`
    run), else is derived from ``result`` through
    :func:`registry_from_result` — one of the two must be given,
    except for ``status="failed"`` manifests, which have no result to
    digest.
    """
    if registry is None and status != "failed":
        if result is None:
            raise ValueError("build_manifest needs a result or a registry")
        registry = registry_from_result(result)
    from repro.engine.cache import CODE_VERSION  # lazy: cache imports us

    return RunManifest(
        arch=str(arch),
        workload=str(workload),
        matrix=str(matrix),
        config_key=config.cache_key() if hasattr(config, "cache_key") else str(config),
        reorder=reorder,
        block_size=block_size,
        code_version=CODE_VERSION,
        metrics_digest="" if registry is None else registry.digest(),
        seed=seed,
        git_rev=git_revision(),
        wall_time_s=wall_time_s,
        from_cache=from_cache,
        status=status,
        faults=tuple(dict(f) for f in faults),
    )


class Stopwatch:
    """Tiny wall-clock timer for manifest ``wall_time_s`` fields."""

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
