"""One-call trace capture: run a workload with full observability.

``capture_run`` wires a :class:`~repro.obs.timeline.TimelineObserver`
and a :class:`~repro.obs.metrics.MetricsObserver` into one simulated
run and returns the result, the timeline, the filled metrics registry,
and the run manifest — the engine behind ``python -m repro trace``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.arch.config import SparsepipeConfig
from repro.arch.stats import SimResult
from repro.engine.registry import get_arch, run_engine
from repro.errors import ConfigError
from repro.graphblas.matrix import Matrix
from repro.matrices.suite import SUITE, load_suite_matrix
from repro.obs.manifest import RunManifest, Stopwatch, build_manifest
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.timeline import TimelineObserver
from repro.preprocess.pipeline import preprocess
from repro.workloads.registry import get_workload


@dataclass
class CaptureResult:
    """Everything one observed run produced."""

    result: SimResult
    timeline: TimelineObserver
    metrics: MetricsRegistry
    manifest: RunManifest

    def write_trace(self, path: Union[str, Path]) -> Tuple[Path, Path]:
        """Write the Chrome trace JSON plus a sidecar manifest file
        (``<name>.manifest.json``); returns both paths."""
        trace_path = self.timeline.write(path, manifest=self.manifest)
        manifest_path = trace_path.with_name(
            trace_path.stem + ".manifest.json"
        )
        manifest_path.write_text(
            json.dumps(self.manifest.to_dict(), sort_keys=True, indent=1)
        )
        return trace_path, manifest_path


def capture_run(
    workload: str,
    matrix: str = "gy",
    arch: str = "sparsepipe",
    config: Optional[SparsepipeConfig] = None,
    reorder: Optional[str] = "vanilla",
    block_size: Optional[int] = 256,
    seed: int = 0,
) -> CaptureResult:
    """Simulate one (workload, matrix) with observers attached.

    Only architectures registered ``observable=True`` stream
    instrumentation events; asking for any other raises
    :class:`~repro.errors.ConfigError` up front instead of silently
    returning an empty timeline.
    """
    spec = get_arch(arch)
    if not spec.observable:
        raise ConfigError(
            f"[SP907] architecture {arch!r} does not stream instrumentation "
            f"events; 'trace' supports observable engines only"
        )
    cfg = config or SparsepipeConfig()
    profile = get_workload(workload).profile(Matrix(load_suite_matrix(matrix)))
    prep = preprocess(
        load_suite_matrix(matrix), reorder=reorder, block_size=block_size
    )
    timeline = TimelineObserver()
    metrics_obs = MetricsObserver()
    with Stopwatch() as watch:
        result = run_engine(
            arch, cfg, profile, prep, paper_nnz=SUITE[matrix].paper_nnz,
            observers=[timeline, metrics_obs],
        )
    registry = metrics_obs.finalize(result)
    manifest = build_manifest(
        arch, workload, matrix, cfg, reorder, block_size,
        registry=registry, seed=seed, wall_time_s=watch.elapsed,
    )
    return CaptureResult(
        result=result, timeline=timeline, metrics=registry, manifest=manifest
    )
