"""GraphBLAS-mini operations.

Every operation is out-of-place (inputs are never mutated) and takes an
optional :class:`Mask` plus an optional accumulator binary op, mirroring
the C API shape ``op(out, mask, accum, ...)`` without in-place mutation.

``vxm`` traverses the CSC image (the paper's OS orientation) and ``mxv``
the CSR image (IS orientation); both compute the same contraction.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ShapeError
from repro.formats.coo import COOMatrix
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.semiring import kernels
from repro.semiring.binaryops import BinaryOp
from repro.semiring.monoids import Monoid
from repro.semiring.semirings import MUL_ADD, Semiring
from repro.semiring.unaryops import UnaryOp


def _segment_reduce(
    monoid: Monoid,
    values: np.ndarray,
    segment_ids: np.ndarray,
    n_segments: int,
    kernel: str,
) -> np.ndarray:
    """Semiring reduction dispatch for the contraction kernels.

    ``segment_ids`` is sorted ascending in every caller (it is a
    compressed-index expansion), which is what licenses the batched
    ``reduceat`` paths of :mod:`repro.semiring.kernels`.
    """
    kernels.check_kernel(kernel)
    if kernel == "batched":
        return kernels.segment_reduce(monoid, values, segment_ids, n_segments)
    return monoid.segment_reduce(values, segment_ids, n_segments)


def _finalize(
    raw_values: np.ndarray,
    raw_present: np.ndarray,
    mask: Optional[Mask],
    accum: Optional[BinaryOp],
    out: Optional[Vector],
) -> Vector:
    """Apply mask and accumulator to a raw result.

    The mask limits which computed entries land in the output; with an
    accumulator, stored entries of ``out`` outside the computed/masked
    region survive and overlapping entries combine via ``accum``.
    """
    size = raw_values.size
    writable = mask.allowed(size) if mask is not None else np.ones(size, dtype=bool)
    landing = raw_present & writable

    if accum is None or out is None:
        result = Vector.empty(size)
        result.values[landing] = raw_values[landing]
        result.present[landing] = True
        if accum is None and out is not None and mask is not None:
            # Masked write without accumulator keeps out's entries
            # outside the mask (GraphBLAS non-replace semantics).
            keep = out.present & ~writable
            result.values[keep] = out.values[keep]
            result.present[keep] = True
        return result

    if out.size != size:
        raise ShapeError(f"out size {out.size} does not match result size {size}")
    result = out.dup()
    both = landing & out.present
    fresh = landing & ~out.present
    result.values[both] = accum(out.values[both], raw_values[both])
    result.values[fresh] = raw_values[fresh]
    result.present[fresh] = True
    return result


# ----------------------------------------------------------------------
# Matrix-vector contractions
# ----------------------------------------------------------------------
def vxm(
    v: Vector,
    a: Matrix,
    semiring: Semiring = MUL_ADD,
    mask: Optional[Mask] = None,
    accum: Optional[BinaryOp] = None,
    out: Optional[Vector] = None,
    kernel: str = "batched",
) -> Vector:
    """``w = v^T A`` over ``semiring`` — output element ``j`` reduces the
    products of stored ``v[i]`` with stored ``A[i, j]`` down column ``j``."""
    if v.size != a.nrows:
        raise ShapeError(f"vector size {v.size} does not match nrows {a.nrows}")
    csc = a.csc
    col_ids = np.repeat(np.arange(a.ncols, dtype=np.int64), csc.col_nnz())
    contributes = v.present[csc.indices]
    rows = csc.indices[contributes]
    cols = col_ids[contributes]
    products = semiring.mul(v.values[rows], csc.data[contributes])
    raw_values = _segment_reduce(semiring.add, products, cols, a.ncols, kernel)
    raw_present = np.zeros(a.ncols, dtype=bool)
    raw_present[cols] = True
    return _finalize(raw_values, raw_present, mask, accum, out)


def mxv(
    a: Matrix,
    v: Vector,
    semiring: Semiring = MUL_ADD,
    mask: Optional[Mask] = None,
    accum: Optional[BinaryOp] = None,
    out: Optional[Vector] = None,
    kernel: str = "batched",
) -> Vector:
    """``w = A v`` over ``semiring`` — the row-oriented dual of :func:`vxm`."""
    if v.size != a.ncols:
        raise ShapeError(f"vector size {v.size} does not match ncols {a.ncols}")
    csr = a.csr
    row_ids = np.repeat(np.arange(a.nrows, dtype=np.int64), csr.row_nnz())
    contributes = v.present[csr.indices]
    cols = csr.indices[contributes]
    rows = row_ids[contributes]
    products = semiring.mul(csr.data[contributes], v.values[cols])
    raw_values = _segment_reduce(semiring.add, products, rows, a.nrows, kernel)
    raw_present = np.zeros(a.nrows, dtype=bool)
    raw_present[rows] = True
    return _finalize(raw_values, raw_present, mask, accum, out)


def mxm(a: Matrix, b: Matrix, semiring: Semiring = MUL_ADD) -> Matrix:
    """Sparse-sparse matrix multiply over ``semiring`` (Gustavson
    expansion, fully vectorized)."""
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.ncols} vs {b.nrows}")
    a_csr, b_csr = a.csr, b.csr
    i_ids = np.repeat(np.arange(a.nrows, dtype=np.int64), a_csr.row_nnz())
    k_ids = a_csr.indices
    counts = (b_csr.indptr[k_ids + 1] - b_csr.indptr[k_ids]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return Matrix(COOMatrix.empty((a.nrows, b.ncols)))
    out_rows = np.repeat(i_ids, counts)
    a_rep = np.repeat(a_csr.data, counts)
    starts = np.repeat(b_csr.indptr[k_ids], counts)
    intra = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    positions = starts + intra
    out_cols = b_csr.indices[positions]
    products = semiring.mul(a_rep, b_csr.data[positions])

    keys = out_rows * b.ncols + out_cols
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    reduced = semiring.add.segment_reduce(products, inverse, unique_keys.size)
    return Matrix(
        COOMatrix(
            (a.nrows, b.ncols),
            unique_keys // b.ncols,
            unique_keys % b.ncols,
            reduced,
        )
    )


def mxm_dense(a: Matrix, b: np.ndarray, semiring: Semiring = MUL_ADD) -> np.ndarray:
    """Sparse x dense multiply (the SpMM of the GCN pipeline, Fig 5)."""
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ShapeError(f"dense operand shape {b.shape} incompatible with {a.shape}")
    if semiring.add.op.ufunc is None:
        raise NotImplementedError(
            f"mxm_dense needs a ufunc-backed add monoid, got {semiring.add.name}"
        )
    csr = a.csr
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), csr.row_nnz())
    products = semiring.mul(csr.data[:, None], b[csr.indices])
    out = np.full((a.nrows, b.shape[1]), semiring.zero, dtype=np.float64)
    # rows is sorted (a repeat of arange) and out is identity-filled,
    # which is exactly the specialized dense kernel's contract.
    kernels.dense_update(semiring.add, out, rows, products)
    return out


# ----------------------------------------------------------------------
# Element-wise operations
# ----------------------------------------------------------------------
def ewise_add(
    u: Vector,
    v: Vector,
    op: BinaryOp,
    mask: Optional[Mask] = None,
    accum: Optional[BinaryOp] = None,
    out: Optional[Vector] = None,
) -> Vector:
    """Union element-wise combine: where both stored apply ``op``, where
    one stored pass it through."""
    if u.size != v.size:
        raise ShapeError(f"vector sizes differ: {u.size} vs {v.size}")
    both = u.present & v.present
    only_u = u.present & ~v.present
    only_v = v.present & ~u.present
    raw_values = np.zeros(u.size, dtype=np.float64)
    raw_values[both] = op(u.values[both], v.values[both])
    raw_values[only_u] = u.values[only_u]
    raw_values[only_v] = v.values[only_v]
    return _finalize(raw_values, u.present | v.present, mask, accum, out)


def ewise_mult(
    u: Vector,
    v: Vector,
    op: BinaryOp,
    mask: Optional[Mask] = None,
    accum: Optional[BinaryOp] = None,
    out: Optional[Vector] = None,
) -> Vector:
    """Intersection element-wise combine: output stored only where both
    inputs are stored."""
    if u.size != v.size:
        raise ShapeError(f"vector sizes differ: {u.size} vs {v.size}")
    both = u.present & v.present
    raw_values = np.zeros(u.size, dtype=np.float64)
    raw_values[both] = op(u.values[both], v.values[both])
    return _finalize(raw_values, both, mask, accum, out)


def apply(
    u: Vector,
    op: UnaryOp,
    mask: Optional[Mask] = None,
    accum: Optional[BinaryOp] = None,
    out: Optional[Vector] = None,
) -> Vector:
    """Apply a unary op to every stored entry."""
    raw_values = np.zeros(u.size, dtype=np.float64)
    raw_values[u.present] = op(u.values[u.present])
    return _finalize(raw_values, u.present.copy(), mask, accum, out)


def apply_bind(
    u: Vector,
    op: BinaryOp,
    scalar: float,
    bind_right: bool = True,
    mask: Optional[Mask] = None,
    accum: Optional[BinaryOp] = None,
    out: Optional[Vector] = None,
) -> Vector:
    """Apply a binary op with one operand bound to a scalar
    (``u op scalar`` when ``bind_right`` else ``scalar op u``)."""
    raw_values = np.zeros(u.size, dtype=np.float64)
    stored = u.values[u.present]
    if bind_right:
        raw_values[u.present] = op(stored, np.full_like(stored, scalar))
    else:
        raw_values[u.present] = op(np.full_like(stored, scalar), stored)
    return _finalize(raw_values, u.present.copy(), mask, accum, out)


def reduce(u: Vector, monoid: Monoid) -> float:
    """Fold all stored entries with a monoid (the ``foldl`` of Fig 1)."""
    return float(monoid.reduce(u.values[u.present]))


def select(u: Vector, predicate: Callable[[np.ndarray], np.ndarray]) -> Vector:
    """Keep only stored entries whose value satisfies the vectorized
    ``predicate`` (GraphBLAS ``select``)."""
    keep = u.present.copy()
    keep[u.present] = np.asarray(predicate(u.values[u.present]), dtype=bool)
    result = Vector.empty(u.size)
    result.values[keep] = u.values[keep]
    result.present[keep] = True
    return result


def vector_dot(u: Vector, v: Vector, semiring: Semiring = MUL_ADD) -> float:
    """Dot product over a semiring (the ``dot`` of Fig 1): reduce the
    products over the intersection of stored entries."""
    if u.size != v.size:
        raise ShapeError(f"vector sizes differ: {u.size} vs {v.size}")
    both = u.present & v.present
    return float(semiring.add.reduce(semiring.mul(u.values[both], v.values[both])))


def assign_scalar(
    u: Vector, value: float, mask: Optional[Mask] = None
) -> Vector:
    """Return a copy of ``u`` with ``value`` stored at every maskable
    position (the ``set`` of Fig 1)."""
    writable = (
        mask.allowed(u.size) if mask is not None else np.ones(u.size, dtype=bool)
    )
    result = u.dup()
    result.values[writable] = value
    result.present[writable] = True
    return result
