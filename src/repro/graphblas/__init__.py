"""GraphBLAS-mini: the tensor programming frontend.

The paper writes its applications against ALP/GraphBLAS (Fig 1); this
package is the equivalent substrate for this reproduction. It provides
sparse :class:`Matrix` / :class:`Vector` containers and the semiring
operation set used by every workload in Table III: ``vxm``/``mxv``,
``mxm``, element-wise union/intersection, ``apply``, ``reduce``,
``select``, masks, and accumulators.
"""

from repro.graphblas.vector import Vector
from repro.graphblas.matrix import Matrix
from repro.graphblas.mask import Mask
from repro.graphblas.ops import (
    vxm,
    mxv,
    mxm,
    mxm_dense,
    ewise_add,
    ewise_mult,
    apply,
    apply_bind,
    reduce as reduce_vector,
    select,
    vector_dot,
    assign_scalar,
)
from repro.graphblas.algorithms import (
    connected_components,
    reachable_from,
    triangle_count,
)
from repro.graphblas.matrix_ops import (
    assign,
    diag,
    diag_matrix,
    ewise_add_matrix,
    ewise_mult_matrix,
    extract,
    reduce_cols,
    reduce_rows,
    select_matrix,
    select_matrix_coords,
)

__all__ = [
    "Vector",
    "Matrix",
    "Mask",
    "vxm",
    "mxv",
    "mxm",
    "mxm_dense",
    "ewise_add",
    "ewise_mult",
    "apply",
    "apply_bind",
    "reduce_vector",
    "select",
    "vector_dot",
    "assign_scalar",
    "assign",
    "diag",
    "diag_matrix",
    "ewise_add_matrix",
    "ewise_mult_matrix",
    "extract",
    "reduce_cols",
    "reduce_rows",
    "select_matrix",
    "select_matrix_coords",
    "triangle_count",
    "connected_components",
    "reachable_from",
]
