"""GraphBLAS-style sparse matrix wrapper.

Holds the canonical COO form and lazily materializes CSR (row access,
IS stage / ``mxv``) and CSC (column access, OS stage / ``vxm``) images —
the host-side mirror of Sparsepipe's dual sparse storage.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


class Matrix:
    """Immutable sparse matrix with lazy dual-orientation views."""

    def __init__(self, coo: COOMatrix) -> None:
        self._coo = coo.deduplicate()
        self._csr: Optional[CSRMatrix] = None
        self._csc: Optional[CSCMatrix] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "Matrix":
        return cls(COOMatrix.from_dense(dense))

    @classmethod
    def from_entries(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> "Matrix":
        return cls(COOMatrix(shape, rows, cols, vals))

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "Matrix":
        out = cls(csr.to_coo())
        out._csr = csr
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._coo.shape

    @property
    def nrows(self) -> int:
        return self._coo.nrows

    @property
    def ncols(self) -> int:
        return self._coo.ncols

    @property
    def nnz(self) -> int:
        return self._coo.nnz

    @property
    def coo(self) -> COOMatrix:
        return self._coo

    @property
    def csr(self) -> CSRMatrix:
        """Row-oriented view, built on first use."""
        if self._csr is None:
            self._csr = CSRMatrix.from_coo(self._coo)
        return self._csr

    @property
    def csc(self) -> CSCMatrix:
        """Column-oriented view, built on first use."""
        if self._csc is None:
            self._csc = CSCMatrix.from_coo(self._coo)
        return self._csc

    def to_dense(self) -> np.ndarray:
        return self._coo.to_dense()

    def transpose(self) -> "Matrix":
        return Matrix(self._coo.transpose())

    def row_degrees(self) -> np.ndarray:
        """Stored entries per row (out-degree for a graph adjacency)."""
        return self.csr.row_nnz()

    def col_degrees(self) -> np.ndarray:
        """Stored entries per column (in-degree for a graph adjacency)."""
        return self.csc.col_nnz()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matrix(shape={self.shape}, nnz={self.nnz})"
