"""Write masks for GraphBLAS-mini operations.

A mask restricts which output positions an operation may write; BFS is
the canonical user (it masks out already-visited vertices when
expanding the frontier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.graphblas.vector import Vector


@dataclass(frozen=True)
class Mask:
    """A structural mask over output positions.

    ``complement=False`` permits writes where the mask vector has a
    stored entry; ``complement=True`` permits writes everywhere else.
    """

    vector: Vector
    complement: bool = False

    def allowed(self, size: int) -> np.ndarray:
        """Boolean array of writable positions."""
        if self.vector.size != size:
            raise ShapeError(
                f"mask size {self.vector.size} does not match output size {size}"
            )
        if self.complement:
            return ~self.vector.present
        return self.vector.present.copy()
