"""Classic linear-algebra graph algorithms on GraphBLAS-mini.

Small, exact building blocks that exercise the frontend the way
GraphBLAS users do — beyond the paper's eleven iterative benchmarks:

- :func:`triangle_count` — the Burkhardt/Cohen formulation
  ``sum(tril(A) (+.x) tril(A) .* A) `` over matrix e-wise intersection,
- :func:`connected_components` — label propagation to a fixpoint under
  the (min, min) contraction,
- :func:`reachable_from` — transitive frontier expansion under
  (and, or).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.graphblas.matrix import Matrix
from repro.graphblas.matrix_ops import ewise_mult_matrix, select_matrix_coords
from repro.graphblas.mask import Mask
from repro.graphblas.ops import ewise_add, mxm, vxm
from repro.graphblas.vector import Vector
from repro.semiring.binaryops import FIRST, MIN, TIMES
from repro.semiring.monoids import MIN_MONOID
from repro.semiring.semirings import AND_OR, MUL_ADD
from repro.semiring.semirings import Semiring as _Semiring

#: (min, first) semiring for component-label spreading: the multiply
#: passes the source label through unchanged, the reduce keeps the
#: smallest label arriving at each vertex.
MIN_FIRST = _Semiring("min_first", MIN_MONOID, FIRST)


def _require_square(a: Matrix) -> None:
    if a.nrows != a.ncols:
        raise ShapeError(f"graph algorithms need a square matrix, got {a.shape}")


def triangle_count(a: Matrix) -> int:
    """Count triangles of the *undirected* graph underlying ``a``.

    Uses the lower-triangle formulation: with ``L = tril(A)``,
    ``#triangles = sum((L @ L) .* L)`` on the 0/1 pattern.
    """
    _require_square(a)
    # Symmetrize and binarize the pattern.
    coo = a.coo
    rows = np.concatenate((coo.rows, coo.cols))
    cols = np.concatenate((coo.cols, coo.rows))
    from repro.formats.coo import COOMatrix

    sym = Matrix(COOMatrix(a.shape, rows, cols, np.ones(rows.size)))
    pattern = Matrix(
        COOMatrix(a.shape, sym.coo.rows, sym.coo.cols, np.ones(sym.nnz))
    )
    lower = select_matrix_coords(pattern, lambda r, c: r > c)
    paths = mxm(lower, lower, MUL_ADD)
    closed = ewise_mult_matrix(paths, lower, TIMES)
    return int(round(closed.coo.vals.sum()))


def connected_components(a: Matrix, max_rounds: int = None) -> Tuple[np.ndarray, int]:
    """Weakly-connected component labels via min-label propagation.

    Every vertex starts labeled with its own index; each round spreads
    the minimum label across (undirected) edges until a fixpoint.
    Returns ``(labels, n_components)``.
    """
    _require_square(a)
    n = a.nrows
    coo = a.coo
    from repro.formats.coo import COOMatrix

    rows = np.concatenate((coo.rows, coo.cols, np.arange(n)))
    cols = np.concatenate((coo.cols, coo.rows, np.arange(n)))
    sym = Matrix(COOMatrix(a.shape, rows, cols, np.ones(rows.size)))

    labels = Vector(n, np.arange(n, dtype=np.float64))
    rounds = max_rounds if max_rounds is not None else n
    for _ in range(max(1, rounds)):
        spread = vxm(labels, sym, MIN_FIRST)
        new = ewise_add(labels, spread, MIN)
        if new.isclose(labels):
            break
        labels = new
    out = labels.to_dense().astype(np.int64)
    return out, int(np.unique(out).size)


def reachable_from(a: Matrix, source: int, max_hops: int = None) -> Vector:
    """All vertices reachable from ``source`` (directed), via masked
    (and, or) frontier expansion — the BFS kernel without levels."""
    _require_square(a)
    n = a.nrows
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range for {n} vertices")
    visited = Vector.from_entries(n, [source], [1.0])
    frontier = visited.dup()
    hops = max_hops if max_hops is not None else n
    for _ in range(max(1, hops)):
        frontier = vxm(frontier, a, AND_OR, mask=Mask(visited, complement=True))
        idx, _ = frontier.entries()
        if idx.size == 0:
            break
        visited.values[idx] = 1.0
        visited.present[idx] = True
    return visited
