"""Matrix-level GraphBLAS-mini operations.

Completes the operation set of the frontend beyond the
contraction/vector ops in :mod:`repro.graphblas.ops`: matrix
element-wise combines, select, row/column reductions, diagonal
extraction/construction, and sub-vector extract/assign.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.formats.coo import COOMatrix
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.semiring.binaryops import BinaryOp
from repro.semiring.monoids import Monoid


def ewise_add_matrix(a: Matrix, b: Matrix, op: BinaryOp) -> Matrix:
    """Union element-wise combine of two matrices: where both store an
    entry apply ``op``; where one stores, pass it through."""
    if a.shape != b.shape:
        raise ShapeError(f"matrix shapes differ: {a.shape} vs {b.shape}")
    a_coo, b_coo = a.coo, b.coo
    keys_a = a_coo.rows * a.ncols + a_coo.cols
    keys_b = b_coo.rows * b.ncols + b_coo.cols
    common, ia, ib = np.intersect1d(keys_a, keys_b, return_indices=True)
    only_a = np.setdiff1d(np.arange(keys_a.size), ia, assume_unique=True)
    only_b = np.setdiff1d(np.arange(keys_b.size), ib, assume_unique=True)
    rows = np.concatenate((common // a.ncols, a_coo.rows[only_a], b_coo.rows[only_b]))
    cols = np.concatenate((common % a.ncols, a_coo.cols[only_a], b_coo.cols[only_b]))
    vals = np.concatenate(
        (op(a_coo.vals[ia], b_coo.vals[ib]), a_coo.vals[only_a], b_coo.vals[only_b])
    )
    return Matrix(COOMatrix(a.shape, rows, cols, vals))


def ewise_mult_matrix(a: Matrix, b: Matrix, op: BinaryOp) -> Matrix:
    """Intersection element-wise combine of two matrices."""
    if a.shape != b.shape:
        raise ShapeError(f"matrix shapes differ: {a.shape} vs {b.shape}")
    a_coo, b_coo = a.coo, b.coo
    keys_a = a_coo.rows * a.ncols + a_coo.cols
    keys_b = b_coo.rows * b.ncols + b_coo.cols
    common, ia, ib = np.intersect1d(keys_a, keys_b, return_indices=True)
    return Matrix(
        COOMatrix(
            a.shape,
            common // a.ncols,
            common % a.ncols,
            op(a_coo.vals[ia], b_coo.vals[ib]),
        )
    )


def select_matrix(a: Matrix, predicate: Callable[[np.ndarray], np.ndarray]) -> Matrix:
    """Keep entries whose value satisfies the vectorized predicate
    (GraphBLAS ``select``; e.g. ``tril``/thresholding)."""
    coo = a.coo
    keep = np.asarray(predicate(coo.vals), dtype=bool)
    return Matrix(COOMatrix(a.shape, coo.rows[keep], coo.cols[keep], coo.vals[keep]))


def select_matrix_coords(
    a: Matrix, predicate: Callable[[np.ndarray, np.ndarray], np.ndarray]
) -> Matrix:
    """Keep entries whose coordinates satisfy the predicate, e.g.
    ``lambda r, c: r > c`` for the strict lower triangle."""
    coo = a.coo
    keep = np.asarray(predicate(coo.rows, coo.cols), dtype=bool)
    return Matrix(COOMatrix(a.shape, coo.rows[keep], coo.cols[keep], coo.vals[keep]))


def reduce_rows(a: Matrix, monoid: Monoid) -> Vector:
    """Reduce each row to a scalar (GraphBLAS row-wise ``reduce``);
    structurally empty rows produce no stored entry."""
    coo = a.coo
    values = monoid.segment_reduce(coo.vals, coo.rows, a.nrows)
    present = np.zeros(a.nrows, dtype=bool)
    present[coo.rows] = True
    out = Vector.empty(a.nrows)
    out.values[present] = values[present]
    out.present[:] = present
    return out


def reduce_cols(a: Matrix, monoid: Monoid) -> Vector:
    """Reduce each column to a scalar."""
    coo = a.coo
    values = monoid.segment_reduce(coo.vals, coo.cols, a.ncols)
    present = np.zeros(a.ncols, dtype=bool)
    present[coo.cols] = True
    out = Vector.empty(a.ncols)
    out.values[present] = values[present]
    out.present[:] = present
    return out


def diag(a: Matrix) -> Vector:
    """Extract the main diagonal as a vector (absent where unstored)."""
    coo = a.coo
    on_diag = coo.rows == coo.cols
    out = Vector.empty(min(a.nrows, a.ncols))
    out.values[coo.rows[on_diag]] = coo.vals[on_diag]
    out.present[coo.rows[on_diag]] = True
    return out


def diag_matrix(v: Vector) -> Matrix:
    """Build a diagonal matrix from a vector's stored entries."""
    idx, vals = v.entries()
    return Matrix(COOMatrix((v.size, v.size), idx, idx, vals))


def extract(u: Vector, indices: Sequence[int]) -> Vector:
    """Sub-vector extraction: ``w[k] = u[indices[k]]`` with presence
    carried through."""
    idx = np.asarray(list(indices), dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= u.size):
        raise IndexError("extract index out of range")
    out = Vector.empty(idx.size)
    out.values[:] = u.values[idx]
    out.present[:] = u.present[idx]
    return out


def assign(
    u: Vector, indices: Sequence[int], values: Vector, accum: Optional[BinaryOp] = None
) -> Vector:
    """Sub-vector assignment: write ``values``'s stored entries into
    ``u`` at ``indices`` (optionally combining with ``accum``)."""
    idx = np.asarray(list(indices), dtype=np.int64)
    if idx.size != values.size:
        raise ShapeError(
            f"{idx.size} indices but value vector of size {values.size}"
        )
    if idx.size and (idx.min() < 0 or idx.max() >= u.size):
        raise IndexError("assign index out of range")
    out = u.dup()
    stored = values.present
    targets = idx[stored]
    incoming = values.values[stored]
    if accum is not None:
        existing = out.present[targets]
        merged = np.where(
            existing, accum(out.values[targets], incoming), incoming
        )
        out.values[targets] = merged
    else:
        out.values[targets] = incoming
    out.present[targets] = True
    return out
