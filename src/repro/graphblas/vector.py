"""GraphBLAS-style sparse vector.

Backed by a dense value array plus a presence mask. The workloads of
the paper operate on vectors that densify within a few iterations
(PageRank ranks, SSSP distances, ...), so dense backing gives correct
sparse *semantics* (absent entries exist only implicitly) at the memory
cost of the dimension, which is negligible at the scales simulated.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import ShapeError


class Vector:
    """A length-``size`` sparse vector with explicit presence.

    ``values[i]`` is meaningful only where ``present[i]``; absent
    entries behave as "no stored value" (e.g. they contribute nothing
    to a ``vxm``, regardless of the semiring identity).
    """

    def __init__(
        self,
        size: int,
        values: Optional[np.ndarray] = None,
        present: Optional[np.ndarray] = None,
    ) -> None:
        if size < 0:
            raise ShapeError(f"vector size must be non-negative, got {size}")
        self.size = int(size)
        if values is None:
            values = np.zeros(size, dtype=np.float64)
        else:
            values = np.array(values, dtype=np.float64, copy=True)
            if values.shape != (size,):
                raise ShapeError(f"values shape {values.shape} != ({size},)")
        if present is None:
            present = np.ones(size, dtype=bool)
        else:
            present = np.array(present, dtype=bool, copy=True)
            if present.shape != (size,):
                raise ShapeError(f"present shape {present.shape} != ({size},)")
        self.values = values
        self.present = present

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def dense(cls, size: int, fill: float = 0.0) -> "Vector":
        """A fully-present vector with a constant value."""
        return cls(size, np.full(size, float(fill)), np.ones(size, dtype=bool))

    @classmethod
    def empty(cls, size: int) -> "Vector":
        """A vector with no stored entries."""
        return cls(size, np.zeros(size), np.zeros(size, dtype=bool))

    @classmethod
    def from_entries(
        cls, size: int, indices: Iterable[int], values: Iterable[float]
    ) -> "Vector":
        """A vector with entries only at ``indices``."""
        out = cls.empty(size)
        idx = np.asarray(list(indices), dtype=np.int64)
        vals = np.asarray(list(values), dtype=np.float64)
        if idx.shape != vals.shape:
            raise ShapeError("indices and values must have equal length")
        if idx.size and (idx.min() < 0 or idx.max() >= size):
            raise IndexError("vector index out of range")
        out.values[idx] = vals
        out.present[idx] = True
        return out

    def dup(self) -> "Vector":
        """Deep copy."""
        return Vector(self.size, self.values, self.present)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of stored entries."""
        return int(np.count_nonzero(self.present))

    def entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` of the stored entries."""
        idx = np.flatnonzero(self.present)
        return idx, self.values[idx]

    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        """Materialize with ``fill`` in absent positions."""
        out = np.full(self.size, float(fill))
        out[self.present] = self.values[self.present]
        return out

    def get(self, i: int, default: float = None) -> float:
        """Stored value at ``i``, or ``default`` when absent."""
        if not 0 <= i < self.size:
            raise IndexError(f"index {i} out of range for size {self.size}")
        if not self.present[i]:
            if default is None:
                raise KeyError(f"no stored value at index {i}")
            return default
        return float(self.values[i])

    def set(self, i: int, value: float) -> None:
        """Store ``value`` at ``i``."""
        if not 0 <= i < self.size:
            raise IndexError(f"index {i} out of range for size {self.size}")
        self.values[i] = value
        self.present[i] = True

    def clear(self) -> None:
        """Remove all stored entries."""
        self.present[:] = False
        self.values[:] = 0.0

    def isclose(self, other: "Vector", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Structural and numeric equality within tolerance."""
        if self.size != other.size or not np.array_equal(self.present, other.present):
            return False
        mask = self.present
        return bool(
            np.allclose(
                self.values[mask], other.values[mask], rtol=rtol, atol=atol,
                equal_nan=True,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vector(size={self.size}, nvals={self.nvals})"
