"""Static analysis: IR verification, schedule linting, and self-lint.

Sparsepipe's correctness rests on legality arguments — OEI pairs must
share the streamed matrix with OS/IS-compatible dataflow directions,
e-wise fusion must respect sub-tensor dependency classes, and the
three-core schedule must honor the Fig 8 skew. This package checks all
of them *statically*, before any simulation, with structured
diagnostics (stable code, severity, location, fix hint):

- :mod:`repro.analysis.diagnostics` — the code registry
  (:data:`~repro.analysis.diagnostics.CODES`) and
  :class:`~repro.analysis.diagnostics.DiagnosticReport`,
- :mod:`repro.analysis.passes` — the verifier pass pipeline over
  :class:`~repro.dataflow.graph.DataflowGraph`,
  :class:`~repro.dataflow.program.OEIProgram`, and the OEI schedule,
- :mod:`repro.analysis.selfcheck` — AST rules enforcing repository
  invariants over ``src/repro`` itself (SP9xx).

Entry points: ``compile_program(..., verify=...)`` runs the graph
pipeline on every compile, ``python -m repro lint`` lints registered
workloads, and ``python -m repro selfcheck`` lints the source tree.
``docs/analysis.md`` catalogues every diagnostic code.
"""

from repro.analysis.diagnostics import (
    CODES,
    CodeSpec,
    DiagnosticReport,
    DiagnosticWarning,
    diagnostic,
)
from repro.analysis.passes import (
    lint_workload,
    verify_graph,
    verify_program,
    verify_schedule,
)
from repro.analysis.selfcheck import selfcheck
from repro.errors import Diagnostic, Severity

__all__ = [
    "CODES",
    "CodeSpec",
    "Diagnostic",
    "DiagnosticReport",
    "DiagnosticWarning",
    "Severity",
    "diagnostic",
    "lint_workload",
    "selfcheck",
    "verify_graph",
    "verify_program",
    "verify_schedule",
]
