"""Static analysis: IR verification, schedule linting, and self-lint.

Sparsepipe's correctness rests on legality arguments — OEI pairs must
share the streamed matrix with OS/IS-compatible dataflow directions,
e-wise fusion must respect sub-tensor dependency classes, and the
three-core schedule must honor the Fig 8 skew. This package checks all
of them *statically*, before any simulation, with structured
diagnostics (stable code, severity, location, fix hint):

- :mod:`repro.analysis.diagnostics` — the code registry
  (:data:`~repro.analysis.diagnostics.CODES`) and
  :class:`~repro.analysis.diagnostics.DiagnosticReport`,
- :mod:`repro.analysis.passes` — the verifier pass pipeline over
  :class:`~repro.dataflow.graph.DataflowGraph`,
  :class:`~repro.dataflow.program.OEIProgram`, and the OEI schedule,
- :mod:`repro.analysis.absint` — abstract interpretation over the
  graph: per-edge abstract values, a static OEI fusibility decision
  cross-checked against the dynamic detector (SP701/SP704),
- :mod:`repro.analysis.bounds` — static traffic/buffer upper bounds
  and the :class:`~repro.analysis.bounds.StaticReport` oracle checked
  against simulated results (SP702/SP703),
- :mod:`repro.analysis.selfcheck` — AST rule passes enforcing
  repository invariants over ``src/repro`` itself (SP9xx, including
  the SP91x concurrency-safety family).

Entry points: ``compile_program(..., verify=...)`` runs the graph
pipeline on every compile, ``python -m repro lint`` lints registered
workloads, ``python -m repro selfcheck`` lints the source tree, and
``python -m repro check`` runs the absint oracle against the
simulator. ``docs/analysis.md`` catalogues every diagnostic code.
"""

from repro.analysis.absint import (
    AbstractValue,
    Interval,
    StaticOEIDecision,
    abstract_interpret,
    oei_crosscheck,
    static_oei_decision,
)
from repro.analysis.bounds import StaticReport, TrafficBounds, static_report, traffic_bounds
from repro.analysis.diagnostics import (
    CODES,
    CodeSpec,
    DiagnosticReport,
    DiagnosticWarning,
    diagnostic,
    register_code,
)
from repro.analysis.passes import (
    lint_workload,
    verify_graph,
    verify_program,
    verify_schedule,
)
from repro.analysis.selfcheck import selfcheck
from repro.errors import Diagnostic, Severity

__all__ = [
    "AbstractValue",
    "CODES",
    "CodeSpec",
    "Diagnostic",
    "DiagnosticReport",
    "DiagnosticWarning",
    "Interval",
    "Severity",
    "StaticOEIDecision",
    "StaticReport",
    "TrafficBounds",
    "abstract_interpret",
    "diagnostic",
    "lint_workload",
    "oei_crosscheck",
    "register_code",
    "selfcheck",
    "static_oei_decision",
    "static_report",
    "traffic_bounds",
    "verify_graph",
    "verify_program",
    "verify_schedule",
]
