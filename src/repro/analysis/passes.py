"""Static IR verification passes (the front line before simulation).

Three verifiers, one report format:

- :func:`verify_graph` — structural and legality passes over a
  :class:`~repro.dataflow.graph.DataflowGraph`: ranks, opcodes,
  producers, cycles, loop-carried wiring, fusion dependency classes,
  and OEI pairing legality (shared-matrix dual storage, OS->IS
  direction compatibility).
- :func:`verify_program` — checks a compiled
  :class:`~repro.dataflow.program.OEIProgram`: opcode/arity validity,
  register dataflow, and the semiring opcode.
- :func:`verify_schedule` — proves the Fig 8 stage-skew invariant
  *symbolically* over stage indices (a stage at lag ``L`` reading the
  output of a stage at lag ``L'`` is safe for every step iff
  ``L >= L' + 1``), instead of replaying steps like
  :func:`repro.oei.validate.validate_schedule`.

Each pass appends :class:`~repro.errors.Diagnostic` records to a
:class:`~repro.analysis.diagnostics.DiagnosticReport`; nothing raises.
``compile_program(verify="error")`` turns error-severity findings into
a :class:`~repro.errors.CompileError`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.analysis.diagnostics import DiagnosticReport
from repro.dataflow.dependency import is_subtensor
from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind
from repro.dataflow.oei_detect import _scalar_blockers, find_oei_path
from repro.dataflow.program import OEIProgram, OperandKind
from repro.oei.schedule import EWISE_LAG, IS_LAG, OEISchedule
from repro.semiring.binaryops import BINARY_OPS
from repro.semiring.monoids import MONOIDS
from repro.semiring.semirings import SEMIRINGS
from repro.semiring.unaryops import UNARY_OPS

_CONTRACTIONS = (OpKind.VXM, OpKind.MXV, OpKind.MXM)


def _loc(graph: DataflowGraph, op: Optional[OpNode] = None,
         tensor: str = "") -> str:
    parts = [f"graph {graph.name}"]
    if op is not None:
        parts.append(f"op {op.name}")
    if tensor:
        parts.append(f"tensor {tensor}")
    return " / ".join(parts)


# ----------------------------------------------------------------------
# SP101: rank consistency
# ----------------------------------------------------------------------
def _check_ranks(graph: DataflowGraph, report: DiagnosticReport) -> None:
    for op in graph.ops:
        kinds = tuple(t.kind for t in op.inputs)
        out = op.output.kind
        loc = _loc(graph, op)
        if op.kind in (OpKind.VXM, OpKind.MXV):
            if (sorted(k.value for k in kinds)
                    != [TensorKind.MATRIX.value, TensorKind.VECTOR.value]):
                report.add("SP101",
                           f"{op.kind.value} needs one vector and one matrix "
                           f"operand, got {[k.value for k in kinds]}", loc)
            if out is not TensorKind.VECTOR:
                report.add("SP101",
                           f"{op.kind.value} must produce a vector, got "
                           f"{out.value}", loc)
        elif op.kind is OpKind.MXM:
            if kinds != (TensorKind.MATRIX, TensorKind.MATRIX):
                report.add("SP101",
                           f"mxm needs two matrix operands, got "
                           f"{[k.value for k in kinds]}", loc)
            if out is not TensorKind.MATRIX:
                report.add("SP101",
                           f"mxm must produce a matrix, got {out.value}", loc)
        elif op.kind is OpKind.REDUCE:
            if kinds != (TensorKind.VECTOR,):
                report.add("SP101",
                           f"reduce folds one vector, got "
                           f"{[k.value for k in kinds]}", loc)
            if out is not TensorKind.SCALAR:
                report.add("SP101",
                           f"reduce must produce a scalar, got {out.value}",
                           loc)
        elif op.kind is OpKind.DOT:
            if kinds != (TensorKind.VECTOR, TensorKind.VECTOR):
                report.add("SP101",
                           f"dot needs two vector operands, got "
                           f"{[k.value for k in kinds]}", loc)
            if out is not TensorKind.SCALAR:
                report.add("SP101",
                           f"dot must produce a scalar, got {out.value}", loc)
        else:  # EWISE / APPLY / NOOP: element-wise over vectors/scalars
            if TensorKind.MATRIX in kinds or out is TensorKind.MATRIX:
                report.add("SP101",
                           "e-wise ops operate on vectors and scalars, not "
                           "matrices", loc)
            elif TensorKind.VECTOR in kinds and out is not TensorKind.VECTOR:
                report.add("SP101",
                           "e-wise over vector inputs must produce a vector, "
                           f"got {out.value}", loc)


# ----------------------------------------------------------------------
# SP102/SP103/SP104/SP109/SP111: opcode and operand validity
# ----------------------------------------------------------------------
def _check_opcodes(graph: DataflowGraph, report: DiagnosticReport) -> None:
    for op in graph.ops:
        loc = _loc(graph, op)
        if op.kind in _CONTRACTIONS or op.kind is OpKind.DOT:
            if op.op_name not in SEMIRINGS:
                report.add("SP102",
                           f"{op.op_name!r} is not a registered semiring "
                           f"(known: {sorted(SEMIRINGS)})", loc)
        elif op.kind is OpKind.REDUCE:
            if op.op_name not in MONOIDS:
                report.add("SP104",
                           f"{op.op_name!r} is not a registered monoid "
                           f"(known: {sorted(MONOIDS)})", loc)
        elif op.kind in (OpKind.EWISE, OpKind.APPLY):
            arity = (len(op.inputs)
                     + (op.scalar_operand is not None)
                     + (op.immediate is not None))
            if arity > 2:
                report.add("SP109",
                           f"e-wise op takes {arity} operands "
                           f"({len(op.inputs)} inputs"
                           f"{' + scalar_operand' if op.scalar_operand else ''}"
                           f"{' + immediate' if op.immediate is not None else ''}"
                           "); the E-Wise core supports at most 2", loc)
            elif arity == 1 and op.op_name not in UNARY_OPS:
                report.add("SP103",
                           f"{op.op_name!r} is not a known unary operator",
                           loc)
            elif arity == 2 and op.op_name not in BINARY_OPS:
                report.add("SP103",
                           f"{op.op_name!r} is not a known binary operator",
                           loc)
        if op.scalar_operand is not None:
            declared = graph.tensors.get(op.scalar_operand)
            if declared is not None and declared.kind is not TensorKind.SCALAR:
                report.add("SP111",
                           f"scalar_operand {op.scalar_operand!r} names a "
                           f"{declared.kind.value} tensor", loc)


# ----------------------------------------------------------------------
# SP105/SP110/SP114: producer discipline
# ----------------------------------------------------------------------
def _check_producers(graph: DataflowGraph, report: DiagnosticReport) -> None:
    producers = {}
    for op in graph.ops:
        for t in list(op.inputs) + [op.output]:
            if t.name not in graph.tensors:
                report.add("SP114",
                           f"references undeclared tensor {t.name!r}",
                           _loc(graph, op))
        prev = producers.get(op.output.name)
        if prev is not None:
            report.add("SP105",
                       f"tensor {op.output.name!r} is produced by both "
                       f"{prev.name!r} and {op.name!r}", _loc(graph, op))
        else:
            producers[op.output.name] = op
        if op.output.constant:
            report.add("SP110",
                       f"writes constant tensor {op.output.name!r}",
                       _loc(graph, op))


# ----------------------------------------------------------------------
# SP106: dangling tensors
# ----------------------------------------------------------------------
def _check_dangling(graph: DataflowGraph, report: DiagnosticReport) -> None:
    used = set()
    for op in graph.ops:
        used.update(t.name for t in op.inputs)
        used.add(op.output.name)
        if op.scalar_operand is not None:
            used.add(op.scalar_operand)
    used.update(graph.loop_carried)
    used.update(graph.loop_carried.values())
    for name in graph.tensors:
        if name not in used:
            report.add("SP106",
                       f"tensor {name!r} is declared but never produced, "
                       "consumed, or loop-carried",
                       _loc(graph, tensor=name))


# ----------------------------------------------------------------------
# SP107: intra-iteration cycles
# ----------------------------------------------------------------------
def _check_cycles(graph: DataflowGraph, report: DiagnosticReport) -> None:
    produced_by = {op.output.name: op for op in graph.ops}
    indeg = {op.name: 0 for op in graph.ops}
    consumers = {op.name: [] for op in graph.ops}
    for op in graph.ops:
        for t in op.inputs:
            dep = produced_by.get(t.name)
            if dep is not None:
                indeg[op.name] += 1
                consumers[dep.name].append(op.name)
    ready = [name for name, d in indeg.items() if d == 0]
    done = 0
    while ready:
        name = ready.pop()
        done += 1
        for nxt in consumers[name]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if done != len(graph.ops):
        stuck = sorted(name for name, d in indeg.items() if d > 0)
        report.add("SP107",
                   f"cycle among ops {stuck} within one iteration "
                   "(loop-carried state must cross the iteration boundary "
                   "explicitly)", _loc(graph))


# ----------------------------------------------------------------------
# SP108: loop-carried edge legality
# ----------------------------------------------------------------------
def _check_loop_carried(graph: DataflowGraph, report: DiagnosticReport) -> None:
    produced = {op.output.name for op in graph.ops}
    carry_targets = set(graph.loop_carried.values())
    for src, dst in graph.loop_carried.items():
        loc = _loc(graph, tensor=src)
        src_node = graph.tensors.get(src)
        dst_node = graph.tensors.get(dst)
        if src_node is None or dst_node is None:
            missing = src if src_node is None else dst
            report.add("SP108",
                       f"loop-carried edge {src!r} -> {dst!r} references "
                       f"undeclared tensor {missing!r}", loc)
            continue
        if src not in produced and src not in carry_targets:
            report.add("SP108",
                       f"carries {src!r}, which no op produces and no other "
                       "carry delays (not a valid delay chain)", loc)
        if dst in produced:
            report.add("SP108",
                       f"carries into {dst!r}, which is already produced "
                       "within the iteration body", loc)
        if dst_node.constant:
            report.add("SP108",
                       f"carries into constant tensor {dst!r}", loc)
        if src_node.kind != dst_node.kind:
            report.add("SP108",
                       f"carries {src_node.kind.value} {src!r} into "
                       f"{dst_node.kind.value} {dst!r} (kind mismatch)", loc)


# ----------------------------------------------------------------------
# SP201/SP202: semiring uniformity
# ----------------------------------------------------------------------
def _check_semiring_uniformity(
    graph: DataflowGraph, report: DiagnosticReport
) -> None:
    contractions = graph.contractions()
    if not contractions:
        report.add("SP202",
                   f"graph {graph.name!r} has no contraction to accelerate",
                   _loc(graph))
        return
    names = sorted({op.op_name for op in contractions})
    if len(names) > 1:
        report.add("SP201",
                   f"mixes semirings {names}; Sparsepipe preloads a single "
                   "opcode per kernel launch", _loc(graph))


# ----------------------------------------------------------------------
# SP203: hidden reduction scalars on e-wise chains
# ----------------------------------------------------------------------
def _check_fusion_dependencies(
    graph: DataflowGraph, report: DiagnosticReport
) -> None:
    contraction_outputs = {op.output.name for op in graph.contractions()}
    scalar_upstream = _scalar_blockers(graph)
    for op in graph.ops:
        if not is_subtensor(op) or op.scalar_operand is None:
            continue
        closure = scalar_upstream.get(op.scalar_operand)
        if closure is None:
            continue  # runtime scalar, not produced this iteration
        blocking = sorted(closure & contraction_outputs)
        if blocking:
            report.add("SP203",
                       f"scalar {op.scalar_operand!r} is reduced this "
                       f"iteration from contraction output(s) {blocking}; "
                       "the e-wise chain is not sub-tensor dependent",
                       _loc(graph, op))


# ----------------------------------------------------------------------
# SP204/SP205: OEI pairing legality
# ----------------------------------------------------------------------
def _check_oei_pairing(graph: DataflowGraph, report: DiagnosticReport) -> None:
    path = find_oei_path(graph)
    if path is None:
        return
    formats = graph.matrix_formats.get(path.matrix_name)
    if formats is not None:
        missing = sorted({"csc", "csr"} - set(formats))
        if missing:
            report.add("SP204",
                       f"OEI pair {path.src.name!r} -> {path.dst.name!r} "
                       f"shares matrix {path.matrix_name!r}, whose declared "
                       f"dual storage lacks the {missing} side(s)",
                       _loc(graph, tensor=path.matrix_name))
    # The source contraction of the pair runs output-stationary (CSC
    # order); the destination runs input-stationary (CSR order). An op
    # pinned to the opposite dataflow cannot take that role.
    if path.src.dataflow not in (None, "os"):
        report.add("SP205",
                   f"OEI source {path.src.name!r} is pinned to the "
                   f"{path.src.dataflow!r} dataflow but must run OS",
                   _loc(graph, path.src))
    if path.dst.dataflow not in (None, "is"):
        report.add("SP205",
                   f"OEI destination {path.dst.name!r} is pinned to the "
                   f"{path.dst.dataflow!r} dataflow but must run IS",
                   _loc(graph, path.dst))


# ----------------------------------------------------------------------
# SP701/SP704: abstract-interpretation cross-checks
# ----------------------------------------------------------------------
def _check_absint_agreement(
    graph: DataflowGraph, report: DiagnosticReport
) -> None:
    """Run the abstract interpreter's graph-level checks: the static
    OEI decision must agree with the dynamic detector (SP701), and
    pinned contractions must have their streaming side declared
    (SP704)."""
    from repro.analysis.absint import verify_absint

    report.extend(verify_absint(graph))


#: Structural passes always run; legality passes only run on a
#: structurally sound graph (they call helpers that assume one).
_STRUCTURAL_PASSES: Sequence[Callable] = (
    _check_ranks,
    _check_opcodes,
    _check_producers,
    _check_dangling,
    _check_cycles,
    _check_loop_carried,
)
_LEGALITY_PASSES: Sequence[Callable] = (
    _check_semiring_uniformity,
    _check_fusion_dependencies,
    _check_oei_pairing,
    _check_absint_agreement,
)


def verify_graph(graph: DataflowGraph) -> DiagnosticReport:
    """Run every graph pass; legality passes are skipped when the
    structural passes already found errors (their preconditions —
    unique producers, acyclicity — would not hold)."""
    report = DiagnosticReport(subject=f"graph {graph.name}")
    for check in _STRUCTURAL_PASSES:
        check(graph, report)
    if report.ok:
        for check in _LEGALITY_PASSES:
            check(graph, report)
    return report


# ----------------------------------------------------------------------
# Compiled-program verification
# ----------------------------------------------------------------------
def verify_program(program: OEIProgram) -> DiagnosticReport:
    """Statically check a compiled :class:`OEIProgram`: semiring opcode
    (SP207), instruction opcodes and arity (SP206), and register
    dataflow (SP208)."""
    report = DiagnosticReport(subject=f"program {program.name}")
    if program.semiring_name not in SEMIRINGS:
        report.add("SP207",
                   f"{program.semiring_name!r} is not a registered semiring",
                   f"program {program.name}")
    written = set()
    for i, instr in enumerate(program.instructions):
        loc = f"program {program.name} / instr {i}"
        arity = len(instr.srcs)
        if arity == 1:
            if instr.op_name not in UNARY_OPS:
                report.add("SP206",
                           f"{instr.op_name!r} is not a known unary operator",
                           loc)
        elif arity == 2:
            if instr.op_name not in BINARY_OPS:
                report.add("SP206",
                           f"{instr.op_name!r} is not a known binary operator",
                           loc)
        else:
            report.add("SP206", f"instruction arity {arity} unsupported", loc)
        for operand in instr.srcs:
            if operand.kind is OperandKind.REG and operand.ref not in written:
                report.add("SP208",
                           f"reads register r{operand.ref} before any "
                           "instruction writes it", loc)
        written.add(instr.dst)
        if instr.dst >= program.n_registers:
            report.add("SP208",
                       f"writes r{instr.dst} but n_registers is "
                       f"{program.n_registers}", loc)
    if program.result_reg is not None and program.result_reg not in written:
        report.add("SP208",
                   f"result_reg r{program.result_reg} is never written",
                   f"program {program.name}")
    return report


# ----------------------------------------------------------------------
# Schedule verification (symbolic, no replay)
# ----------------------------------------------------------------------
def verify_schedule(
    n: int,
    subtensor_cols: int,
    ewise_lag: int = EWISE_LAG,
    is_lag: int = IS_LAG,
    n_steps: Optional[int] = None,
) -> DiagnosticReport:
    """Prove schedule legality symbolically over stage indices.

    A stage at lag ``L`` processes sub-tensor ``s`` during step
    ``s + L`` and its input — produced by the upstream stage at lag
    ``L'`` — is finished at the end of step ``s + L'``. The dependency
    is satisfied for *every* ``s`` iff ``L >= L' + 1``, so the whole
    Fig 8 argument reduces to ``0 < ewise_lag < is_lag`` (SP301).
    Draining needs ``n_steps >= n_subtensors + is_lag`` (SP302), and
    the sub-tensor decomposition must tile ``[0, n)`` (SP303).
    """
    report = DiagnosticReport(
        subject=f"schedule (n={n}, subtensor_cols={subtensor_cols})"
    )
    if n < 0 or subtensor_cols <= 0:
        report.add("SP306",
                   f"n={n} must be non-negative and "
                   f"subtensor_cols={subtensor_cols} positive")
        return report
    if ewise_lag < 1:
        report.add("SP301",
                   f"e-wise lag {ewise_lag} < 1: at step s the E-Wise stage "
                   "would read OS output that only finishes at the end of "
                   "step s")
    if is_lag < ewise_lag + 1:
        report.add("SP301",
                   f"IS lag {is_lag} < e-wise lag {ewise_lag} + 1: at step s "
                   "the IS stage would read e-wise output that is not yet "
                   "finished")
    schedule = OEISchedule(n, subtensor_cols)
    n_subtensors = schedule.n_subtensors
    steps = schedule.n_steps if n_steps is None else n_steps
    if n_subtensors and steps < n_subtensors + is_lag:
        report.add("SP302",
                   f"{steps} steps cannot drain {n_subtensors} sub-tensors "
                   f"through a stage at lag {is_lag} "
                   f"(needs {n_subtensors + is_lag})")
    cursor = 0
    for st in schedule.subtensors():
        if st.start != cursor or st.width <= 0 or st.stop > n:
            report.add("SP303",
                       f"sub-tensor {st.index} spans [{st.start}, {st.stop}) "
                       f"but the partition cursor is at {cursor}")
            break
        cursor = st.stop
    else:
        if cursor != n:
            report.add("SP303",
                       f"sub-tensors cover [0, {cursor}) of [0, {n})")
    return report


# ----------------------------------------------------------------------
# Whole-workload lint
# ----------------------------------------------------------------------
#: Nominal matrix width used when linting a workload without a matrix.
_LINT_N = 1024


def lint_workload(workload) -> DiagnosticReport:
    """Full static lint of one workload: graph passes, then (when the
    graph is sound) compiled-program and schedule passes."""
    graph = workload.build_graph()
    report = verify_graph(graph)
    report.subject = f"workload {workload.name}"
    if not report.ok:
        return report
    from repro.arch.config import SparsepipeConfig
    from repro.dataflow.compiler import compile_program

    program = compile_program(graph, verify="off")
    report.extend(verify_program(program))
    report.extend(
        verify_schedule(_LINT_N, SparsepipeConfig().subtensor_cols)
    )
    return report
