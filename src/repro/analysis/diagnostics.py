"""Diagnostic code registry and report container.

Every defect class the static verifier (:mod:`repro.analysis.passes`)
and the AST self-lint (:mod:`repro.analysis.selfcheck`) can detect has
one stable entry in :data:`CODES`:

- ``SP1xx`` — dataflow-graph structure,
- ``SP2xx`` — fusion / OEI legality and compiled programs,
- ``SP3xx`` — pipeline-step schedule legality,
- ``SP6xx`` — runtime resilience (supervised sweeps, cache
  quarantine, strict ingest, fault injection),
- ``SP7xx`` — abstract interpretation (:mod:`repro.analysis.absint`):
  static/dynamic OEI disagreement and simulator-oracle bound
  violations,
- ``SP9xx`` — repository self-lint (AST rules over ``src/repro``),
  including the ``SP91x`` concurrency-safety family.

Codes are registered through :func:`register_code`, which rejects a
duplicate code at import time — a collision would otherwise silently
shadow the earlier rule's catalogue entry.

``docs/analysis.md`` catalogues the same table for humans; a golden
test keeps the two in sync. The :class:`Diagnostic` record itself lives
in :mod:`repro.errors` so every layer of the library can attach
diagnostics to its exceptions without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Type

from repro.errors import CompileError, Diagnostic, ReproError, Severity


class DiagnosticWarning(UserWarning):
    """Python warning category used by ``compile_program(verify="warn")``."""


@dataclass(frozen=True)
class CodeSpec:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    severity: Severity
    hint: str


def _spec(code: str, title: str, severity: Severity, hint: str) -> CodeSpec:
    return CodeSpec(code, title, severity, hint)


#: Every diagnostic code the toolchain can emit, keyed by code.
CODES: Dict[str, CodeSpec] = {}


def register_code(spec: CodeSpec) -> CodeSpec:
    """Register one diagnostic code; duplicate codes are an import-time
    error, never a silent shadow."""
    existing = CODES.get(spec.code)
    if existing is not None:
        raise ValueError(
            f"duplicate diagnostic code registration: {spec.code} "
            f"({existing.title!r} vs {spec.title!r})"
        )
    CODES[spec.code] = spec
    return spec


for _s in (
        # ---- SP1xx: graph structure -------------------------------------
        _spec("SP101", "rank-mismatch", Severity.ERROR,
              "give the op operands of the ranks its kind requires "
              "(vxm: vector x matrix -> vector; reduce: vector -> scalar)"),
        _spec("SP102", "unknown-semiring", Severity.ERROR,
              "use a semiring registered in repro.semiring.SEMIRINGS"),
        _spec("SP103", "unknown-ewise-op", Severity.ERROR,
              "use an operator from BINARY_OPS/UNARY_OPS matching the arity"),
        _spec("SP104", "unknown-monoid", Severity.ERROR,
              "reduce with a monoid registered in repro.semiring.MONOIDS"),
        _spec("SP105", "multiply-produced-tensor", Severity.ERROR,
              "give each op its own output tensor; merge writers explicitly"),
        _spec("SP106", "dangling-tensor", Severity.WARNING,
              "delete the unused declaration or wire it into an op"),
        _spec("SP107", "graph-cycle", Severity.ERROR,
              "break the intra-iteration cycle with a loop_carried edge"),
        _spec("SP108", "illegal-loop-carry", Severity.ERROR,
              "carry from a produced (or delay-chained) tensor into a "
              "same-kind, non-constant, non-produced tensor"),
        _spec("SP109", "operand-overflow", Severity.ERROR,
              "e-wise ops take at most two operands including "
              "scalar_operand and immediate; split the op"),
        _spec("SP110", "constant-tensor-written", Severity.ERROR,
              "constant tensors are read-only; write a fresh tensor"),
        _spec("SP111", "scalar-operand-misuse", Severity.ERROR,
              "scalar_operand must name a scalar, not a vector/matrix "
              "tensor; pass the tensor as a regular input"),
        _spec("SP112", "inconsistent-redeclaration", Severity.ERROR,
              "declare each tensor once, or redeclare with identical "
              "kind and constancy"),
        _spec("SP113", "duplicate-op", Severity.ERROR,
              "give every op a unique name within its graph"),
        _spec("SP114", "undeclared-tensor", Severity.ERROR,
              "declare tensors with graph.tensor()/vector()/matrix() "
              "before referencing them in an op"),
        # ---- SP2xx: fusion / OEI legality and compiled programs ---------
        _spec("SP201", "mixed-semirings", Severity.ERROR,
              "Sparsepipe preloads one opcode per kernel launch; split "
              "the loop body or unify the semiring"),
        _spec("SP202", "no-contraction", Severity.ERROR,
              "add the vxm/mxv/mxm the accelerator should run, or do "
              "not compile this graph"),
        _spec("SP203", "hidden-reduction-scalar", Severity.WARNING,
              "the scalar is reduced from this iteration's contraction "
              "output, so the e-wise chain is not sub-tensor dependent "
              "and OEI reuse is blocked; lag the scalar one iteration "
              "if the algorithm allows"),
        _spec("SP204", "missing-dual-storage-side", Severity.ERROR,
              "the OEI pair streams the shared matrix in CSC (OS) and "
              "CSR (IS); declare both sides in the matrix formats"),
        _spec("SP205", "incompatible-oei-directions", Severity.ERROR,
              "the source contraction of an OEI pair must allow the OS "
              "dataflow and the destination the IS dataflow"),
        _spec("SP206", "bad-instruction", Severity.ERROR,
              "e-wise instructions need a registered opcode of arity 1 "
              "or 2"),
        _spec("SP207", "unknown-program-semiring", Severity.ERROR,
              "compiled programs must name a registered semiring opcode"),
        _spec("SP208", "register-misuse", Severity.ERROR,
              "instructions may only read registers written earlier; "
              "result_reg must be written and n_registers must cover "
              "every destination"),
        _spec("SP210", "oei-path-dead-end", Severity.ERROR,
              "the fused e-wise chain must produce the destination "
              "contraction's input vector"),
        # ---- SP3xx: schedule legality -----------------------------------
        _spec("SP301", "stage-skew-violation", Severity.ERROR,
              "the Fig 8 skew needs 0 < EWISE_LAG < IS_LAG so each "
              "stage only reads data finished in an earlier step"),
        _spec("SP302", "insufficient-drain", Severity.ERROR,
              "a pair over S sub-tensors needs S + IS_LAG steps to "
              "drain; extend n_steps"),
        _spec("SP303", "bad-partition", Severity.ERROR,
              "sub-tensors must tile [0, n) contiguously with positive "
              "widths"),
        _spec("SP304", "replay-dependency-violation", Severity.ERROR,
              "a stage consumed a sub-tensor before its upstream stage "
              "finished it; restore the Fig 8 stage lags"),
        _spec("SP305", "replay-coverage-violation", Severity.ERROR,
              "each stage must process every sub-tensor exactly once, "
              "in order"),
        _spec("SP306", "invalid-schedule-params", Severity.ERROR,
              "n must be non-negative and subtensor_cols positive"),
        # ---- SP6xx: runtime resilience ----------------------------------
        _spec("SP601", "worker-pool-broken", Severity.WARNING,
              "the process pool died mid-sweep (a worker was killed, "
              "e.g. by the OOM killer); the remaining points were "
              "completed serially in-process"),
        _spec("SP602", "sweep-point-retried", Severity.WARNING,
              "a sweep point failed transiently and was retried; the "
              "retry outcome is recorded in the point's run manifest"),
        _spec("SP603", "sweep-point-failed", Severity.ERROR,
              "a sweep point exhausted its attempts under "
              "on_error='skip'/'retry'; it is recorded as failed in "
              "the run manifest and its result slot is None"),
        _spec("SP604", "cache-entry-quarantined", Severity.WARNING,
              "a corrupt result-cache entry was moved to quarantine/ "
              "so it can never be silently re-missed; the next put "
              "re-populates the slot"),
        _spec("SP605", "malformed-ingest", Severity.ERROR,
              "a MatrixMarket file failed validation; the error "
              "carries 'line <n>' context naming the offending line"),
        _spec("SP606", "watchdog-timeout", Severity.ERROR,
              "a sweep point exceeded the per-item watchdog budget; "
              "raise timeout_s or investigate the hang"),
        _spec("SP607", "fault-injected", Severity.INFO,
              "a deterministic FaultPlan fault fired at an "
              "instrumented site (chaos testing only)"),
        # ---- SP7xx: abstract interpretation -----------------------------
        _spec("SP701", "absint-oei-disagreement", Severity.ERROR,
              "the abstract interpreter and the dynamic oei_detect "
              "disagree on whether the graph admits an OEI pair; one "
              "of the two analyses is wrong — file a bug with the "
              "graph, do not silence the check"),
        _spec("SP702", "traffic-bound-violated", Severity.ERROR,
              "the simulated per-category DRAM traffic exceeded the "
              "static upper bound; either the analyzer under-counts "
              "or the simulator moves bytes the model says it cannot"),
        _spec("SP703", "buffer-bound-violated", Severity.ERROR,
              "the simulated peak buffer occupancy exceeded the "
              "static window + CSR-capacity bound; the buffer "
              "admitted state outside the no-eviction reuse window"),
        _spec("SP704", "absint-format-conflict", Severity.ERROR,
              "a contraction is pinned to a dataflow whose required "
              "storage side (OS: csc, IS: csr) is missing from the "
              "matrix's declared formats; declare the side or unpin"),
        # ---- SP9xx: repository self-lint --------------------------------
        _spec("SP901", "forbidden-import", Severity.ERROR,
              "scipy/networkx are test-only cross-checks (DESIGN.md); "
              "implement the functionality in-library"),
        _spec("SP902", "unregistered-baseline", Severity.ERROR,
              "decorate the engine class with @register_arch so the "
              "registry, CLI, and sweeps can see it"),
        _spec("SP903", "cache-key-field-missing", Severity.ERROR,
              "hash every dataclass field in cache_key() (or use "
              "asdict(self)) so config changes invalidate cached "
              "results"),
        _spec("SP904", "unseeded-nondeterminism", Severity.ERROR,
              "simulator/engine hot paths must be deterministic: seed "
              "the rng explicitly and keep wall-clock out of results"),
        _spec("SP905", "step-loop-outside-reference", Severity.ERROR,
              "per-step Python loops belong to the reference backend "
              "(arch/simulator.py) only; express the computation as "
              "array ops in repro.arch.fastpath instead"),
        _spec("SP906", "reference-backend-pin", Severity.ERROR,
              "library code must not pin backend=\"reference\": the "
              "vectorized backend serves every configuration "
              "(observers and detailed_dram included) bit-identically, "
              "so honor the caller's config; pins belong to tests and "
              "benchmarks only"),
        _spec("SP907", "unhonorable-observer-request", Severity.ERROR,
              "an observers= request was made of an architecture that "
              "is not registered observable=True; it has no event "
              "stream to attach to — silent downgrades are forbidden, "
              "so the request raises instead"),
        # ---- SP91x: concurrency safety (service arc) --------------------
        _spec("SP911", "pool-captured-global", Severity.ERROR,
              "mutable module-global state mutated outside a worker "
              "initializer is silently stale in pool workers (fork) "
              "or absent (spawn); move the mutation into an "
              "_init_worker/install-style initializer passed to the "
              "pool, or thread the state through arguments"),
        _spec("SP912", "non-atomic-cache-write", Severity.ERROR,
              "cache/state files must be written via ResultCache's "
              "tmp-rename protocol (write to a pid-unique .tmp, then "
              "Path.replace) so a concurrent reader never observes a "
              "torn file; write the temp file and rename it"),
        _spec("SP913", "blocking-supervisor-wait", Severity.ERROR,
              "supervisor code must never block unboundedly: replace "
              "time.sleep polling with event/timeout waits and give "
              "every Future.result()/join a timeout so a hung worker "
              "cannot hang the sweep"),
        _spec("SP914", "pool-outside-scheduler-backend", Severity.ERROR,
              "ProcessPoolExecutor is an execution substrate and lives "
              "behind the scheduler protocol; only the localpool "
              "backend (scheduler/localpool.py) may name it — go "
              "through repro.scheduler (create_scheduler/run_fanout) "
              "instead"),
    ):
    register_code(_s)
del _s


def diagnostic(code: str, message: str, location: str = "",
               hint: str = "") -> Diagnostic:
    """Build a :class:`Diagnostic` with the registry's default severity
    (and default hint, unless one is supplied)."""
    spec = CODES[code]
    return Diagnostic(code, spec.severity, message, location,
                      hint or spec.hint)


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one verification run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: What was verified, for report headers (e.g. ``graph pr``).
    subject: str = ""

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def add(self, code: str, message: str, location: str = "",
            hint: str = "") -> Diagnostic:
        """Emit one diagnostic by code (severity from the registry)."""
        d = diagnostic(code, message, location, hint)
        self.diagnostics.append(d)
        return d

    def append(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, other: "DiagnosticReport") -> "DiagnosticReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    def codes(self) -> Tuple[str, ...]:
        """All emitted codes, in emission order (with repeats)."""
        return tuple(d.code for d in self.diagnostics)

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    # ------------------------------------------------------------------
    # Rendering / raising
    # ------------------------------------------------------------------
    def format(self) -> str:
        """Human-readable multi-line rendering."""
        head = self.subject or "verification"
        if not self.diagnostics:
            return f"{head}: ok"
        lines = [f"{head}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)

    def raise_if_errors(
        self, exc_type: Type[ReproError] = CompileError, header: str = ""
    ) -> None:
        """Raise ``exc_type`` carrying every error diagnostic, if any."""
        errors = self.errors
        if not errors:
            return
        head = header or (f"{self.subject or 'verification'} failed with "
                          f"{len(errors)} error(s)")
        body = "\n".join(f"  {d}" for d in errors)
        raise exc_type(f"{head}\n{body}", diagnostics=errors)
