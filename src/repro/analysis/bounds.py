"""Static traffic and buffer-occupancy bounds (the absint oracle).

From a workload profile and a structure-derived
:class:`~repro.arch.loaders.LoadPlan` — *not* from running the
simulator — this module derives per-category upper bounds on DRAM
traffic and on peak on-chip buffer occupancy, then packages them with
the abstract interpreter's verdict into a :class:`StaticReport`.

Why each bound is sound, against the simulator's actual accounting
(:mod:`repro.arch.simulator`):

- ``csc`` / ``csr_eager``: per OEI pair the eager prefetcher only moves
  future column bytes forward, so demand + prefetch together stream the
  matrix exactly once — each category is individually bounded by
  ``matrix_stream_bytes`` and their sum equals it. A streamed (non-OEI)
  iteration charges exactly one ``csc`` stream and no eager traffic.
- ``csr_reload``: reload is a re-fetch of an evicted reuse-window
  element; elements are admitted once per pair and never re-admitted,
  so per pair reload is bounded by the bytes that ever enter the window
  (:func:`repro.oei.reuse.window_entry_bytes`).
- ``vector`` / ``writeback``: the per-step reads are
  ``width(s) * activity`` terms whose step sums telescope to the full
  vector length ``n`` (the plan's widths tile ``[0, n)``), plus the
  profile's flat ``extra_dram_bytes_per_iteration`` — so the per-pair
  and per-stream totals are closed forms, exact up to float fold order.
- ``buffer_peak_bytes``: live window occupancy is dominated by the
  no-eviction admission series
  (:func:`repro.oei.reuse.window_peak_bytes`), and prefetch residency
  is slack-bounded by the CSR window capacity; their sum bounds every
  occupancy sample. Non-OEI runs never touch the buffer, so the bound
  collapses to zero.

The bounds are *tight* for vector/writeback (equality modulo rounding)
and genuinely upper for the matrix-side categories; the differential
oracle test checks ``simulated <= bound`` for every category on every
golden workload and backend. A violation means the analyzer or the
simulator is wrong — both are bugs worth failing CI over (SP702 /
SP703).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.analysis.absint import (
    AbstractEnv,
    StaticOEIDecision,
    abstract_interpret,
    static_oei_decision,
    verify_absint,
)
from repro.analysis.diagnostics import DiagnosticReport
from repro.dataflow.graph import DataflowGraph, TensorKind

# The arch/oei layers import the analysis package (the compiler runs
# the verifier), so everything simulator-side is imported lazily inside
# the functions that need it.
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.config import SparsepipeConfig
    from repro.arch.loaders import LoadPlan
    from repro.arch.profile import WorkloadProfile
    from repro.arch.stats import SimResult

#: Relative slack applied when comparing a simulated value against a
#: bound: the closed forms above equal the simulator's per-step sums up
#: to floating-point fold order, so a few ULPs of headroom are needed —
#: anything beyond this is a real violation.
REL_TOLERANCE = 1e-9
ABS_TOLERANCE_BYTES = 1.0


def resolve_capacity(
    config: "SparsepipeConfig", plan: "LoadPlan",
    paper_nnz: Optional[int] = None,
) -> float:
    """The buffer capacity the simulator will run with (same resolution
    order as :meth:`SparsepipeSimulator.run`)."""
    from repro.arch.config import PAPER_BUFFER_BYTES, scaled_buffer_bytes

    if config.buffer_bytes is not None:
        return float(config.buffer_bytes)
    if paper_nnz is not None:
        return float(scaled_buffer_bytes(plan.total_nnz, paper_nnz))
    return float(PAPER_BUFFER_BYTES)


@dataclass(frozen=True)
class TrafficBounds:
    """Per-category upper bounds for one full application run."""

    by_category: Mapping[str, float]
    total_bytes: float
    buffer_peak_bytes: float
    n_pairs: int
    n_streams: int

    def as_dict(self) -> dict:
        return {
            "by_category": dict(self.by_category),
            "total_bytes": self.total_bytes,
            "buffer_peak_bytes": self.buffer_peak_bytes,
            "n_pairs": self.n_pairs,
            "n_streams": self.n_streams,
        }


def traffic_bounds(
    profile: "WorkloadProfile",
    plan: "LoadPlan",
    config: "SparsepipeConfig",
    capacity: float,
) -> TrafficBounds:
    """Derive the run's traffic/buffer bounds from structure alone,
    mirroring the simulator's pair/stream interleaving exactly."""
    from repro.arch.fastpath import VECTOR_ELEMENT_BYTES
    from repro.arch.stats import TRAFFIC_CATEGORIES
    from repro.oei.reuse import window_entry_bytes, window_peak_bytes

    veb_f = VECTOR_ELEMENT_BYTES * profile.feature_dim
    n = float(plan.n)
    msb = plan.matrix_stream_bytes
    entry_bytes = window_entry_bytes(plan)
    aux = profile.aux_streams
    wb = profile.writeback_streams
    extra = profile.extra_dram_bytes_per_iteration

    bounds: Dict[str, float] = {cat: 0.0 for cat in TRAFFIC_CATEGORIES}
    total = 0.0
    n_pairs = 0
    n_streams = 0

    k = 0
    while k < profile.n_iterations:
        if profile.has_oei and k + 1 < profile.n_iterations:
            act1 = profile.activity_at(k)
            act2 = profile.activity_at(k + 1)
            both = act1 + act2
            bounds["csc"] += msb
            if config.eager_is:
                bounds["csr_eager"] += msb
            bounds["csr_reload"] += entry_bytes
            vector = veb_f * n * (act1 + aux * both) + 2.0 * extra
            writeback = veb_f * n * wb * both
            bounds["vector"] += vector
            bounds["writeback"] += writeback
            # csc + csr_eager together stream the matrix exactly once.
            total += msb + entry_bytes + vector + writeback
            n_pairs += 1
            k += 2
        else:
            act = profile.activity_at(k)
            vector = veb_f * n * act * (1.0 + aux) + extra
            writeback = veb_f * n * wb * act
            bounds["csc"] += msb
            bounds["vector"] += vector
            bounds["writeback"] += writeback
            total += msb + vector + writeback
            n_streams += 1
            k += 1

    if n_pairs:
        peak = window_peak_bytes(plan) + capacity * config.csr_window_fraction
    else:
        peak = 0.0
    return TrafficBounds(
        by_category=bounds,
        total_bytes=total,
        buffer_peak_bytes=peak,
        n_pairs=n_pairs,
        n_streams=n_streams,
    )


def _within(actual: float, bound: float) -> bool:
    return actual <= bound * (1.0 + REL_TOLERANCE) + ABS_TOLERANCE_BYTES


@dataclass
class StaticReport:
    """Everything the static analysis knows about one (workload,
    matrix, config) point, checkable against a simulated result."""

    workload: str
    matrix: str
    env: AbstractEnv
    oei: StaticOEIDecision
    bounds: TrafficBounds
    diagnostics: DiagnosticReport = field(default_factory=DiagnosticReport)

    # ------------------------------------------------------------------
    # The oracle: simulated actuals must respect every bound.
    # ------------------------------------------------------------------
    def check_against(self, result: "SimResult") -> DiagnosticReport:
        """SP702/SP703 diagnostics for every bound the simulated
        ``result`` violates (an empty report means the oracle holds)."""
        from repro.arch.stats import TRAFFIC_CATEGORIES

        report = DiagnosticReport(
            subject=f"oracle {self.workload}/{self.matrix}"
        )
        loc = f"workload {self.workload} / matrix {self.matrix}"
        for cat in TRAFFIC_CATEGORIES:
            actual = result.traffic.bytes_by_category.get(cat, 0.0)
            bound = self.bounds.by_category[cat]
            if not _within(actual, bound):
                report.add(
                    "SP702",
                    f"simulated {cat} traffic {actual:.1f} B exceeds the "
                    f"static bound {bound:.1f} B",
                    loc,
                )
        if not _within(result.traffic.total_bytes, self.bounds.total_bytes):
            report.add(
                "SP702",
                f"simulated total traffic {result.traffic.total_bytes:.1f} B "
                f"exceeds the static bound {self.bounds.total_bytes:.1f} B",
                loc,
            )
        if not _within(result.buffer_peak_bytes, self.bounds.buffer_peak_bytes):
            report.add(
                "SP703",
                f"simulated peak buffer occupancy "
                f"{result.buffer_peak_bytes:.1f} B exceeds the static bound "
                f"{self.bounds.buffer_peak_bytes:.1f} B",
                loc,
            )
        return report

    def to_dict(self) -> dict:
        """JSON-plain form (the ``check --format json`` document)."""
        return {
            "workload": self.workload,
            "matrix": self.matrix,
            "oei": self.oei.as_dict(),
            "bounds": self.bounds.as_dict(),
            "edges": {
                name: {
                    "kind": value.kind.value,
                    "nnz_hi": (None if math.isinf(value.nnz.hi)
                               else value.nnz.hi),
                    "reuse_distance": value.reuse_distance,
                }
                for name, value in sorted(self.env.items())
            },
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


def static_report(
    graph: DataflowGraph,
    profile: "WorkloadProfile",
    plan: "LoadPlan",
    config: "SparsepipeConfig",
    capacity: float,
    matrix: str = "",
) -> StaticReport:
    """Build the full static report for one analysis point."""
    env = abstract_interpret(
        graph, n=plan.n, matrix_nnz=_constant_matrix_nnz(graph, plan)
    )
    return StaticReport(
        workload=graph.name,
        matrix=matrix,
        env=env,
        oei=static_oei_decision(graph),
        bounds=traffic_bounds(profile, plan, config, capacity),
        diagnostics=verify_absint(graph),
    )


def _constant_matrix_nnz(graph: DataflowGraph, plan: "LoadPlan") -> Dict[str, int]:
    """Pin every constant matrix tensor to the load plan's nnz — the
    plan is built from the one shared matrix all 11 workloads stream."""
    return {
        name: plan.total_nnz
        for name, t in graph.tensors.items()
        if t.kind is TensorKind.MATRIX and t.constant
    }
