"""Abstract interpretation over dataflow graphs (the SP7xx family).

The verifier passes of :mod:`repro.analysis.passes` check *local*
shape; this module interprets the whole graph over an abstract domain
— without executing anything — and derives global facts:

- a per-tensor :class:`AbstractValue` (rank, constancy, storage
  formats, an nnz interval, and the OEI reuse distance to the nearest
  upstream contraction output),
- a static OEI fusibility/legality decision
  (:func:`static_oei_decision`) computed by fixpoint relaxation over
  the element-wise dependency relation — deliberately a *different
  algorithm* from the dynamic BFS in
  :func:`repro.dataflow.oei_detect.find_oei_path`, so the two can
  cross-check each other (:func:`oei_crosscheck`, SP701),
- storage-format conflicts for pinned contractions (SP704), which
  generalize SP204 beyond the detected OEI pair.

The nnz intervals are *sound upper structures*: the true non-zero
count of every concrete execution lies inside the interval, assuming
only that the semiring has no additive inverses cancelling terms
(Sparsepipe's semirings are all in this class). Unknown operators
degrade to the dense top element rather than guessing.

:mod:`repro.analysis.bounds` builds the traffic/buffer side of the
static story on top of this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.analysis.diagnostics import DiagnosticReport
from repro.dataflow.dependency import is_subtensor
from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind
from repro.dataflow.oei_detect import (
    OEIPath,
    _matrix_input,
    _scalar_blockers,
    _vector_input,
    find_oei_path,
)

#: Storage sides assumed for a matrix with no declared formats.
DUAL_FORMATS: FrozenSet[str] = frozenset({"csc", "csr"})

#: Loop-carried edges crossed at most this often by a legal OEI path
#: (mirrors the dynamic detector; more crossings fuse nothing new).
MAX_CARRY_CROSSINGS = 2

#: Binary operators with ``0 op 0 == 0`` *and* an annihilating zero
#: (``0 op x == x op 0 == 0``): output nnz is bounded by the smallest
#: input's.
_ANNIHILATING_BINARY = frozenset({"times", "land"})

#: Binary operators with ``0 op 0 == 0`` but no annihilator: a nonzero
#: output element needs a nonzero in at least one input at that index,
#: so output nnz is bounded by the *sum* of input nnz.
_ZERO_PRESERVING_BINARY = frozenset(
    {"plus", "minus", "min", "max", "lor", "abs_diff", "first", "second"}
)

#: Unary operators with ``op(0) == 0``: nnz is preserved or shrunk.
#: (``one`` and ``minv`` map zero to nonzero and are deliberately absent.)
_ZERO_PRESERVING_UNARY = frozenset(
    {"identity", "abs", "ainv", "relu", "sqrt", "isnonzero"}
)


# ----------------------------------------------------------------------
# Abstract domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over non-negative counts; ``hi``
    may be ``inf`` (the top element)."""

    lo: float = 0.0
    hi: float = math.inf

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @classmethod
    def exact(cls, value: float) -> "Interval":
        return cls(float(value), float(value))

    @classmethod
    def upto(cls, hi: float) -> "Interval":
        return cls(0.0, float(hi))

    @classmethod
    def top(cls) -> "Interval":
        return cls(0.0, math.inf)

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (interval hull)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp(self, hi: float) -> "Interval":
        return Interval(min(self.lo, hi), min(self.hi, hi))

    def __contains__(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:
        hi = "inf" if math.isinf(self.hi) else f"{self.hi:g}"
        return f"[{self.lo:g}, {hi}]"


@dataclass(frozen=True)
class AbstractValue:
    """What the interpreter knows about one tensor edge.

    ``reuse_distance`` is the number of element-wise hops from the
    nearest upstream contraction output along sub-tensor-dependent
    ops within this iteration (0 for the output itself); ``None`` when
    the tensor is not sub-tensor-dependent on any contraction output —
    reductions and unknown operators break the chain.
    """

    kind: TensorKind
    constant: bool = False
    formats: FrozenSet[str] = frozenset()
    nnz: Interval = field(default_factory=Interval.top)
    reuse_distance: Optional[int] = None

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self.kind is not other.kind:
            raise ValueError(
                f"cannot join abstract values of kinds {self.kind} / {other.kind}"
            )
        if self.reuse_distance is None:
            distance = other.reuse_distance
        elif other.reuse_distance is None:
            distance = self.reuse_distance
        else:
            distance = min(self.reuse_distance, other.reuse_distance)
        return AbstractValue(
            kind=self.kind,
            constant=self.constant and other.constant,
            formats=self.formats | other.formats,
            nnz=self.nnz.join(other.nnz),
            reuse_distance=distance,
        )


AbstractEnv = Dict[str, AbstractValue]


# ----------------------------------------------------------------------
# Abstract interpretation proper
# ----------------------------------------------------------------------
def _initial_env(
    graph: DataflowGraph, n: float, matrix_nnz: Mapping[str, int]
) -> AbstractEnv:
    env: AbstractEnv = {}
    for name, tensor in graph.tensors.items():
        if tensor.kind is TensorKind.MATRIX:
            hi = float(matrix_nnz.get(name, n * n))
            value = AbstractValue(
                kind=tensor.kind,
                constant=tensor.constant,
                formats=graph.matrix_formats.get(name, DUAL_FORMATS),
                nnz=Interval.upto(hi),
            )
        elif tensor.kind is TensorKind.VECTOR:
            value = AbstractValue(
                kind=tensor.kind,
                constant=tensor.constant,
                nnz=Interval.upto(n),
            )
        else:
            value = AbstractValue(
                kind=tensor.kind,
                constant=tensor.constant,
                nnz=Interval.upto(1.0),
            )
        env[name] = value
    return env


def _maps_zero_to_nonzero(op: OpNode) -> bool:
    """Conservatively: does the op potentially turn a zero element into
    a nonzero one (densifying its output)?"""
    if op.scalar_operand is not None:
        # Runtime scalar of unknown value combined with every element.
        return op.op_name not in _ANNIHILATING_BINARY
    if op.immediate is not None:
        if op.op_name in _ANNIHILATING_BINARY:
            return False
        return op.immediate != 0.0
    return False


def _ewise_nnz(op: OpNode, inputs: List[AbstractValue], n: float) -> Interval:
    """Output nnz interval of an element-wise op."""
    vector_inputs = [v for v in inputs if v.kind is not TensorKind.SCALAR]
    if not vector_inputs:
        return Interval.upto(n)
    if _maps_zero_to_nonzero(op):
        return Interval.upto(n)
    his = [v.nnz.hi for v in vector_inputs]
    if op.kind is OpKind.NOOP or (len(vector_inputs) == 1
                                  and op.op_name in _ZERO_PRESERVING_UNARY):
        return Interval.upto(min(min(his), n))
    if op.op_name in _ANNIHILATING_BINARY:
        return Interval.upto(min(min(his), n))
    if op.op_name in _ZERO_PRESERVING_BINARY:
        return Interval.upto(min(sum(his), n))
    # Unknown operator: dense top.
    return Interval.upto(n)


def abstract_interpret(
    graph: DataflowGraph,
    n: Optional[float] = None,
    matrix_nnz: Optional[Mapping[str, int]] = None,
    max_passes: int = 8,
) -> AbstractEnv:
    """Propagate abstract values through ``graph`` to a loop-carried
    fixpoint.

    ``n`` is the (symbolic) vector length — ``None`` means unknown, and
    every dense bound degrades to ``inf``. ``matrix_nnz`` optionally
    pins the nnz of named (usually constant) matrices.

    The iteration is monotone over a finite-height lattice once
    intervals are clamped to ``n``; with ``n`` unknown the loop widens
    any still-changing interval to top after ``max_passes`` passes, so
    it always terminates.
    """
    length = math.inf if n is None else float(n)
    env = _initial_env(graph, length, matrix_nnz or {})
    scalar_upstream = _scalar_blockers(graph)
    contraction_outputs = {op.output.name for op in graph.contractions()}
    order = graph.topo_order(graph.ops)

    for pass_no in range(max_passes):
        changed = False
        for op in order:
            value = _transfer(op, env, length, scalar_upstream,
                              contraction_outputs)
            old = env.get(op.output.name)
            if old is not None and old.kind is value.kind:
                value = AbstractValue(
                    kind=value.kind,
                    constant=old.constant,
                    formats=value.formats,
                    nnz=value.nnz if pass_no == 0 else old.nnz.join(value.nnz),
                    reuse_distance=value.reuse_distance,
                )
            if value != old:
                env[op.output.name] = value
                changed = True
        # Loop-carried joins: next iteration's input sees this
        # iteration's output.
        for produced, consumed in graph.loop_carried.items():
            if produced in env and consumed in env:
                joined = env[consumed].join(env[produced])
                if joined != env[consumed]:
                    env[consumed] = joined
                    changed = True
        if not changed:
            break
    else:
        # Widen: anything still in flux goes to the dense bound.
        for name, value in list(env.items()):
            if value.kind is TensorKind.VECTOR:
                env[name] = AbstractValue(
                    kind=value.kind, constant=value.constant,
                    formats=value.formats, nnz=Interval.upto(length),
                    reuse_distance=value.reuse_distance,
                )
    return env


def _transfer(
    op: OpNode,
    env: AbstractEnv,
    n: float,
    scalar_upstream: Mapping[str, set],
    contraction_outputs: set,
) -> AbstractValue:
    """Abstract semantics of one op."""
    inputs = [env[t.name] for t in op.inputs if t.name in env]
    out_kind = op.output.kind

    if op.kind in (OpKind.VXM, OpKind.MXV):
        matrix = next((v for v in inputs if v.kind is TensorKind.MATRIX), None)
        hi = n if matrix is None else min(n, matrix.nnz.hi)
        return AbstractValue(kind=out_kind, nnz=Interval.upto(hi),
                             reuse_distance=0)
    if op.kind is OpKind.MXM:
        # Forward-compatible SpGEMM bound: nnz(AB) <= min(n^2,
        # nnz(A) * nnz(B)) without inspecting structure.
        matrices = [v for v in inputs if v.kind is TensorKind.MATRIX]
        hi = n * n
        if len(matrices) >= 2:
            hi = min(hi, matrices[0].nnz.hi * matrices[1].nnz.hi)
        return AbstractValue(kind=out_kind, nnz=Interval.upto(hi),
                             reuse_distance=0)
    if op.kind in (OpKind.REDUCE, OpKind.DOT):
        return AbstractValue(kind=out_kind, nnz=Interval.upto(1.0),
                             reuse_distance=None)

    # Element-wise family (EWISE / APPLY / NOOP).
    nnz = _ewise_nnz(op, inputs, n)
    distance: Optional[int] = None
    if is_subtensor(op):
        blocker = scalar_upstream.get(op.scalar_operand)
        blocked = blocker is not None and bool(blocker & contraction_outputs)
        if not blocked:
            upstream = [v.reuse_distance for v in inputs
                        if v.reuse_distance is not None]
            if upstream:
                distance = min(upstream) + 1
    return AbstractValue(kind=out_kind, nnz=nnz, reuse_distance=distance)


# ----------------------------------------------------------------------
# Static OEI fusibility / legality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StaticOEIDecision:
    """The abstract interpreter's verdict on OEI fusion.

    ``fusible`` states that a sub-tensor-dependent path from a
    contraction output to a same-constant-matrix contraction input
    exists (the property :func:`find_oei_path` detects dynamically);
    ``legal`` additionally requires the declared storage formats and
    dataflow pins to admit the OS -> IS pairing. ``blockers`` lists
    human-readable reasons whenever ``legal`` is weaker than
    ``fusible``.
    """

    fusible: bool
    legal: bool
    src_name: Optional[str] = None
    dst_name: Optional[str] = None
    matrix_name: Optional[str] = None
    iteration_distance: Optional[int] = None
    n_ewise_ops: Optional[int] = None
    blockers: Tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "fusible": self.fusible,
            "legal": self.legal,
            "src": self.src_name,
            "dst": self.dst_name,
            "matrix": self.matrix_name,
            "iteration_distance": self.iteration_distance,
            "n_ewise_ops": self.n_ewise_ops,
            "blockers": list(self.blockers),
        }


def _relax_reachability(
    graph: DataflowGraph, src: OpNode, scalar_upstream: Mapping[str, set]
) -> Dict[Tuple[str, int], int]:
    """Minimum element-wise-op counts for every ``(tensor, crossings)``
    state reachable from ``src``'s output along sub-tensor-dependent
    edges, by Bellman-Ford-style relaxation to a fixpoint.

    This intentionally shares no traversal code with the BFS in
    :func:`find_oei_path`; agreement between the two is asserted by
    SP701 rather than by construction.
    """
    dist: Dict[Tuple[str, int], int] = {(src.output.name, 0): 0}
    # Precompute the sub-tensor edge list once; an edge is blocked when
    # the consuming op's runtime scalar reduces *this* source's output
    # within the iteration (CG's alpha) — per-source, like the dynamic
    # detector.
    edges: List[Tuple[str, str]] = []
    for op in graph.ops:
        if not is_subtensor(op):
            continue
        blocker = scalar_upstream.get(op.scalar_operand)
        if blocker is not None and src.output.name in blocker:
            continue
        for t in op.inputs:
            edges.append((t.name, op.output.name))

    changed = True
    while changed:
        changed = False
        for (tensor, crossings), d in list(dist.items()):
            for u, v in edges:
                if u != tensor:
                    continue
                state = (v, crossings)
                if d + 1 < dist.get(state, math.inf):
                    dist[state] = d + 1
                    changed = True
            carried = graph.loop_carried.get(tensor)
            if carried is not None and crossings < MAX_CARRY_CROSSINGS:
                state = (carried, crossings + 1)
                if d < dist.get(state, math.inf):
                    dist[state] = d
                    changed = True
    return dist


def static_oei_decision(graph: DataflowGraph) -> StaticOEIDecision:
    """Decide OEI fusibility and legality without running the dynamic
    detector."""
    contractions = graph.contractions()
    scalar_upstream = _scalar_blockers(graph)
    best: Optional[Tuple[int, int, OpNode, OpNode, str]] = None

    for src in contractions:
        src_matrix = _matrix_input(src)
        if src_matrix is None or not graph.tensors[src_matrix].constant:
            continue
        dist = _relax_reachability(graph, src, scalar_upstream)
        for dst in contractions:
            if _matrix_input(dst) != src_matrix:
                continue
            vec = _vector_input(dst)
            if vec is None:
                continue
            for crossings in range(MAX_CARRY_CROSSINGS + 1):
                if dst is src and crossings == 0:
                    continue  # a contraction cannot feed itself in-iteration
                d = dist.get((vec, crossings))
                if d is None:
                    continue
                key = (d, crossings)
                if best is None or key < (best[0], best[1]):
                    best = (d, crossings, src, dst, src_matrix)

    if best is None:
        return StaticOEIDecision(fusible=False, legal=False)

    n_ops, crossings, src, dst, matrix_name = best
    blockers: List[str] = []
    formats = graph.matrix_formats.get(matrix_name)
    if formats is not None:
        missing = sorted({"csc", "csr"} - set(formats))
        if missing:
            blockers.append(
                f"matrix {matrix_name!r} lacks the {missing} storage side(s)"
            )
    if src.dataflow not in (None, "os"):
        blockers.append(
            f"source {src.name!r} is pinned to the {src.dataflow!r} dataflow"
        )
    if dst.dataflow not in (None, "is"):
        blockers.append(
            f"destination {dst.name!r} is pinned to the {dst.dataflow!r} dataflow"
        )
    return StaticOEIDecision(
        fusible=True,
        legal=not blockers,
        src_name=src.name,
        dst_name=dst.name,
        matrix_name=matrix_name,
        iteration_distance=crossings,
        n_ewise_ops=n_ops,
        blockers=tuple(blockers),
    )


# ----------------------------------------------------------------------
# SP701 / SP704 diagnostics
# ----------------------------------------------------------------------
_REQUIRED_SIDE = {"os": "csc", "is": "csr"}
_UNSET = object()


def oei_crosscheck(
    graph: DataflowGraph, dynamic_path: object = _UNSET
) -> DiagnosticReport:
    """Cross-check the static decision against the dynamic detector.

    ``dynamic_path`` is injectable for testing; by default the dynamic
    side is recomputed via :func:`find_oei_path`.
    """
    report = DiagnosticReport(subject=f"absint {graph.name}")
    decision = static_oei_decision(graph)
    path: Optional[OEIPath]
    path = find_oei_path(graph) if dynamic_path is _UNSET else dynamic_path
    if decision.fusible != (path is not None):
        static_says = "fusible" if decision.fusible else "not fusible"
        dynamic_says = (
            f"found {path.src.name!r} -> {path.dst.name!r}"
            if path is not None else "found no path"
        )
        report.add(
            "SP701",
            f"abstract interpreter says the graph is {static_says} but "
            f"the dynamic detector {dynamic_says}",
            f"graph {graph.name}",
        )
    return report


def format_conflicts(graph: DataflowGraph) -> DiagnosticReport:
    """SP704: a pinned contraction whose matrix lacks the storage side
    that dataflow streams (OS: csc, IS: csr)."""
    report = DiagnosticReport(subject=f"absint {graph.name}")
    for op in graph.contractions():
        side = _REQUIRED_SIDE.get(op.dataflow)
        if side is None:
            continue
        matrix_name = _matrix_input(op)
        if matrix_name is None:
            continue
        formats = graph.matrix_formats.get(matrix_name)
        if formats is not None and side not in formats:
            report.add(
                "SP704",
                f"contraction {op.name!r} is pinned to the "
                f"{op.dataflow!r} dataflow, which streams matrix "
                f"{matrix_name!r} in {side}, but its declared formats "
                f"are {sorted(formats)}",
                f"graph {graph.name} / op {op.name}",
            )
    return report


def verify_absint(graph: DataflowGraph) -> DiagnosticReport:
    """All graph-level absint diagnostics (SP701 + SP704) — the hook
    :func:`repro.analysis.passes.verify_graph` runs as a legality pass."""
    report = oei_crosscheck(graph)
    report.extend(format_conflicts(graph))
    return report
