"""AST self-lint: repository invariants checked statically (SP9xx).

Five custom :mod:`ast` rules over the library source tree enforce
invariants that DESIGN.md and PR history established but nothing
previously checked:

- **SP901** — no ``scipy``/``networkx`` imports in library code; they
  are test-only cross-checks.
- **SP902** — every module under ``baselines/`` that defines an
  engine-like class (one with a ``run`` method) must register it with
  ``@register_arch``, or the registry/CLI/sweeps silently lose it.
- **SP903** — every field of a dataclass that defines ``cache_key()``
  must be consumed by it (directly, or wholesale via ``asdict``/
  ``vars``). This is exactly the PR-1 stale-cache bug class: a config
  field missing from the hash makes distinct configs collide in the
  result cache.
- **SP904** — no unseeded randomness or wall-clock reads inside the
  simulator/engine hot paths (``arch``, ``oei``, ``engine``,
  ``dataflow``, ``formats``, ``semiring``): results must be
  deterministic and replayable.
- **SP905** — no ``for ... in range(<x>.n_steps)`` loops in ``arch/``
  outside the reference backend (``arch/simulator.py``). The
  vectorized backend exists precisely so per-step Python iteration
  stays confined to the reference implementation; a step loop leaking
  into other arch modules re-introduces the interpreter bottleneck the
  fast path removed.

Run it with ``python -m repro selfcheck`` (wired into CI's lint job).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import DiagnosticReport

#: Modules that may only be imported from tests (DESIGN.md).
FORBIDDEN_IMPORTS = ("scipy", "networkx")

#: Sub-packages whose code runs inside the simulation/timing hot path
#: and must therefore be deterministic (SP904).
HOT_PATH_PACKAGES = ("arch", "oei", "engine", "dataflow", "formats",
                     "semiring")

#: The one module allowed to walk simulation steps in a Python loop —
#: the reference backend (SP905).
REFERENCE_BACKEND = "arch/simulator.py"

#: Calls that introduce nondeterminism when they appear in a hot path.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "time_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
}


def _library_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _iter_sources(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def _decorator_name(node: ast.expr) -> str:
    """Innermost name of a decorator expression (``a.b(...)`` -> ``b``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# ----------------------------------------------------------------------
# SP901: forbidden imports
# ----------------------------------------------------------------------
def _check_imports(tree: ast.AST, rel: str, report: DiagnosticReport) -> None:
    for node in ast.walk(tree):
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
        for name in names:
            top = name.split(".")[0]
            if top in FORBIDDEN_IMPORTS:
                report.add("SP901",
                           f"library code imports {top!r}",
                           f"{rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP902: baselines must register
# ----------------------------------------------------------------------
def _check_baseline_registration(
    tree: ast.AST, rel: str, report: DiagnosticReport
) -> None:
    engine_classes = []
    registered = False
    for node in ast.iter_child_nodes(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        has_run = any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "run"
            for item in node.body
        )
        if has_run:
            engine_classes.append(node)
        if any(_decorator_name(d) == "register_arch"
               for d in node.decorator_list):
            registered = True
    if engine_classes and not registered:
        first = engine_classes[0]
        report.add("SP902",
                   f"defines engine class {first.name!r} but never applies "
                   "@register_arch", f"{rel}:{first.lineno}")


# ----------------------------------------------------------------------
# SP903: cache_key must consume every dataclass field
# ----------------------------------------------------------------------
def _dataclass_fields(cls: ast.ClassDef) -> List[str]:
    fields = []
    for item in cls.body:
        if not isinstance(item, ast.AnnAssign):
            continue
        if not isinstance(item.target, ast.Name):
            continue
        ann = ast.unparse(item.annotation)
        if "ClassVar" in ann or item.target.id.startswith("_"):
            continue
        fields.append(item.target.id)
    return fields


def _check_cache_keys(tree: ast.AST, rel: str,
                      report: DiagnosticReport) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_decorator_name(d) == "dataclass"
                   for d in node.decorator_list):
            continue
        cache_key = next(
            (item for item in node.body
             if isinstance(item, ast.FunctionDef)
             and item.name == "cache_key"),
            None,
        )
        if cache_key is None:
            continue
        consumed = set()
        wholesale = False
        for sub in ast.walk(cache_key):
            if isinstance(sub, ast.Call):
                callee = _decorator_name(sub.func)
                if callee in ("asdict", "astuple", "vars"):
                    wholesale = True
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"):
                consumed.add(sub.attr)
                if sub.attr == "__dict__":
                    wholesale = True
        if wholesale:
            continue
        missing = [f for f in _dataclass_fields(node) if f not in consumed]
        if missing:
            report.add("SP903",
                       f"{node.name}.cache_key() never reads field(s) "
                       f"{missing}; equal keys would alias distinct configs",
                       f"{rel}:{cache_key.lineno}")


# ----------------------------------------------------------------------
# SP904: determinism in hot paths
# ----------------------------------------------------------------------
def _call_path(node: ast.Call) -> Tuple[str, ...]:
    """Dotted attribute path of a call, e.g. ``np.random.default_rng``
    -> ``("np", "random", "default_rng")``; empty when not a plain
    attribute chain."""
    parts: List[str] = []
    cur = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return tuple(reversed(parts))
    return ()


def _check_determinism(tree: ast.AST, rel: str,
                       report: DiagnosticReport) -> None:
    imports_random = any(
        isinstance(node, ast.Import)
        and any(alias.name == "random" for alias in node.names)
        or (isinstance(node, ast.ImportFrom) and node.module == "random")
        for node in ast.walk(tree)
    )
    if imports_random:
        report.add("SP904",
                   "hot-path module imports the stdlib 'random' module "
                   "(unseeded global state)", rel)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        path = _call_path(node)
        if not path:
            continue
        if path[-1] == "default_rng" and not node.args and not node.keywords:
            report.add("SP904",
                       "default_rng() without an explicit seed is "
                       "nondeterministic", f"{rel}:{node.lineno}")
        elif len(path) >= 2 and path[-2:] in _CLOCK_CALLS:
            report.add("SP904",
                       f"reads the wall clock via {'.'.join(path)}()",
                       f"{rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP905: step loops stay in the reference backend
# ----------------------------------------------------------------------
def _check_step_loops(tree: ast.AST, rel: str,
                      report: DiagnosticReport) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        call = node.iter
        if not (isinstance(call, ast.Call)
                and _decorator_name(call.func) == "range"):
            continue
        if any(isinstance(arg, ast.Attribute) and arg.attr == "n_steps"
               for arg in call.args):
            report.add("SP905",
                       "per-step Python loop (for ... in range(*.n_steps)) "
                       f"outside the reference backend ({REFERENCE_BACKEND}); "
                       "vectorize it or move it into the reference loop",
                       f"{rel}:{node.lineno}")


def selfcheck(root: Optional[Path] = None) -> DiagnosticReport:
    """Lint the library tree (default: the installed ``repro`` package)
    and return every SP9xx finding as one report."""
    root = Path(root) if root is not None else _library_root()
    report = DiagnosticReport(subject=f"selfcheck {root}")
    for path in _iter_sources(root):
        rel = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # pragma: no cover - broken tree
            report.add("SP901", f"unparseable source: {exc}", rel)
            continue
        _check_imports(tree, rel, report)
        if rel.startswith("baselines/") and path.name != "__init__.py":
            _check_baseline_registration(tree, rel, report)
        _check_cache_keys(tree, rel, report)
        top = rel.split("/", 1)[0]
        if top in HOT_PATH_PACKAGES:
            _check_determinism(tree, rel, report)
        if top == "arch" and rel != REFERENCE_BACKEND:
            _check_step_loops(tree, rel, report)
    return report
