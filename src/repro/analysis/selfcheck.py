"""AST self-lint: repository invariants checked statically (SP9xx).

Custom :mod:`ast` rules over the library source tree enforce
invariants that DESIGN.md and PR history established but nothing
previously checked. Rules are organized as *passes*
(:class:`SelfCheckPass`): each file is parsed and walked **once** into
a shared :class:`ModuleContext`, and every pass declares the path
prefixes it opts into — adding a rule never adds another tree walk.

- **SP901** — no ``scipy``/``networkx`` imports in library code; they
  are test-only cross-checks.
- **SP902** — every module under ``baselines/`` that defines an
  engine-like class (one with a ``run`` method) must register it with
  ``@register_arch``, or the registry/CLI/sweeps silently lose it.
- **SP903** — every field of a dataclass that defines ``cache_key()``
  must be consumed by it (directly, or wholesale via ``asdict``/
  ``vars``). This is exactly the PR-1 stale-cache bug class: a config
  field missing from the hash makes distinct configs collide in the
  result cache.
- **SP904** — no unseeded randomness or wall-clock reads inside the
  simulator/engine hot paths (``arch``, ``oei``, ``engine``,
  ``dataflow``, ``formats``, ``semiring``, ``resilience``): results
  must be deterministic and replayable. (``resilience`` joined the
  list when the fault-injection layer shipped — its firing decisions
  are sha256-derived precisely so this rule can hold.)
- **SP905** — no ``for ... in range(<x>.n_steps)`` loops in ``arch/``
  outside the reference backend (``arch/simulator.py``). The
  vectorized backend exists precisely so per-step Python iteration
  stays confined to the reference implementation; a step loop leaking
  into other arch modules re-introduces the interpreter bottleneck the
  fast path removed.
- **SP906** — no ``backend="reference"`` pins in library code. Batched
  event synthesis made the vectorized backend serve every observed and
  banked-DRAM configuration bit-identically, so a library-side pin is
  never a requirement — it is a silent 2-10x slowdown (the Fig 15 bug
  class). Pins belong to tests and benchmarks, which live outside the
  package tree this lint walks.

The **SP91x concurrency-safety family** targets the service arc
(pools, caches, supervisors):

- **SP911** — mutable module-global state (``global`` statements) in
  pool-adjacent packages may only be mutated inside initializer-style
  functions (``_init_worker_context``, ``install``, ``mark_worker``,
  import latches): a global mutated anywhere else is silently stale in
  forked pool workers and absent under spawn.
- **SP912** — cache/state files in ``engine/``/``resilience/`` must be
  written via the tmp-rename protocol :class:`ResultCache` established
  (write a pid-unique temp file, then ``Path.replace``): a function
  that writes a file but never renames one can expose a torn file to
  a concurrent reader. (``resilience/faults.py`` is exempt — its
  chaos hooks corrupt files *by design*.)
- **SP913** — supervisor code (``resilience/``, ``engine/parallel``,
  ``service/``, ``scheduler/``) must not block unboundedly:
  ``time.sleep`` polling and no-timeout ``Future.result()`` calls can
  hang an entire sweep behind one dead worker.
- **SP914** — ``ProcessPoolExecutor`` is an execution substrate and
  belongs behind the scheduler protocol: only the ``localpool``
  backend (``scheduler/localpool.py``) may name it. ``supervised_map``
  / ``simulate_many`` / ``JobQueue`` stay backend-agnostic — code that
  wants a pool goes through :mod:`repro.scheduler`.

Run it with ``python -m repro selfcheck`` (wired into CI's lint job).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport

#: Modules that may only be imported from tests (DESIGN.md).
FORBIDDEN_IMPORTS = ("scipy", "networkx")

#: Sub-packages whose code runs inside the simulation/timing hot path
#: and must therefore be deterministic (SP904).
HOT_PATH_PACKAGES = ("arch", "oei", "engine", "dataflow", "formats",
                     "semiring", "resilience")

#: The one module allowed to walk simulation steps in a Python loop —
#: the reference backend (SP905).
REFERENCE_BACKEND = "arch/simulator.py"

#: Packages whose module-global state ends up captured in pool workers
#: (SP911) and whose files are read concurrently (SP912).
SERVICE_ARC_PACKAGES = ("engine", "resilience", "experiments", "service",
                        "scheduler")

#: Function-name markers that identify sanctioned global mutators:
#: pool initializers (``_init_worker_context``), arming/disarming hooks
#: (``install``, ``mark_worker``), and idempotent import latches
#: (``_ensure_builtin``).
INITIALIZER_MARKERS = ("init", "worker", "install", "ensure", "boot")

#: Supervisor-side modules that must never block unboundedly (SP913).
SUPERVISOR_PATHS = ("resilience/", "engine/parallel.py", "service/",
                    "scheduler/")

#: The one module allowed to name ProcessPoolExecutor — the pool
#: substrate behind the scheduler protocol (SP914).
POOL_BACKEND = "scheduler/localpool.py"

#: Calls that introduce nondeterminism when they appear in a hot path.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "time_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
}

#: Method names that write a file's contents in one call.
_FILE_WRITE_ATTRS = ("write_text", "write_bytes")

#: Method names that atomically move a finished temp file into place.
_RENAME_ATTRS = ("replace", "rename")


def _library_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _iter_sources(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def _decorator_name(node: ast.expr) -> str:
    """Innermost name of a decorator expression (``a.b(...)`` -> ``b``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _call_path(node: ast.Call) -> Tuple[str, ...]:
    """Dotted attribute path of a call, e.g. ``np.random.default_rng``
    -> ``("np", "random", "default_rng")``; empty when not a plain
    attribute chain."""
    parts: List[str] = []
    cur = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return tuple(reversed(parts))
    return ()


# ----------------------------------------------------------------------
# The pass framework: one parse + one walk per file, shared by rules
# ----------------------------------------------------------------------
class ModuleContext:
    """One parsed source file, walked once and shared by every pass."""

    def __init__(self, rel: str, tree: ast.AST) -> None:
        self.rel = rel
        self.tree = tree
        #: Every node, from a single ``ast.walk`` — passes filter this
        #: instead of re-walking the tree.
        self.nodes: Tuple[ast.AST, ...] = tuple(ast.walk(tree))

    def walk(self, *types: type) -> Iterator[ast.AST]:
        """Nodes of the given types, in walk order."""
        for node in self.nodes:
            if isinstance(node, types):
                yield node

    @property
    def functions(self) -> List[ast.FunctionDef]:
        return list(self.walk(ast.FunctionDef, ast.AsyncFunctionDef))


@dataclass(frozen=True)
class SelfCheckPass:
    """One self-lint rule: its code, the paths it opts into, and the
    check itself (``check(ctx, report)``)."""

    code: str
    name: str
    check: Callable[[ModuleContext, DiagnosticReport], None]
    #: Path prefixes this pass runs on ("" matches everything).
    include: Tuple[str, ...] = ("",)
    #: Path prefixes (or exact paths) this pass skips.
    exclude: Tuple[str, ...] = ()
    #: Skip package ``__init__.py`` files.
    skip_init: bool = False

    def applies(self, rel: str) -> bool:
        if self.skip_init and rel.endswith("__init__.py"):
            return False
        if any(rel.startswith(p) for p in self.exclude):
            return False
        return any(rel.startswith(p) for p in self.include)


# ----------------------------------------------------------------------
# SP901: forbidden imports
# ----------------------------------------------------------------------
def _check_imports(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for node in ctx.walk(ast.Import, ast.ImportFrom):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module] if node.module else []
        for name in names:
            top = name.split(".")[0]
            if top in FORBIDDEN_IMPORTS:
                report.add("SP901",
                           f"library code imports {top!r}",
                           f"{ctx.rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP902: baselines must register
# ----------------------------------------------------------------------
def _check_baseline_registration(
    ctx: ModuleContext, report: DiagnosticReport
) -> None:
    engine_classes = []
    registered = False
    for node in ast.iter_child_nodes(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        has_run = any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "run"
            for item in node.body
        )
        if has_run:
            engine_classes.append(node)
        if any(_decorator_name(d) == "register_arch"
               for d in node.decorator_list):
            registered = True
    if engine_classes and not registered:
        first = engine_classes[0]
        report.add("SP902",
                   f"defines engine class {first.name!r} but never applies "
                   "@register_arch", f"{ctx.rel}:{first.lineno}")


# ----------------------------------------------------------------------
# SP903: cache_key must consume every dataclass field
# ----------------------------------------------------------------------
def _dataclass_fields(cls: ast.ClassDef) -> List[str]:
    fields = []
    for item in cls.body:
        if not isinstance(item, ast.AnnAssign):
            continue
        if not isinstance(item.target, ast.Name):
            continue
        ann = ast.unparse(item.annotation)
        if "ClassVar" in ann or item.target.id.startswith("_"):
            continue
        fields.append(item.target.id)
    return fields


def _check_cache_keys(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for node in ctx.walk(ast.ClassDef):
        if not any(_decorator_name(d) == "dataclass"
                   for d in node.decorator_list):
            continue
        cache_key = next(
            (item for item in node.body
             if isinstance(item, ast.FunctionDef)
             and item.name == "cache_key"),
            None,
        )
        if cache_key is None:
            continue
        consumed = set()
        wholesale = False
        for sub in ast.walk(cache_key):
            if isinstance(sub, ast.Call):
                callee = _decorator_name(sub.func)
                if callee in ("asdict", "astuple", "vars"):
                    wholesale = True
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"):
                consumed.add(sub.attr)
                if sub.attr == "__dict__":
                    wholesale = True
        if wholesale:
            continue
        missing = [f for f in _dataclass_fields(node) if f not in consumed]
        if missing:
            report.add("SP903",
                       f"{node.name}.cache_key() never reads field(s) "
                       f"{missing}; equal keys would alias distinct configs",
                       f"{ctx.rel}:{cache_key.lineno}")


# ----------------------------------------------------------------------
# SP904: determinism in hot paths
# ----------------------------------------------------------------------
def _check_determinism(ctx: ModuleContext, report: DiagnosticReport) -> None:
    imports_random = any(
        isinstance(node, ast.Import)
        and any(alias.name == "random" for alias in node.names)
        or (isinstance(node, ast.ImportFrom) and node.module == "random")
        for node in ctx.walk(ast.Import, ast.ImportFrom)
    )
    if imports_random:
        report.add("SP904",
                   "hot-path module imports the stdlib 'random' module "
                   "(unseeded global state)", ctx.rel)
    for node in ctx.walk(ast.Call):
        path = _call_path(node)
        if not path:
            continue
        if path[-1] == "default_rng" and not node.args and not node.keywords:
            report.add("SP904",
                       "default_rng() without an explicit seed is "
                       "nondeterministic", f"{ctx.rel}:{node.lineno}")
        elif len(path) >= 2 and path[-2:] in _CLOCK_CALLS:
            report.add("SP904",
                       f"reads the wall clock via {'.'.join(path)}()",
                       f"{ctx.rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP905: step loops stay in the reference backend
# ----------------------------------------------------------------------
def _check_step_loops(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for node in ctx.walk(ast.For, ast.AsyncFor):
        call = node.iter
        if not (isinstance(call, ast.Call)
                and _decorator_name(call.func) == "range"):
            continue
        if any(isinstance(arg, ast.Attribute) and arg.attr == "n_steps"
               for arg in call.args):
            report.add("SP905",
                       "per-step Python loop (for ... in range(*.n_steps)) "
                       f"outside the reference backend ({REFERENCE_BACKEND}); "
                       "vectorize it or move it into the reference loop",
                       f"{ctx.rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP906: no reference-backend pins in library code
# ----------------------------------------------------------------------
def _check_backend_pins(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for node in ctx.walk(ast.Call):
        for kw in node.keywords:
            if (kw.arg == "backend"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value == "reference"):
                report.add("SP906",
                           'library code pins backend="reference"; the '
                           "vectorized backend serves every configuration "
                           "(observers, detailed DRAM) bit-identically, so "
                           "a pin is only a silent slowdown — reference "
                           "pins belong to tests and benchmarks",
                           f"{ctx.rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP911: module globals only mutated by initializer-style functions
# ----------------------------------------------------------------------
def _check_pool_globals(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for fn in ctx.functions:
        globals_here = [n for n in ast.walk(fn) if isinstance(n, ast.Global)]
        if not globals_here:
            continue
        lowered = fn.name.lower()
        if any(marker in lowered for marker in INITIALIZER_MARKERS):
            continue
        names = sorted({name for g in globals_here for name in g.names})
        report.add("SP911",
                   f"function {fn.name!r} mutates module-global state "
                   f"{names}; pool workers fork/spawn with their own copy, "
                   "so the mutation is silently lost or stale there",
                   f"{ctx.rel}:{fn.lineno}")


# ----------------------------------------------------------------------
# SP912: file writes must follow the tmp-rename protocol
# ----------------------------------------------------------------------
def _is_file_write(node: ast.Call) -> bool:
    path = _call_path(node)
    if path and path[-1] in _FILE_WRITE_ATTRS:
        return True
    if len(path) >= 2 and path[-2:] == ("json", "dump"):
        return True
    if path == ("open",) and len(node.args) >= 2:
        mode = node.args[1]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value.startswith(("w", "a"))
    for kw in node.keywords:
        if (kw.arg == "mode" and path and path[-1] == "open"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)):
            return kw.value.value.startswith(("w", "a"))
    return False


def _check_atomic_writes(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for fn in ctx.functions:
        writes = []
        renames = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if _is_file_write(node):
                writes.append(node)
            path = _call_path(node)
            if path and path[-1] in _RENAME_ATTRS:
                renames = True
        if writes and not renames:
            first = writes[0]
            report.add("SP912",
                       f"function {fn.name!r} writes a file without the "
                       "tmp-rename protocol (no .replace()/.rename() in "
                       "sight); a concurrent reader can observe a torn file",
                       f"{ctx.rel}:{first.lineno}")


# ----------------------------------------------------------------------
# SP913: supervisors must never block unboundedly
# ----------------------------------------------------------------------
def _check_blocking_waits(ctx: ModuleContext, report: DiagnosticReport) -> None:
    for node in ctx.walk(ast.Call):
        path = _call_path(node)
        if len(path) >= 2 and path[-2:] == ("time", "sleep"):
            report.add("SP913",
                       "supervisor code polls with time.sleep(); use an "
                       "event or timeout wait instead",
                       f"{ctx.rel}:{node.lineno}")
        elif (path and path[-1] == "result"
                and not node.args and not node.keywords):
            report.add("SP913",
                       "Future.result() without a timeout can hang the "
                       "sweep behind one dead worker; pass a timeout",
                       f"{ctx.rel}:{node.lineno}")


# ----------------------------------------------------------------------
# SP914: ProcessPoolExecutor confined to the localpool backend
# ----------------------------------------------------------------------
def _check_pool_confinement(
    ctx: ModuleContext, report: DiagnosticReport
) -> None:
    for node in ctx.nodes:
        if isinstance(node, ast.Name) and node.id == "ProcessPoolExecutor":
            lineno = node.lineno
        elif (isinstance(node, ast.Attribute)
                and node.attr == "ProcessPoolExecutor"):
            lineno = node.lineno
        elif (isinstance(node, (ast.Import, ast.ImportFrom))
                and any(alias.name == "ProcessPoolExecutor"
                        for alias in node.names)):
            lineno = node.lineno
        else:
            continue
        report.add("SP914",
                   "names ProcessPoolExecutor outside the localpool "
                   f"backend ({POOL_BACKEND}); execution substrates live "
                   "behind the scheduler protocol — use "
                   "repro.scheduler.create_scheduler/run_fanout",
                   f"{ctx.rel}:{lineno}")


#: Every registered self-lint pass, in execution order.
PASSES: Tuple[SelfCheckPass, ...] = (
    SelfCheckPass("SP901", "forbidden-import", _check_imports),
    SelfCheckPass("SP902", "unregistered-baseline",
                  _check_baseline_registration,
                  include=("baselines/",), skip_init=True),
    SelfCheckPass("SP903", "cache-key-field-missing", _check_cache_keys),
    SelfCheckPass("SP904", "unseeded-nondeterminism", _check_determinism,
                  include=tuple(f"{p}/" for p in HOT_PATH_PACKAGES)),
    SelfCheckPass("SP905", "step-loop-outside-reference", _check_step_loops,
                  include=("arch/",), exclude=(REFERENCE_BACKEND,)),
    SelfCheckPass("SP906", "reference-backend-pin", _check_backend_pins),
    SelfCheckPass("SP911", "pool-captured-global", _check_pool_globals,
                  include=tuple(f"{p}/" for p in SERVICE_ARC_PACKAGES)),
    SelfCheckPass("SP912", "non-atomic-cache-write", _check_atomic_writes,
                  include=("engine/", "resilience/", "service/"),
                  exclude=("resilience/faults.py",)),
    SelfCheckPass("SP913", "blocking-supervisor-wait", _check_blocking_waits,
                  include=SUPERVISOR_PATHS),
    SelfCheckPass("SP914", "pool-outside-scheduler-backend",
                  _check_pool_confinement,
                  exclude=(POOL_BACKEND,)),
)


def selfcheck(
    root: Optional[Path] = None,
    passes: Optional[Sequence[SelfCheckPass]] = None,
) -> DiagnosticReport:
    """Lint the library tree (default: the installed ``repro`` package)
    and return every SP9xx finding as one report.

    ``passes`` restricts the run to a subset of :data:`PASSES` (the
    full suite by default). Each file is parsed and walked exactly
    once regardless of how many passes opt in."""
    root = Path(root) if root is not None else _library_root()
    active = tuple(PASSES if passes is None else passes)
    report = DiagnosticReport(subject=f"selfcheck {root}")
    for path in _iter_sources(root):
        rel = path.relative_to(root).as_posix()
        applicable = [p for p in active if p.applies(rel)]
        if not applicable:
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # pragma: no cover - broken tree
            report.add("SP901", f"unparseable source: {exc}", rel)
            continue
        ctx = ModuleContext(rel, tree)
        for p in applicable:
            p.check(ctx, report)
    return report
