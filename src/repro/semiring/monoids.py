"""Commutative monoids — the reduction half of a semiring.

A monoid pairs an associative, commutative :class:`BinaryOp` with its
identity. The identity doubles as the implicit value of unstored sparse
entries under that monoid, which is what lets the OS core reduce
variable-length columns and the IS core merge scattered partial sums in
any order (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.semiring.binaryops import BinaryOp, LAND, LOR, MAX, MIN, PLUS, TIMES


@dataclass(frozen=True)
class Monoid:
    """An associative, commutative reduction with identity."""

    op: BinaryOp
    identity: float

    @property
    def name(self) -> str:
        return self.op.name

    def reduce(self, values: np.ndarray) -> float:
        """Reduce a 1-D array; the empty reduction is the identity."""
        values = np.asarray(values)
        if values.size == 0:
            return self.identity
        if self.op.ufunc is not None:
            return self.op.ufunc.reduce(values)
        acc = values[0]
        for v in values[1:]:
            acc = self.op(acc, v)
        return acc

    def segment_reduce(
        self, values: np.ndarray, segment_ids: np.ndarray, n_segments: int
    ) -> np.ndarray:
        """Reduce ``values`` into ``n_segments`` buckets given per-value
        segment ids; empty segments get the identity.

        This is the software analogue of the forwarding adder tree: the
        hardware reduces a whole column regardless of how many non-zeros
        it holds, and segments here are columns (OS) or rows (IS).
        """
        values = np.asarray(values)
        out = np.full(n_segments, self.identity, dtype=np.result_type(values, float))
        if values.size == 0:
            return out
        if self.op.ufunc is np.logical_or:
            # Over {0, 1} values, logical-or reduces as max; normalize and
            # use the fast ufunc.at path (BFS/KNN frontier expansion).
            np.maximum.at(out, segment_ids, (values != 0).astype(out.dtype))
            return out
        if self.op.ufunc is not None and self.op.ufunc is not np.logical_and:
            with np.errstate(invalid="ignore"):
                # Infinities from sparse identities (e.g. min-add's
                # empty columns) may meet NaN products; the reduction
                # semantics are still well-defined element-wise.
                self.op.ufunc.at(out, segment_ids, values)
            return out
        # Boolean (or exotic) monoids: reduce per segment after sorting.
        order = np.argsort(segment_ids, kind="stable")
        seg_sorted = segment_ids[order]
        val_sorted = values[order]
        boundaries = np.concatenate(([0], np.flatnonzero(np.diff(seg_sorted)) + 1))
        for start, stop in zip(boundaries, np.concatenate((boundaries[1:], [seg_sorted.size]))):
            out[seg_sorted[start]] = self.reduce(val_sorted[start:stop])
        return out

    def scatter(self, out: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        """Merge ``values`` into ``out`` at ``indices`` in place — the
        IS-stage scatter-accumulate. ``out`` positions never touched must
        already hold the identity for the result to be a valid partial
        reduction."""
        values = np.asarray(values)
        if values.size == 0:
            return
        if self.op.ufunc is np.logical_or:
            np.maximum.at(out, indices, (values != 0).astype(out.dtype))
            return
        if self.op.ufunc is not None and self.op.ufunc is not np.logical_and:
            with np.errstate(invalid="ignore"):
                self.op.ufunc.at(out, indices, values)
            return
        for i, v in zip(indices, values):
            out[i] = self.op(out[i], v)

    def __repr__(self) -> str:
        return f"Monoid({self.name}, identity={self.identity})"


PLUS_MONOID = Monoid(PLUS, 0.0)
TIMES_MONOID = Monoid(TIMES, 1.0)
MIN_MONOID = Monoid(MIN, float(np.inf))
MAX_MONOID = Monoid(MAX, float(-np.inf))
LOR_MONOID = Monoid(LOR, 0.0)
LAND_MONOID = Monoid(LAND, 1.0)

MONOIDS: Dict[str, Monoid] = {
    m.name: m
    for m in (PLUS_MONOID, TIMES_MONOID, MIN_MONOID, MAX_MONOID, LOR_MONOID, LAND_MONOID)
}
