"""Binary operators over numpy arrays.

Each operator is vectorized; the ``ufunc`` attribute, when present,
exposes the underlying numpy ufunc so segment reductions can use
``ufunc.at`` / ``ufunc.reduceat`` without an interpretation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np


@dataclass(frozen=True)
class BinaryOp:
    """A named, vectorized binary operator ``z = fn(x, y)``."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    ufunc: Optional[np.ufunc] = field(default=None, compare=False)
    commutative: bool = True

    def __call__(self, x, y):
        return self.fn(np.asarray(x), np.asarray(y))

    def __repr__(self) -> str:
        return f"BinaryOp({self.name})"


def _aril(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The paper's ``Aril`` operator: assigns the right-hand input where
    the left-hand input evaluates true, and 0 elsewhere (Table III,
    footnote). Used as the multiply of the k-means++ semiring."""
    return np.where(x != 0, y, np.zeros_like(y))


PLUS = BinaryOp("plus", lambda x, y: x + y, ufunc=np.add)
MINUS = BinaryOp("minus", lambda x, y: x - y, ufunc=np.subtract, commutative=False)
TIMES = BinaryOp("times", lambda x, y: x * y, ufunc=np.multiply)
DIV = BinaryOp("div", lambda x, y: x / y, ufunc=np.divide, commutative=False)
MIN = BinaryOp("min", np.minimum, ufunc=np.minimum)
MAX = BinaryOp("max", np.maximum, ufunc=np.maximum)
LOR = BinaryOp(
    "lor", lambda x, y: ((x != 0) | (y != 0)).astype(np.result_type(x, y)),
    ufunc=np.logical_or,
)
LAND = BinaryOp(
    "land", lambda x, y: ((x != 0) & (y != 0)).astype(np.result_type(x, y)),
    ufunc=np.logical_and,
)
FIRST = BinaryOp("first", lambda x, y: x + np.zeros_like(y), commutative=False)
SECOND = BinaryOp("second", lambda x, y: np.zeros_like(x) + y, commutative=False)
ARIL = BinaryOp("aril", _aril, commutative=False)
ABS_DIFF = BinaryOp("abs_diff", lambda x, y: np.abs(x - y))

#: Registry keyed by operator name; the dataflow compiler resolves
#: e-wise opcodes through this table.
BINARY_OPS: Dict[str, BinaryOp] = {
    op.name: op
    for op in (PLUS, MINUS, TIMES, DIV, MIN, MAX, LOR, LAND, FIRST, SECOND, ARIL, ABS_DIFF)
}
