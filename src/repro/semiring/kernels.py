"""Batched segment-reduce / scatter kernels for the vectorized backend.

:meth:`Monoid.segment_reduce` and :meth:`Monoid.scatter` dispatch one
``ufunc.at`` call per reduction — correct, but ``ufunc.at`` is an
order-of-magnitude slower than ``bincount``/``reduceat``. This module
provides batched equivalents that are **bit-identical** for the monoids
where the batched grouping provably folds to the same floats:

- **PLUS** — ``np.bincount(ids, weights)`` is a strict in-order left fold
  from 0.0, exactly like ``np.add.at`` into an identity-filled output.
  (``np.add.reduceat`` is *not* used: it pairwise-sums, which changes the
  low-order bits of long segments.)
- **MIN / MAX** — truly associative: any grouping yields the same value,
  and folding from the ``±inf`` identity is the identity map on the first
  element. ``ufunc.reduceat`` over contiguous sorted segments, with empty
  segments masked back to the identity (``reduceat`` would otherwise
  return a neighbour's value for a zero-length slice).
- **LOR** — normalized to ``{0, 1}`` and reduced as MAX, mirroring the
  reference's own normalization.

Everything else (LAND, exotic monoids without a vectorizable ufunc)
delegates to the reference implementation — including its quirk of
returning raw, unnormalized values for single-element boolean segments.

The PLUS *scatter* (merging into a pre-populated output) stays on
``np.add.at``: grouping per index and adding one partial sum per target
would re-associate ``((out + a) + b)`` into ``(out + (a + b))``, which is
not the same float. MIN/MAX/LOR scatters group safely.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.semiring.monoids import Monoid

#: Recognised kernel selectors for the executor / GraphBLAS entry points.
KERNELS = ("reference", "batched")


def check_kernel(kernel: str) -> None:
    """Validate a kernel selector; raises :class:`ConfigError` on a miss."""
    if kernel not in KERNELS:
        raise ConfigError(
            f"kernel must be one of {KERNELS}, got {kernel!r}"
        )


def _reduceat_sorted(
    ufunc: np.ufunc,
    values: np.ndarray,
    segment_ids: np.ndarray,
    n_segments: int,
    identity: float,
    dtype,
) -> np.ndarray:
    """``ufunc`` segment reduction over *sorted* contiguous segments."""
    out = np.full(n_segments, identity, dtype=dtype)
    counts = np.bincount(segment_ids, minlength=n_segments)
    nonempty = counts > 0
    if not nonempty.any():
        return out
    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
    with np.errstate(invalid="ignore"):
        out[nonempty] = ufunc.reduceat(values, starts[nonempty])
    return out


def segment_reduce(
    monoid: Monoid,
    values: np.ndarray,
    segment_ids: np.ndarray,
    n_segments: int,
) -> np.ndarray:
    """Batched, bit-identical equivalent of ``monoid.segment_reduce``.

    ``segment_ids`` must be sorted ascending (the CSC/CSR slice layout
    every caller already has); unsupported monoids fall back to the
    reference implementation, which accepts any order.
    """
    values = np.asarray(values)
    dtype = np.result_type(values, float)
    if values.size == 0:
        return np.full(n_segments, monoid.identity, dtype=dtype)
    ufunc = monoid.op.ufunc
    if ufunc is np.add:
        # bincount is a strict in-order left fold from 0.0 == identity.
        return np.bincount(
            segment_ids, weights=values, minlength=n_segments
        ).astype(dtype, copy=False)
    if ufunc is np.logical_or:
        return _reduceat_sorted(
            np.maximum, (values != 0).astype(dtype), segment_ids,
            n_segments, monoid.identity, dtype,
        )
    if ufunc is np.minimum or ufunc is np.maximum:
        return _reduceat_sorted(
            ufunc, values.astype(dtype, copy=False), segment_ids,
            n_segments, monoid.identity, dtype,
        )
    return monoid.segment_reduce(values, segment_ids, n_segments)


def scatter(
    monoid: Monoid,
    out: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
) -> None:
    """Batched, bit-identical equivalent of ``monoid.scatter``.

    Only grouping-safe monoids (MIN/MAX/LOR) take the sorted-reduceat
    path; PLUS and everything else delegate to the reference scatter,
    whose in-order fold into ``out`` is part of the exactness contract.
    """
    values = np.asarray(values)
    if values.size == 0:
        return
    ufunc = monoid.op.ufunc
    if ufunc is np.logical_or:
        ufunc = np.maximum
        values = (values != 0).astype(out.dtype)
    if ufunc is np.minimum or ufunc is np.maximum:
        indices = np.asarray(indices)
        order = np.argsort(indices, kind="stable")
        ids = indices[order]
        vals = values[order]
        starts = np.flatnonzero(np.concatenate(([True], ids[1:] != ids[:-1])))
        with np.errstate(invalid="ignore"):
            seg = ufunc.reduceat(vals, starts)
        targets = ids[starts]
        out[targets] = ufunc(out[targets], seg)
        return
    monoid.scatter(out, indices, values)
