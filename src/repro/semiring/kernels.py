"""Specialized segment-reduce / scatter kernels for the vectorized
backend, selected once per monoid.

:meth:`Monoid.segment_reduce` and :meth:`Monoid.scatter` dispatch one
``ufunc.at`` call per reduction — correct, but ``ufunc.at`` is an
order-of-magnitude slower than ``bincount``/``reduceat``, and the
reference methods re-derive *which* fast path applies on every call.
This module resolves that choice exactly once per monoid: a
:class:`KernelSet` binds the specialized callables at construction
(taichi-style — compile the dispatch, then run it), and
:func:`kernel_set` memoizes one set per live monoid. The hot loops of
:mod:`repro.oei.executor` and :mod:`repro.graphblas.ops` then call a
pre-selected closure with zero per-call branching.

The specializations are **bit-identical** to the reference methods for
the monoids where the batched grouping provably folds to the same
floats:

- **PLUS** — ``np.bincount(ids, weights)`` is a strict in-order left fold
  from 0.0, exactly like ``np.add.at`` into an identity-filled output.
  (``np.add.reduceat`` is *not* used: it pairwise-sums, which changes the
  low-order bits of long segments.)
- **MIN / MAX** — truly associative: any grouping yields the same value,
  and folding from the ``±inf`` identity is the identity map on the first
  element. ``ufunc.reduceat`` over contiguous sorted segments, with empty
  segments masked back to the identity (``reduceat`` would otherwise
  return a neighbour's value for a zero-length slice).
- **LOR** — normalized to ``{0, 1}`` and reduced as MAX, mirroring the
  reference's own normalization.

Everything else (LAND, exotic monoids without a vectorizable ufunc)
delegates to the reference implementation — including its quirk of
returning raw, unnormalized values for single-element boolean segments.

The PLUS *scatter* (merging into a pre-populated output) stays on
``np.add.at``: grouping per index and adding one partial sum per target
would re-associate ``((out + a) + b)`` into ``(out + (a + b))``, which is
not the same float. MIN/MAX/LOR scatters group safely. The dense update
(the SpMM of the GCN pipeline) *can* group PLUS, because its output
starts identity-filled: a per-column ``bincount`` is the same in-order
fold from 0.0 that ``np.add.at`` performs.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigError
from repro.semiring.monoids import Monoid

#: Recognised kernel selectors for the executor / GraphBLAS entry points.
KERNELS = ("reference", "batched")


def check_kernel(kernel: str) -> None:
    """Validate a kernel selector; raises :class:`ConfigError` on a miss."""
    if kernel not in KERNELS:
        raise ConfigError(
            f"kernel must be one of {KERNELS}, got {kernel!r}"
        )


def _reduceat_sorted(
    ufunc: np.ufunc,
    values: np.ndarray,
    segment_ids: np.ndarray,
    n_segments: int,
    identity: float,
    dtype,
) -> np.ndarray:
    """``ufunc`` segment reduction over *sorted* contiguous segments."""
    out = np.full(n_segments, identity, dtype=dtype)
    counts = np.bincount(segment_ids, minlength=n_segments)
    nonempty = counts > 0
    if not nonempty.any():
        return out
    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
    with np.errstate(invalid="ignore"):
        out[nonempty] = ufunc.reduceat(values, starts[nonempty])
    return out


# ----------------------------------------------------------------------
# Per-monoid kernel construction
# ----------------------------------------------------------------------
def _plus_segment(monoid: Monoid) -> Callable:
    def kernel(values, segment_ids, n_segments):
        values = np.asarray(values)
        dtype = np.result_type(values, float)
        if values.size == 0:
            return np.full(n_segments, monoid.identity, dtype=dtype)
        # bincount is a strict in-order left fold from 0.0 == identity.
        return np.bincount(
            segment_ids, weights=values, minlength=n_segments
        ).astype(dtype, copy=False)

    return kernel


def _minmax_segment(monoid: Monoid, ufunc: np.ufunc, normalize: bool) -> Callable:
    def kernel(values, segment_ids, n_segments):
        values = np.asarray(values)
        dtype = np.result_type(values, float)
        if values.size == 0:
            return np.full(n_segments, monoid.identity, dtype=dtype)
        vals = (
            (values != 0).astype(dtype)
            if normalize
            else values.astype(dtype, copy=False)
        )
        return _reduceat_sorted(
            ufunc, vals, segment_ids, n_segments, monoid.identity, dtype
        )

    return kernel


def _minmax_scatter(monoid: Monoid, ufunc: np.ufunc, normalize: bool) -> Callable:
    def kernel(out, indices, values):
        values = np.asarray(values)
        if values.size == 0:
            return
        vals = (values != 0).astype(out.dtype) if normalize else values
        indices = np.asarray(indices)
        order = np.argsort(indices, kind="stable")
        ids = indices[order]
        vals = vals[order]
        starts = np.flatnonzero(np.concatenate(([True], ids[1:] != ids[:-1])))
        with np.errstate(invalid="ignore"):
            seg = ufunc.reduceat(vals, starts)
        targets = ids[starts]
        out[targets] = ufunc(out[targets], seg)

    return kernel


def _plus_dense(monoid: Monoid) -> Callable:
    def kernel(out, rows, products):
        n = out.shape[0]
        # Per-column bincount: the same in-order fold from the 0.0 fill
        # that np.add.at performs, one vectorized pass per feature.
        for j in range(products.shape[1]):
            out[:, j] = np.bincount(
                rows, weights=products[:, j], minlength=n
            )

    return kernel


def _minmax_dense(monoid: Monoid, ufunc: np.ufunc, normalize: bool) -> Callable:
    def kernel(out, rows, products):
        if normalize:
            products = (products != 0).astype(out.dtype)
        counts = np.bincount(rows, minlength=out.shape[0])
        nonempty = counts > 0
        if not nonempty.any():
            return
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        with np.errstate(invalid="ignore"):
            out[nonempty] = ufunc.reduceat(products, starts[nonempty], axis=0)

    return kernel


def _reference_dense(monoid: Monoid) -> Callable:
    def kernel(out, rows, products):
        with np.errstate(invalid="ignore"):
            monoid.op.ufunc.at(out, rows, products)

    return kernel


class KernelSet:
    """The specialized kernels of one monoid, selected at construction.

    ``segment_reduce(values, segment_ids, n_segments)`` requires sorted
    ascending ``segment_ids`` (the CSC/CSR slice layout every caller
    already has). ``scatter(out, indices, values)`` merges in place and
    accepts any order. ``dense_update(out, rows, products)`` requires
    sorted ``rows`` and an identity-filled 2-D ``out`` (the
    :func:`~repro.graphblas.ops.mxm_dense` contract). All three are
    bit-identical to the reference :class:`Monoid` methods.
    """

    __slots__ = ("monoid", "segment_reduce", "scatter", "dense_update")

    def __init__(self, monoid: Monoid) -> None:
        self.monoid = monoid
        ufunc = monoid.op.ufunc
        if ufunc is np.add:
            self.segment_reduce = _plus_segment(monoid)
            # In-order fold into a *pre-populated* out is part of the
            # exactness contract — grouping would re-associate it.
            self.scatter = monoid.scatter
            self.dense_update = _plus_dense(monoid)
        elif ufunc is np.logical_or:
            self.segment_reduce = _minmax_segment(monoid, np.maximum, True)
            self.scatter = _minmax_scatter(monoid, np.maximum, True)
            self.dense_update = _minmax_dense(monoid, np.maximum, True)
        elif ufunc is np.minimum or ufunc is np.maximum:
            self.segment_reduce = _minmax_segment(monoid, ufunc, False)
            self.scatter = _minmax_scatter(monoid, ufunc, False)
            self.dense_update = _minmax_dense(monoid, ufunc, False)
        else:
            self.segment_reduce = monoid.segment_reduce
            self.scatter = monoid.scatter
            self.dense_update = _reference_dense(monoid)


#: One KernelSet per monoid *value* — frozen dataclasses hash by
#: (op, identity), so equal monoids share a set. The population is the
#: six singletons of :data:`~repro.semiring.monoids.MONOIDS` plus any
#: value-distinct test monoids: bounded, so a plain dict suffices.
_KERNEL_SETS: Dict[Monoid, KernelSet] = {}


def kernel_set(monoid: Monoid) -> KernelSet:
    """The memoized :class:`KernelSet` of one monoid — selection happens
    on the first request, every later call is a dictionary hit."""
    ks = _KERNEL_SETS.get(monoid)
    if ks is None:
        ks = KernelSet(monoid)
        _KERNEL_SETS[monoid] = ks
    return ks


def segment_reduce(
    monoid: Monoid,
    values: np.ndarray,
    segment_ids: np.ndarray,
    n_segments: int,
) -> np.ndarray:
    """Batched, bit-identical equivalent of ``monoid.segment_reduce``.

    ``segment_ids`` must be sorted ascending (the CSC/CSR slice layout
    every caller already has); unsupported monoids fall back to the
    reference implementation, which accepts any order.
    """
    return kernel_set(monoid).segment_reduce(values, segment_ids, n_segments)


def scatter(
    monoid: Monoid,
    out: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
) -> None:
    """Batched, bit-identical equivalent of ``monoid.scatter``.

    Only grouping-safe monoids (MIN/MAX/LOR) take the sorted-reduceat
    path; PLUS and everything else delegate to the reference scatter,
    whose in-order fold into ``out`` is part of the exactness contract.
    """
    kernel_set(monoid).scatter(out, indices, values)


def dense_update(
    monoid: Monoid,
    out: np.ndarray,
    rows: np.ndarray,
    products: np.ndarray,
) -> None:
    """Batched, bit-identical equivalent of ``monoid.op.ufunc.at(out,
    rows, products)`` for an identity-filled 2-D ``out`` and sorted
    ``rows`` — the reduction of :func:`~repro.graphblas.ops.mxm_dense`.
    """
    kernel_set(monoid).dense_update(out, rows, products)
