"""Semirings: a multiply :class:`BinaryOp` plus a reduce :class:`Monoid`.

Naming follows the paper's Table III, where a semiring is written
``<multiply/shape>-<reduce>`` or by its classical name:

- ``mul_add``  — (x, +): PageRank, k-core, label propagation, GCN,
  GMRES, CG, BiCGStab,
- ``and_or``   — (and, or): BFS frontier expansion, KNN,
- ``min_add``  — tropical (+, min): single-source shortest path,
- ``aril_add`` — (aril, +): k-means++ initialization, where ``aril``
  assigns the right-hand input when the left-hand input is true.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ConfigError
from repro.semiring.binaryops import ARIL, BinaryOp, LAND, MIN, PLUS, TIMES
from repro.semiring.monoids import (
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    Monoid,
    PLUS_MONOID,
)


@dataclass(frozen=True)
class Semiring:
    """``add.reduce(mul(x_i, a_ij))`` — the contraction of every ``vxm``."""

    name: str
    add: Monoid
    mul: BinaryOp

    @property
    def zero(self) -> float:
        """The additive identity, i.e. the implicit sparse value."""
        return self.add.identity

    def vxm_dense(self, x: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """Reference ``x^T A`` against a dense matrix — the executable
        definition that every optimized kernel is tested against."""
        x = np.asarray(x, dtype=np.float64)
        dense = np.asarray(dense, dtype=np.float64)
        if x.shape != (dense.shape[0],):
            raise ValueError(
                f"vector length {x.shape} does not match nrows {dense.shape[0]}"
            )
        out = np.empty(dense.shape[1], dtype=np.float64)
        for j in range(dense.shape[1]):
            out[j] = self.add.reduce(self.mul(x, dense[:, j]))
        return out

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


MUL_ADD = Semiring("mul_add", PLUS_MONOID, TIMES)
AND_OR = Semiring("and_or", LOR_MONOID, LAND)
MIN_ADD = Semiring("min_add", MIN_MONOID, PLUS)
ARIL_ADD = Semiring("aril_add", PLUS_MONOID, ARIL)
MAX_TIMES = Semiring("max_times", MAX_MONOID, TIMES)
MIN_TIMES = Semiring("min_times", MIN_MONOID, TIMES)
MAX_MIN = Semiring("max_min", MAX_MONOID, MIN)

SEMIRINGS: Dict[str, Semiring] = {
    s.name: s
    for s in (MUL_ADD, AND_OR, MIN_ADD, ARIL_ADD, MAX_TIMES, MIN_TIMES, MAX_MIN)
}


def semiring_by_name(name: str) -> Semiring:
    """Look up a registered semiring; raises :class:`ConfigError` with
    the available names on a miss."""
    try:
        return SEMIRINGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown semiring {name!r}; available: {sorted(SEMIRINGS)}"
        ) from None
