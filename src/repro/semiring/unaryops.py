"""Unary operators, used by ``apply`` and in fused e-wise instruction
streams (e.g. the ReLU in the GCN pipeline of Fig 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class UnaryOp:
    """A named, vectorized unary operator ``z = fn(x)``."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, x):
        return self.fn(np.asarray(x))

    def __repr__(self) -> str:
        return f"UnaryOp({self.name})"


IDENTITY = UnaryOp("identity", lambda x: x + 0)
ABS = UnaryOp("abs", np.abs)
AINV = UnaryOp("ainv", lambda x: -x)
MINV = UnaryOp("minv", lambda x: 1.0 / x)
ONE = UnaryOp("one", np.ones_like)
RELU = UnaryOp("relu", lambda x: np.maximum(x, 0))
SQRT = UnaryOp("sqrt", np.sqrt)
ISNONZERO = UnaryOp("isnonzero", lambda x: (x != 0).astype(np.float64))

UNARY_OPS: Dict[str, UnaryOp] = {
    op.name: op
    for op in (IDENTITY, ABS, AINV, MINV, ONE, RELU, SQRT, ISNONZERO)
}
