"""Configurable semiring algebra.

STA applications written against GraphBLAS-style frontends replace the
(+, x) pair of classic linear algebra with application-specific
operators (Table III of the paper): ``Mul-Add`` for PageRank, ``And-Or``
for BFS/KNN, ``Min-Add`` for SSSP, ``Aril-Add`` for k-means++
initialization. Sparsepipe's OS and IS cores are configured with these
opcodes before execution (Section IV-C); this package is the software
realization those cores and the functional executor share.
"""

from repro.semiring.binaryops import (
    BinaryOp,
    PLUS,
    MINUS,
    TIMES,
    DIV,
    MIN,
    MAX,
    LOR,
    LAND,
    FIRST,
    SECOND,
    ARIL,
    ABS_DIFF,
    BINARY_OPS,
)
from repro.semiring.monoids import (
    Monoid,
    PLUS_MONOID,
    TIMES_MONOID,
    MIN_MONOID,
    MAX_MONOID,
    LOR_MONOID,
    LAND_MONOID,
    MONOIDS,
)
from repro.semiring.unaryops import (
    UnaryOp,
    IDENTITY,
    ABS,
    AINV,
    MINV,
    ONE,
    RELU,
    SQRT,
    ISNONZERO,
    UNARY_OPS,
)
from repro.semiring.semirings import (
    Semiring,
    MUL_ADD,
    AND_OR,
    MIN_ADD,
    ARIL_ADD,
    MAX_TIMES,
    MIN_TIMES,
    MAX_MIN,
    SEMIRINGS,
    semiring_by_name,
)
from repro.semiring import kernels

__all__ = [
    "kernels",
    "BinaryOp",
    "Monoid",
    "UnaryOp",
    "Semiring",
    "PLUS",
    "MINUS",
    "TIMES",
    "DIV",
    "MIN",
    "MAX",
    "LOR",
    "LAND",
    "FIRST",
    "SECOND",
    "ARIL",
    "ABS_DIFF",
    "PLUS_MONOID",
    "TIMES_MONOID",
    "MIN_MONOID",
    "MAX_MONOID",
    "LOR_MONOID",
    "LAND_MONOID",
    "IDENTITY",
    "ABS",
    "AINV",
    "MINV",
    "ONE",
    "RELU",
    "SQRT",
    "ISNONZERO",
    "MUL_ADD",
    "AND_OR",
    "MIN_ADD",
    "ARIL_ADD",
    "MAX_TIMES",
    "MIN_TIMES",
    "MAX_MIN",
    "BINARY_OPS",
    "MONOIDS",
    "UNARY_OPS",
    "SEMIRINGS",
    "semiring_by_name",
]
