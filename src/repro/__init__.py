"""Sparsepipe reproduction — sparse inter-operator dataflow
architecture with cross-iteration reuse (Zhang, Tsai, Tseng; MICRO
2024), rebuilt as a Python library.

Top-level convenience re-exports cover the common end-to-end path:
build a matrix, run a workload, compile its loop body, and simulate it
on Sparsepipe vs the baselines. Each subpackage's docstring maps it to
the paper sections it implements.
"""

from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.baselines.ideal_accelerator import IdealAccelerator
from repro.baselines.oracle import OracleAccelerator
from repro.dataflow.compiler import analyze, compile_program
from repro.dataflow.graph import DataflowGraph
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.matrices.suite import load_suite_matrix, suite_names
from repro.oei.executor import run_oei_pairs, run_reference
from repro.oei.reuse import reuse_footprint
from repro.preprocess.pipeline import preprocess
from repro.workloads.registry import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "Matrix",
    "Vector",
    "DataflowGraph",
    "analyze",
    "compile_program",
    "run_oei_pairs",
    "run_reference",
    "reuse_footprint",
    "preprocess",
    "SparsepipeConfig",
    "SparsepipeSimulator",
    "IdealAccelerator",
    "OracleAccelerator",
    "CPUModel",
    "GPUModel",
    "get_workload",
    "workload_names",
    "load_suite_matrix",
    "suite_names",
    "__version__",
]
