"""Graph analytics on a road-network-like graph.

Runs BFS, SSSP, and k-core on the same graph, then compares Sparsepipe
against CPU/GPU/ideal-accelerator models for each — the paper's
Fig 14/16/17 story on a single input.

Run with:  python examples/graph_analytics.py
"""

import numpy as np

from repro.arch import SparsepipeConfig, SparsepipeSimulator
from repro.baselines import CPUModel, GPUModel, IdealAccelerator
from repro.experiments.report import format_table
from repro.graphblas import Matrix
from repro.matrices import road_network
from repro.preprocess import preprocess
from repro.workloads import get_workload


def main() -> None:
    coo = road_network(8000, 24_000, shortcut_fraction=0.05, seed=3)
    graph = Matrix(coo)
    prep = preprocess(coo, reorder="vanilla", block_size=256)
    print(f"road network: {graph.nrows} junctions, {graph.nnz} segments\n")

    # Functional answers first.
    bfs = get_workload("bfs").run_functional(graph)
    reached = int(np.count_nonzero(bfs.output >= 0))
    print(f"bfs: reached {reached} vertices in {bfs.n_iterations} levels")
    sssp = get_workload("sssp").run_functional(graph)
    finite = np.isfinite(sssp.output)
    print(f"sssp: {finite.sum()} reachable, "
          f"max distance {sssp.output[finite].max():.2f}")
    kcore = get_workload("kcore").run_functional(graph, k=2)
    print(f"kcore: {int(kcore.output.sum())} vertices in the 2-core "
          f"after {kcore.n_iterations} peeling rounds\n")

    # Architecture comparison.
    config = SparsepipeConfig()
    rows = []
    for name in ("bfs", "sssp", "kcore", "pr"):
        profile = get_workload(name).profile(graph)
        sp = SparsepipeSimulator(config).run(profile, prep)
        ideal = IdealAccelerator(config).run(profile, prep)
        cpu = CPUModel().run(profile, prep)
        gpu = GPUModel().run(profile, prep)
        rows.append(
            (name, f"{sp.seconds * 1e6:.1f}",
             sp.speedup_over(ideal), sp.speedup_over(gpu), sp.speedup_over(cpu))
        )
    print(format_table(
        ["workload", "sparsepipe (us)", "vs ideal", "vs gpu", "vs cpu"],
        rows,
        title="Simulated end-to-end latency and speedups",
    ))


if __name__ == "__main__":
    main()
