"""Scientific computing: Krylov solvers on a mesh Laplacian.

CG, BiCGStab, and GMRES solve the same SPD system built from a FEM-like
banded mesh. CG and BiCGStab cannot use cross-iteration reuse (their
step sizes reduce the fresh SpMV output — the dataflow compiler proves
it), while pipelined GMRES can; the simulation shows exactly that gap.

Run with:  python examples/scientific_solvers.py
"""

import numpy as np

from repro.arch import SparsepipeConfig, SparsepipeSimulator
from repro.baselines import IdealAccelerator
from repro.experiments.report import format_table
from repro.graphblas import Matrix
from repro.matrices import banded_mesh
from repro.preprocess import preprocess
from repro.workloads import get_workload
from repro.workloads.solvers import spd_system


def main() -> None:
    coo = banded_mesh(5000, 40, 60_000, seed=5)
    graph = Matrix(coo)
    system = spd_system(graph)
    print(f"mesh: {graph.nrows} nodes; SPD system with {system.nnz} non-zeros\n")

    prep = preprocess(coo, reorder="vanilla", block_size=256)
    config = SparsepipeConfig()
    rows = []
    for name in ("cg", "bgs", "gmres"):
        workload = get_workload(name)
        result = workload.run_functional(graph)
        program = workload.program()
        profile = workload.profile(graph)
        sp = SparsepipeSimulator(config).run(profile, prep)
        ideal = IdealAccelerator(config).run(profile, prep)
        rows.append(
            (
                name,
                result.n_iterations,
                f"{result.extras['residual']:.2e}",
                "yes" if program.has_oei else "no",
                sp.speedup_over(ideal),
            )
        )
    print(format_table(
        ["solver", "iterations", "residual", "cross-iteration reuse", "vs ideal"],
        rows,
        title="Krylov solvers: convergence and Sparsepipe benefit",
    ))
    print(
        "\ncg/bgs gain only producer-consumer fusion (paper: 0.75x-1.20x); "
        "pipelined GMRES fuses consecutive SpMVs under OEI."
    )


if __name__ == "__main__":
    main()
