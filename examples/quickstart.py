"""Quickstart: run PageRank through the whole Sparsepipe stack.

This walks the complete path a paper experiment takes:

1. generate a sparse graph,
2. run the workload functionally on GraphBLAS-mini (correct results),
3. compile its loop body to an OEI program and *prove* the OEI schedule
   computes the same iterations as the sequential schedule,
4. preprocess the matrix and simulate Sparsepipe against the idealized
   accelerator baseline.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.arch import SparsepipeConfig, SparsepipeSimulator
from repro.baselines import IdealAccelerator
from repro.formats import CSCMatrix, CSRMatrix
from repro.graphblas import Matrix
from repro.matrices import rmat
from repro.oei import run_oei_pairs, run_reference
from repro.preprocess import preprocess
from repro.workloads import get_workload


def main() -> None:
    # 1. A power-law graph: 2000 vertices, ~16k edges.
    coo = rmat(2000, 16_000, seed=7)
    graph = Matrix(coo)
    print(f"graph: {graph.nrows} vertices, {graph.nnz} edges")

    # 2. Functional PageRank on GraphBLAS-mini.
    pagerank = get_workload("pr")
    result = pagerank.run_functional(graph)
    top = np.argsort(result.output)[-3:][::-1]
    print(f"converged in {result.n_iterations} iterations; "
          f"top vertices: {list(top)}")

    # 3. Compile the loop body and validate the OEI schedule.
    program = pagerank.program()
    print(f"compiled program: semiring={program.semiring_name}, "
          f"{program.n_path_ops} fused e-wise ops, OEI={program.has_oei}")
    from repro.workloads.pagerank import normalize_columns_out

    link = normalize_columns_out(graph)
    csc = CSCMatrix.from_coo(link.coo)
    csr = CSRMatrix.from_coo(link.coo)
    x0 = np.full(graph.nrows, 1.0 / graph.nrows)
    scalars = lambda k, x: {"teleport": 0.15 / graph.nrows}
    ref = run_reference(csc, program, x0, 6, scalar_update=scalars)
    oei = run_oei_pairs(csc, csr, program, x0, 6, scalar_update=scalars)
    assert np.allclose(ref.final_x, oei.final_x)
    print("OEI pair schedule == sequential schedule over 6 iterations  [verified]")

    # 4. Cycle simulation vs the idealized accelerator.
    prep = preprocess(coo, reorder="vanilla", block_size=256)
    profile = pagerank.profile(graph)
    config = SparsepipeConfig()
    sparsepipe = SparsepipeSimulator(config).run(profile, prep)
    ideal = IdealAccelerator(config).run(profile, prep)
    print(f"Sparsepipe: {sparsepipe.cycles:,.0f} cycles "
          f"({sparsepipe.bandwidth_utilization:.0%} bandwidth utilization)")
    print(f"Ideal accelerator: {ideal.cycles:,.0f} cycles")
    print(f"speedup from inter-operator reuse: "
          f"{sparsepipe.speedup_over(ideal):.2f}x")


if __name__ == "__main__":
    main()
