"""Analyze the cross-iteration reuse window of your own matrix.

Loads a MatrixMarket file (or generates a demo matrix), measures the
Table-I-style OEI residency profile before and after row reordering,
and recommends a buffer size.

Run with:  python examples/reuse_analysis.py [matrix.mtx]
"""

import sys

from repro.experiments.report import format_bar_series, format_table
from repro.formats import read_matrix_market
from repro.matrices import rmat
from repro.oei import reuse_footprint
from repro.preprocess import graph_order, vanilla_reorder
from repro.util import human_bytes


def main() -> None:
    if len(sys.argv) > 1:
        coo = read_matrix_market(sys.argv[1])
        print(f"loaded {sys.argv[1]}: {coo.shape}, {coo.nnz} non-zeros")
    else:
        coo = rmat(4000, 40_000, seed=13)
        print(f"demo R-MAT matrix: {coo.shape}, {coo.nnz} non-zeros")

    natural = reuse_footprint(coo)
    rows = [("natural", natural.max_pct, natural.avg_pct,
             human_bytes(natural.max_bytes()))]
    for name, reorder in (("vanilla", vanilla_reorder), ("graphorder", graph_order)):
        perm = reorder(coo)
        stats = reuse_footprint(coo.permute(perm, perm))
        rows.append((name, stats.max_pct, stats.avg_pct,
                     human_bytes(stats.max_bytes())))
    print(format_table(
        ["ordering", "max (%)", "avg (%)", "peak window"],
        rows,
        title="\nOEI reuse-window footprint (Table I analysis)",
    ))

    # Occupancy over time, down-sampled to 20 buckets.
    series = natural.series
    step = max(1, series.size // 20)
    buckets = [int(series[i : i + step].max()) for i in range(0, series.size, step)]
    labels = [f"{min(99, int(100 * i / len(buckets))):2d}%" for i in range(len(buckets))]
    print()
    print(format_bar_series(labels, [float(b) for b in buckets],
                            title="Window occupancy across OEI steps (elements)"))
    print(
        f"\nbuffer recommendation: {human_bytes(natural.max_bytes() * 1.34)} "
        "(peak window + 1/3 staging headroom)"
    )


if __name__ == "__main__":
    main()
