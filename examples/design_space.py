"""Design-space exploration of the Sparsepipe architecture.

Sweeps buffer capacity, sub-tensor width, and memory technology for
PageRank on a skewed matrix — the knobs a silicon team would actually
turn, with the cost model of Fig 20b attached.

Run with:  python examples/design_space.py
"""

from repro.arch import (
    AreaModel,
    CPU_DDR4,
    GPU_GDDR6X,
    SparsepipeConfig,
    SparsepipeSimulator,
)
from repro.experiments.report import format_table
from repro.graphblas import Matrix
from repro.matrices import rmat
from repro.preprocess import preprocess
from repro.workloads import get_workload


def main() -> None:
    coo = rmat(6000, 90_000, a=0.62, seed=21)
    graph = Matrix(coo)
    prep = preprocess(coo, reorder="vanilla", block_size=256)
    profile = get_workload("pr").profile(graph)
    area = AreaModel()
    print(f"workload: PageRank, {graph.nnz} non-zeros, "
          f"{profile.n_iterations} iterations\n")

    # Buffer capacity sweep (with the matching die cost).
    rows = []
    for kib in (16, 64, 256, 1024, 4096):
        cfg = SparsepipeConfig(buffer_bytes=kib * 1024)
        r = SparsepipeSimulator(cfg).run(profile, prep)
        # Scale the area model's 64 MB point linearly for the sweep.
        mm2 = area.sparsepipe_mm2(buffer_mb=kib / 1024.0 * 64)
        rows.append((f"{kib} KiB", round(r.cycles),
                     round(r.oom_evicted_bytes / 1024), f"{mm2:.1f}"))
    print(format_table(
        ["buffer", "cycles", "evicted (KiB)", "die (mm^2, scaled)"],
        rows, title="Buffer capacity sweep",
    ))

    # Sub-tensor width sweep.
    rows = []
    for t in (16, 64, 128, 256, 1024):
        cfg = SparsepipeConfig(subtensor_cols=t)
        r = SparsepipeSimulator(cfg).run(profile, prep)
        rows.append((t, round(r.cycles), f"{r.bandwidth_utilization:.0%}"))
    print()
    print(format_table(
        ["subtensor cols", "cycles", "bandwidth util"],
        rows, title="Sub-tensor width sweep",
    ))

    # Memory technology (Table II).
    rows = []
    for mem in (CPU_DDR4, GPU_GDDR6X):
        cfg = SparsepipeConfig(memory=mem)
        r = SparsepipeSimulator(cfg).run(profile, prep)
        rows.append((mem.name, mem.bandwidth_gbps, round(r.cycles)))
    print()
    print(format_table(
        ["memory", "GB/s", "cycles"],
        rows, title="Memory technology (iso-CPU vs iso-GPU, Table II)",
    ))

    # Runtime sub-tensor exploration (Section IV-F).
    from repro.arch.autotune import autotune_subtensor_cols

    best, tuned = autotune_subtensor_cols(profile, prep)
    print(f"\nauto-tuned sub-tensor width: {best} columns "
          f"({tuned.cycles:,.0f} cycles)")

    # The OEI pipeline schedule itself (Fig 13 as ASCII).
    from repro.arch.pipeline_viz import render_pipeline

    print("\nOEI pipeline schedule (first steps of a pair):")
    print(render_pipeline(graph.ncols, best, max_steps=10))


if __name__ == "__main__":
    main()
