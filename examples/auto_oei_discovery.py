"""Automatic cross-iteration-reuse discovery from plain code.

The paper's future-work question (Section VIII): can a compiler find
applications with cross-iteration reuse automatically? Here we write a
custom STA loop body with the *tracing* frontend — ordinary
GraphBLAS-mini calls that execute for real — and let the dataflow
compiler decide whether the OEI dataflow applies, with no hand-built
graph. The same analysis correctly rejects a CG-style body whose step
size reduces the fresh SpMV output.

Run with:  python examples/auto_oei_discovery.py
"""

import numpy as np

from repro.dataflow import compile_program
from repro.dataflow.trace import Tracer
from repro.graphblas import Matrix, Vector, connected_components, triangle_count
from repro.matrices import watts_strogatz
from repro.semiring import MUL_ADD, PLUS, TIMES


def traced_heat_diffusion(graph: Matrix):
    """A custom workload nobody hand-registered: damped heat diffusion
    ``h' = 0.7 * (h x A) + 0.3 * h0_scalar``."""
    n = graph.nrows
    tracer = Tracer("heat")
    h = tracer.source("h", Vector.dense(n, 1.0))
    a = tracer.constant_matrix("A", graph)
    spread = tracer.vxm(h, a, MUL_ADD)
    damped = tracer.apply_bind(spread, TIMES, 0.7)
    renewed = tracer.apply_scalar(damped, PLUS, "ambient", 0.3)
    tracer.carry(renewed, h)
    return tracer


def traced_cg_like(graph: Matrix):
    """A body whose scalar comes from a same-iteration reduction —
    structurally ineligible for cross-iteration reuse."""
    n = graph.nrows
    tracer = Tracer("cg_like")
    p = tracer.source("p", Vector.dense(n, 1.0))
    a = tracer.constant_matrix("A", graph)
    q = tracer.vxm(p, a, MUL_ADD)
    alpha = tracer.dot(p, q, MUL_ADD, scalar_name="alpha")
    step = tracer.apply_scalar(q, TIMES, "alpha", alpha.value)
    tracer.carry(step, p)
    return tracer


def main() -> None:
    graph = Matrix(watts_strogatz(2000, k=8, rewire=0.2, seed=11))
    print(f"small-world graph: {graph.nrows} vertices, {graph.nnz} edges")
    labels, n_components = connected_components(graph)
    print(f"graph facts: {n_components} weakly-connected components, "
          f"{triangle_count(graph)} triangles\n")

    for build in (traced_heat_diffusion, traced_cg_like):
        tracer = build(graph)
        program = compile_program(tracer.graph)
        verdict = (
            f"OEI legal (distance {program.iteration_distance}, "
            f"{program.n_path_ops} fused e-wise ops)"
            if program.has_oei
            else "no OEI path (producer-consumer fusion only)"
        )
        print(f"{tracer.graph.name:8} -> {verdict}")

    # The discovered program is executable: prove OEI == sequential.
    from repro.formats import CSCMatrix, CSRMatrix
    from repro.oei import assert_oei_matches_reference

    tracer = traced_heat_diffusion(graph)
    program = compile_program(tracer.graph)
    csc = CSCMatrix.from_coo(graph.coo)
    csr = CSRMatrix.from_coo(graph.coo)
    assert_oei_matches_reference(
        csc, csr, program, np.ones(graph.nrows), 6,
        scalar_update=lambda k, x: {"ambient": 0.3},
    )
    print("\ntraced heat-diffusion program validated: OEI pair schedule "
          "== sequential execution over 6 iterations")


if __name__ == "__main__":
    main()
