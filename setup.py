"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs fail; this shim keeps the legacy
``pip install -e . --no-build-isolation`` / ``python setup.py develop``
paths working. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
