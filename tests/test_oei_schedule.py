"""Tests for the OEI step schedule."""

import pytest

from repro.oei import OEISchedule
from repro.oei.schedule import EWISE_LAG, IS_LAG


class TestSchedule:
    def test_subtensor_count(self):
        assert OEISchedule(100, 16).n_subtensors == 7
        assert OEISchedule(96, 16).n_subtensors == 6
        assert OEISchedule(0, 16).n_subtensors == 0

    def test_last_subtensor_truncated(self):
        sched = OEISchedule(100, 16)
        last = sched.subtensor(6)
        assert last.start == 96 and last.stop == 100 and last.width == 4

    def test_subtensors_cover_all_columns(self):
        sched = OEISchedule(57, 9)
        covered = []
        for st in sched.subtensors():
            covered.extend(range(st.start, st.stop))
        assert covered == list(range(57))

    def test_n_steps_includes_drain(self):
        sched = OEISchedule(64, 16)
        assert sched.n_steps == 4 + IS_LAG

    def test_stage_lags(self):
        sched = OEISchedule(64, 16)
        assert sched.os_at(0).index == 0
        assert sched.ewise_at(0) is None
        assert sched.ewise_at(EWISE_LAG).index == 0
        assert sched.is_at(IS_LAG).index == 0
        assert sched.os_at(sched.n_steps - 1) is None
        assert sched.is_at(sched.n_steps - 1).index == sched.n_subtensors - 1

    def test_each_stage_touches_each_subtensor_once(self):
        sched = OEISchedule(40, 8)
        for stage in (sched.os_at, sched.ewise_at, sched.is_at):
            seen = [
                stage(s).index
                for s in range(sched.n_steps)
                if stage(s) is not None
            ]
            assert seen == list(range(sched.n_subtensors))

    def test_out_of_range_subtensor(self):
        with pytest.raises(IndexError):
            OEISchedule(10, 5).subtensor(2)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            OEISchedule(10, 0)
