"""Smoke tests for the shared hypothesis strategy module itself."""

import pytest
from hypothesis import given, settings

from repro.dataflow.program import OEIProgram
from repro.semiring import MONOIDS, SEMIRINGS
from tests.strategies import (
    SAFE_BINARY,
    SAFE_SEMIRINGS,
    booleans,
    dims,
    finite,
    finite_lists,
    monoid_names,
    random_programs,
    seeds,
    subtensor_widths,
)


@settings(max_examples=30, deadline=None)
@given(finite)
def test_finite_stays_in_bounds(x):
    assert -1e6 <= x <= 1e6
    assert x == x  # never NaN


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_seeds_fit_default_rng(seed):
    assert 0 <= seed < 2**31


@settings(max_examples=30, deadline=None)
@given(dims(3, 17))
def test_dims_respect_bounds(n):
    assert 3 <= n <= 17


def test_dims_reject_inverted_bounds():
    with pytest.raises(ValueError):
        dims(5, 2)


@settings(max_examples=30, deadline=None)
@given(finite_lists(max_size=7))
def test_finite_lists_bounded(values):
    assert len(values) <= 7
    assert all(-1e6 <= v <= 1e6 for v in values)


@settings(max_examples=30, deadline=None)
@given(monoid_names())
def test_monoid_names_default_covers_registry(name):
    assert name in MONOIDS


@settings(max_examples=20, deadline=None)
@given(monoid_names("plus", "min"))
def test_monoid_names_subset(name):
    assert name in ("plus", "min")


def test_monoid_names_reject_unknown():
    with pytest.raises(ValueError):
        monoid_names("plus", "frobnicate")


@settings(max_examples=20, deadline=None)
@given(subtensor_widths(1, 3, 7, 50))
def test_subtensor_widths_sample_the_given_set(w):
    assert w in (1, 3, 7, 50)


def test_subtensor_widths_reject_empty():
    with pytest.raises(ValueError):
        subtensor_widths()


def test_safe_sets_name_real_registrations():
    assert set(SAFE_SEMIRINGS) <= set(SEMIRINGS)
    from repro.semiring import BINARY_OPS

    assert set(SAFE_BINARY) <= set(BINARY_OPS)


@settings(max_examples=40, deadline=None)
@given(random_programs(), booleans)
def test_random_programs_are_well_formed(program, _flag):
    assert isinstance(program, OEIProgram)
    assert 1 <= len(program.instructions) <= 4
    assert program.result_reg == program.n_registers - 1
    assert program.semiring_name in SAFE_SEMIRINGS
    assert program.has_oei
    for instr in program.instructions:
        assert instr.op_name in SAFE_BINARY
    # Aux/scalar declarations match actual operand usage flags.
    assert set(program.aux_vectors) <= {"a0"}
    assert set(program.scalar_names) <= {"s0"}
