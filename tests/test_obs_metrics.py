"""Unit tests for the metrics registry primitives and run manifests."""

import pytest

from repro.obs import MetricsRegistry, RunManifest, build_manifest
from repro.obs.metrics import Histogram


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        assert reg.value("a") == 3.5

    def test_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5.0)
        reg.gauge("g").set(2.0)
        assert reg.value("g") == 2.0

    def test_set_max_keeps_peak(self):
        reg = MetricsRegistry()
        reg.gauge("g").set_max(5.0)
        reg.gauge("g").set_max(2.0)
        assert reg.value("g") == 5.0


class TestHistogram:
    def test_buckets_are_cumulative_free_bins(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, +Inf overflow
        assert h.total == 55.5 and h.count == 3

    def test_boundary_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(1.0)
        assert h.counts == [1, 0]

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_registry_value_reports_sum(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(3.0)
        reg.histogram("h").observe(4.0)
        assert reg.value("h") == 7.0


class TestRegistry:
    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_missing_value_gets_default(self):
        assert MetricsRegistry().value("nope", default=-1.0) == -1.0

    def test_digest_tracks_content_not_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(1)
        a.counter("y").inc(2)
        b.counter("y").inc(2)
        b.counter("x").inc(1)
        assert a.digest() == b.digest()
        b.counter("x").inc(1)
        assert a.digest() != b.digest()

    def test_format_text_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("sim.cycles").inc(10)
        reg.histogram("step.cycles").observe(2.0)
        text = reg.format_text()
        assert "sim.cycles" in text and "step.cycles" in text
        assert "count=1" in text


class TestManifest:
    def _manifest(self, **kwargs):
        reg = MetricsRegistry()
        reg.counter("sim.cycles").inc(100)
        defaults = dict(
            arch="sparsepipe", workload="bfs", matrix="gy",
            config="cfgkey", reorder="vanilla", block_size=256,
            registry=reg,
        )
        defaults.update(kwargs)
        return build_manifest(**defaults)

    def test_round_trips_through_dict(self):
        m = self._manifest(seed=3, wall_time_s=1.25)
        back = RunManifest.from_dict(m.to_dict())
        assert back == m
        assert back.digest() == m.digest()

    def test_digest_excludes_wall_time_and_cache_flag(self):
        fast = self._manifest(wall_time_s=0.01)
        slow = self._manifest(wall_time_s=99.0)
        assert fast.digest() == slow.digest()
        assert fast.served_from_cache().digest() == fast.digest()
        assert fast.served_from_cache().from_cache is True

    def test_digest_tracks_identity_fields(self):
        assert self._manifest().digest() != self._manifest(seed=9).digest()
        assert (
            self._manifest().digest()
            != self._manifest(workload="pr").digest()
        )

    def test_needs_result_or_registry(self):
        with pytest.raises(ValueError):
            build_manifest(
                "sparsepipe", "bfs", "gy", "cfg", "vanilla", 256
            )
