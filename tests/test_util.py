"""Tests for the shared utility helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.util import (
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_length,
    geomean,
    human_bytes,
    safe_div,
)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_index(self):
        check_index("i", 0, 3)
        check_index("i", 2, 3)
        with pytest.raises(IndexError):
            check_index("i", 3, 3)
        with pytest.raises(IndexError):
            check_index("i", -1, 3)

    def test_check_same_length(self):
        check_same_length("a", [1], "b", [2])
        with pytest.raises(ShapeError):
            check_same_length("a", [1], "b", [2, 3])


class TestNumeric:
    def test_geomean_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_geomean_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_safe_div(self):
        assert safe_div(6, 3) == 2.0
        assert safe_div(6, 0) == 0.0
        assert safe_div(6, 0, default=-1.0) == -1.0

    def test_human_bytes(self):
        assert human_bytes(512) == "512.00 B"
        assert human_bytes(1536) == "1.50 KB"
        assert human_bytes(3 * 1024**2) == "3.00 MB"
        assert human_bytes(2 * 1024**4) == "2.00 TB"

    def test_human_bytes_negative(self):
        with pytest.raises(ValueError):
            human_bytes(-1)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
def test_property_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.01, 100.0), min_size=1, max_size=10),
    st.floats(0.01, 100.0),
)
def test_property_geomean_scale_invariance(values, scale):
    scaled = geomean([v * scale for v in values])
    assert scaled == pytest.approx(geomean(values) * scale, rel=1e-9)
