"""The sharded, LRU-bounded result store under concurrent fire.

Three layers of lock-in for :class:`repro.engine.cache.ResultCache`:

- **Layout** — entries shard deterministically by key digest, the
  store validates its knobs, and quarantine is per shard.
- **Budget** — the byte budget holds after every put, eviction is
  least-recently-*used* (a ``get`` refreshes recency), the LRU order
  survives a process restart, and every eviction is visible in the
  metrics registry.
- **Stress** — many threads and many processes hammering one store
  concurrently produce no lost updates, no torn reads, no quarantine
  events, no ``*.tmp`` debris, and never leave the store over budget;
  injected read-side corruption (``cache.get`` fault site) quarantines
  into the owning shard only.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.arch.stats import SimResult
from repro.engine.cache import DEFAULT_SHARDS, ResultCache
from repro.errors import ConfigError
from repro.matrices import banded_mesh
from repro.obs.metrics import MetricsRegistry
from repro.preprocess import preprocess
from repro.resilience.faults import Fault, FaultPlan, activate
from tests.test_engine import make_profile


@pytest.fixture(scope="module")
def result() -> SimResult:
    prep = preprocess(banded_mesh(120, 6, 400, seed=3),
                      reorder=None, block_size=None)
    return SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32)).run(
        make_profile(n_iterations=2), prep)


def _key(i: int):
    """Distinct cache key for index ``i`` (varies the config digest)."""
    return ("sparsepipe", "pr", "gy", f"cfg-{i:04d}", None, None)


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------
class TestShardLayout:
    def test_entries_spread_across_shards(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        for i in range(32):
            cache.put(*_key(i), result=result)
        populated = [d for d in cache.shard_dirs() if any(d.glob("*.json"))]
        assert len(populated) > 1
        assert len(cache) == 32
        # Every entry went to the shard its path claims.
        for shard in cache.shard_dirs():
            for entry in shard.glob("*.json"):
                assert entry.parent == shard

    def test_same_key_same_path_and_shard(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        first = cache.put(*_key(0), result=result)
        second = cache.put(*_key(0), result=result)
        assert first == second
        assert len(cache) == 1
        assert cache.get(*_key(0)) == result

    def test_default_and_single_shard_layouts(self, tmp_path, result):
        assert ResultCache(tmp_path / "d").n_shards == DEFAULT_SHARDS
        single = ResultCache(tmp_path / "s", shards=1)
        for i in range(8):
            single.put(*_key(i), result=result)
        assert len(single) == 8
        assert all(single.get(*_key(i)) == result for i in range(8))

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0}, {"shards": -2}, {"max_bytes": 0}, {"max_bytes": -1},
    ])
    def test_invalid_knobs_rejected(self, tmp_path, kwargs):
        with pytest.raises(ConfigError):
            ResultCache(tmp_path, **kwargs)

    def test_quarantine_is_per_shard(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        paths = [cache.put(*_key(i), result=result) for i in range(6)]
        # Corrupt two entries in (very likely) different shards.
        for path in (paths[0], paths[-1]):
            path.write_text("garbage{")
        assert cache.get(*_key(0)) is None
        assert cache.get(*_key(5)) is None
        for path in (paths[0], paths[-1]):
            corpse = path.parent / "quarantine" / path.name
            assert corpse.exists()
        assert len(cache.quarantine_paths()) == 2
        assert [d.code for d in cache.pop_diagnostics()] == ["SP604"] * 2


# ----------------------------------------------------------------------
# Budget / LRU
# ----------------------------------------------------------------------
class TestByteBudget:
    def _bounded(self, root, result, n_entries_budget, **kwargs):
        """A cache whose budget holds exactly ``n_entries_budget``
        entries of ``result``'s serialized size."""
        probe = ResultCache(root / "probe")
        size = probe.put(*_key(0), result=result).stat().st_size
        return ResultCache(
            root / "store", max_bytes=size * n_entries_budget + size // 2,
            **kwargs,
        )

    def test_budget_invariant_after_every_put(self, tmp_path, result):
        cache = self._bounded(tmp_path, result, n_entries_budget=3)
        for i in range(10):
            cache.put(*_key(i), result=result)
            assert cache.live_bytes() <= cache.max_bytes
        assert len(cache) == 3

    def test_eviction_is_least_recently_used(self, tmp_path, result):
        cache = self._bounded(tmp_path, result, n_entries_budget=3)
        for i in range(3):
            cache.put(*_key(i), result=result)
        # Refresh key 0: it is now the *most* recently used.
        assert cache.get(*_key(0)) == result
        cache.put(*_key(3), result=result)
        assert cache.get(*_key(1)) is None   # oldest untouched: evicted
        assert cache.get(*_key(0)) == result  # refreshed: survived
        assert cache.get(*_key(3)) == result

    def test_lru_order_survives_restart(self, tmp_path, result):
        cache = self._bounded(tmp_path, result, n_entries_budget=3)
        for i in range(3):
            cache.put(*_key(i), result=result)
        # A brand-new store over the same directory (fresh logical
        # clock, seeded from disk) must continue the same LRU order.
        reopened = ResultCache(cache.root, max_bytes=cache.max_bytes)
        assert reopened.get(*_key(0)) == result
        reopened.put(*_key(3), result=result)
        assert reopened.get(*_key(1)) is None
        assert reopened.get(*_key(0)) == result

    def test_eviction_reported_through_metrics(self, tmp_path, result):
        registry = MetricsRegistry()
        probe = ResultCache(tmp_path / "probe")
        size = probe.put(*_key(0), result=result).stat().st_size
        cache = ResultCache(
            tmp_path / "store", max_bytes=3 * size + size // 2,
            metrics=registry,
        )
        for i in range(5):
            cache.put(*_key(i), result=result)
        assert registry.value("cache.evicted") == 2
        assert registry.value("cache.evicted_bytes") == 2 * size
        assert registry.value("cache.bytes") == cache.live_bytes()
        assert cache.get(*_key(4)) == result
        assert cache.get(*_key(0)) is None
        assert registry.value("cache.hits") == 1
        assert registry.value("cache.misses") == 1

    def test_unbounded_store_never_evicts(self, tmp_path, result):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        for i in range(20):
            cache.put(*_key(i), result=result)
        assert len(cache) == 20
        assert registry.value("cache.evicted") == 0


# ----------------------------------------------------------------------
# Concurrency stress (threads + processes)
# ----------------------------------------------------------------------
N_KEYS = 12


def _hammer(cache: ResultCache, doc: dict, seed: int, n_ops: int) -> int:
    """Mixed put/get workload against ``cache``; returns the number of
    successful validated reads. Every writer writes the *identical*
    result per key, so any read that returns a result must equal it —
    anything else is a lost update or torn read."""
    expected = SimResult.from_dict(doc)
    rng = random.Random(seed)
    hits = 0
    for _ in range(n_ops):
        i = rng.randrange(N_KEYS)
        if rng.random() < 0.5:
            cache.put(*_key(i), result=expected)
        else:
            got = cache.get(*_key(i))
            if got is not None:
                assert got == expected, f"torn/lost entry for key {i}"
                hits += 1
    return hits


def _process_worker(root: str, doc: dict, max_bytes: int,
                    seed: int, n_ops: int) -> int:
    cache = ResultCache(root, max_bytes=max_bytes)
    return _hammer(cache, doc, seed, n_ops)


def _assert_store_sane(cache: ResultCache, result: SimResult) -> None:
    """Post-stress invariants: no debris, no quarantine, within
    budget, every survivor readable and exact."""
    assert list(cache.root.rglob("*.tmp")) == []
    assert cache.quarantine_paths() == []
    assert cache.pop_diagnostics() == []
    if cache.max_bytes is not None:
        assert cache.live_bytes() <= cache.max_bytes
    survivors = 0
    for i in range(N_KEYS):
        got = cache.get(*_key(i))
        if got is not None:
            assert got == result
            survivors += 1
    assert survivors >= 1  # the store didn't just evict everything


class TestConcurrencyStress:
    def test_thread_stress_no_lost_updates(self, tmp_path, result):
        probe = ResultCache(tmp_path / "probe")
        size = probe.put(*_key(0), result=result).stat().st_size
        registry = MetricsRegistry()
        cache = ResultCache(
            tmp_path / "store", max_bytes=size * (N_KEYS // 2),
            metrics=registry,
        )
        doc = result.to_dict()
        errors: list = []

        def worker(seed: int) -> None:
            try:
                _hammer(cache, doc, seed, n_ops=120)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        _assert_store_sane(cache, result)
        assert registry.value("cache.evicted") > 0  # budget actually bit

    def test_process_stress_no_lost_updates(self, tmp_path, result):
        probe = ResultCache(tmp_path / "probe")
        size = probe.put(*_key(0), result=result).stat().st_size
        max_bytes = size * (N_KEYS // 2)
        root = tmp_path / "store"
        doc = result.to_dict()
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=4, mp_context=ctx) as pool:
            futures = [
                pool.submit(_process_worker, str(root), doc, max_bytes,
                            seed, 80)
                for seed in range(4)
            ]
            for future in futures:
                future.result(timeout=120)  # re-raises worker assertions
        _assert_store_sane(ResultCache(root, max_bytes=max_bytes), result)

    def test_threads_and_processes_together(self, tmp_path, result):
        root = tmp_path / "store"
        doc = result.to_dict()
        cache = ResultCache(root)  # unbounded: count survivors exactly
        errors: list = []

        def worker(seed: int) -> None:
            try:
                _hammer(cache, doc, seed, n_ops=60)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
            futures = [
                pool.submit(_process_worker, str(root), doc, 1 << 40,
                            seed + 100, 60)
                for seed in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for future in futures:
                future.result(timeout=120)
        assert errors == []
        _assert_store_sane(cache, result)


class TestInjectedCorruption:
    def test_read_faults_quarantine_into_owning_shard(
            self, tmp_path, result):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        paths = [cache.put(*_key(i), result=result) for i in range(4)]
        plan = FaultPlan(seed=7, faults={
            "cache.get": Fault(kind="corrupt_file", rate=1.0),
        })
        with activate(plan):
            for i in range(4):
                assert cache.get(*_key(i)) is None
        # Each corpse sits in its own entry's shard quarantine.
        for path in paths:
            assert (path.parent / "quarantine" / path.name).exists()
            assert not path.exists()
        assert len(cache.quarantine_paths()) == 4
        diags = cache.pop_diagnostics()
        assert [d.code for d in diags] == ["SP604"] * 4
        # Quarantined corpses never count against the live budget...
        assert len(cache) == 0
        # ...and the slots repopulate on the next put.
        cache.put(*_key(0), result=result)
        with activate(FaultPlan(seed=7, faults={})):
            assert cache.get(*_key(0)) == result
