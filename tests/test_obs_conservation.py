"""Differential conservation suite: the observability layer may never
disagree with the simulator's own accumulators.

Three producers see the same run — the simulator's ``SimResult``, the
result-derived :func:`registry_from_result`, and (for observable
engines) the live :class:`MetricsObserver` / :class:`TimelineObserver`
event stream. Byte and cycle totals are accumulated in the same order
everywhere, so equality below is **exact** (``==``), not approximate:
any drift is a real accounting bug, not float noise.
"""

import pytest

from repro.arch.stats import TRAFFIC_CATEGORIES
from repro.engine.registry import arch_names, get_arch
from repro.experiments.runner import ExperimentContext
from repro.obs import capture_run, dram_metric, registry_from_result

#: Small grid: every registered architecture runs each point in well
#: under a second on the smallest suite matrix.
WORKLOADS = ("bfs", "pr")
MATRIX = "gy"


@pytest.fixture(scope="module")
def context():
    """One shared context so profiles/preps are materialized once."""
    return ExperimentContext(workloads=WORKLOADS, matrices=(MATRIX,))


@pytest.mark.parametrize("arch", arch_names())
@pytest.mark.parametrize("workload", WORKLOADS)
class TestEveryArchConserves:
    def test_dram_bytes_total_is_exact(self, context, arch, workload):
        result = context.simulate(arch, workload, MATRIX)
        reg = registry_from_result(result)
        assert reg.dram_bytes_total() == result.traffic.total_bytes

    def test_per_category_bytes_are_exact(self, context, arch, workload):
        result = context.simulate(arch, workload, MATRIX)
        reg = registry_from_result(result)
        for cat in TRAFFIC_CATEGORIES:
            assert reg.value(dram_metric(cat)) == result.traffic.bytes_by_category[cat]

    def test_cycles_and_ops_are_exact(self, context, arch, workload):
        result = context.simulate(arch, workload, MATRIX)
        reg = registry_from_result(result)
        assert reg.value("sim.cycles") == result.cycles
        assert reg.value("sim.compute_ops") == result.compute_ops
        assert reg.value("bandwidth.utilization") == result.bandwidth_utilization


def test_all_builtin_archs_covered():
    """The grid above really sweeps every registered engine."""
    assert set(arch_names()) >= {
        "sparsepipe", "ideal", "oracle", "cpu", "gpu", "software_oei"
    }


@pytest.mark.parametrize("workload", WORKLOADS)
class TestLiveObserversConserve:
    """For observable engines the *event stream* must reproduce the
    result totals too — transfer-by-transfer, step-by-step."""

    def test_metrics_observer_matches_result(self, workload):
        cap = capture_run(workload, matrix=MATRIX)
        assert cap.metrics.dram_bytes_total() == cap.result.traffic.total_bytes
        for cat in TRAFFIC_CATEGORIES:
            assert (
                cap.metrics.value(dram_metric(cat))
                == cap.result.traffic.bytes_by_category[cat]
            )
        assert cap.metrics.value("sim.cycles") == cap.result.cycles

    def test_timeline_matches_result(self, workload):
        cap = capture_run(workload, matrix=MATRIX)
        assert cap.timeline.total_bytes() == cap.result.traffic.total_bytes
        assert cap.timeline.total_cycles == cap.result.cycles

    def test_timeline_and_metrics_agree_with_each_other(self, workload):
        cap = capture_run(workload, matrix=MATRIX)
        assert cap.timeline.total_bytes() == cap.metrics.dram_bytes_total()
        assert cap.timeline.steps == cap.metrics.value("sim.steps")

    def test_live_equals_result_derived_registry(self, workload):
        """The observer path and the SimResult path fill the shared
        metric names with identical values."""
        cap = capture_run(workload, matrix=MATRIX)
        derived = registry_from_result(cap.result)
        for name in ("sim.cycles", "buffer.evicted_bytes",
                     "buffer.repack_events", "bandwidth.utilization",
                     "prefetch.hit_ratio", "buffer.peak_bytes"):
            assert cap.metrics.value(name) == derived.value(name), name
        for cat in TRAFFIC_CATEGORIES:
            assert cap.metrics.value(dram_metric(cat)) == derived.value(
                dram_metric(cat)
            )


def test_only_observable_archs_capture():
    """Non-observable engines are rejected up front, not silently
    traced as empty."""
    from repro.errors import ConfigError

    for arch in arch_names():
        if not get_arch(arch).observable:
            with pytest.raises(ConfigError):
                capture_run("bfs", matrix=MATRIX, arch=arch)
