"""Property-based tests of the OEI executor and simulator.

The central invariant of the paper, stated executable: for *any*
element-wise program, any semiring, any matrix, and any sub-tensor
width, the OEI pair schedule computes exactly the same iterations as
the conventional sequential schedule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei import run_oei_pairs, run_reference

#: Binary ops that stay finite on bounded inputs.
SAFE_BINARY = ("plus", "minus", "times", "min", "max", "abs_diff")
SAFE_SEMIRINGS = ("mul_add", "min_add", "max_times")


@st.composite
def random_programs(draw):
    """A random straight-line e-wise program of 1-4 instructions."""
    n_instr = draw(st.integers(1, 4))
    instructions = []
    aux_used = draw(st.booleans())
    scalar_used = draw(st.booleans())
    for i in range(n_instr):
        op = draw(st.sampled_from(SAFE_BINARY))
        sources = [Operand(OperandKind.Y)]
        if i > 0:
            sources.append(Operand(OperandKind.REG, draw(st.integers(0, i - 1))))
        choices = ["const"]
        if aux_used:
            choices.append("aux")
        if scalar_used:
            choices.append("scalar")
        kind = draw(st.sampled_from(choices))
        if kind == "const":
            extra = Operand(
                OperandKind.CONST,
                draw(st.floats(-2.0, 2.0, allow_nan=False)),
            )
        elif kind == "aux":
            extra = Operand(OperandKind.AUX, "a0")
        else:
            extra = Operand(OperandKind.SCALAR, "s0")
        srcs = (sources[-1], extra) if len(sources) > 1 else (sources[0], extra)
        instructions.append(EWiseInstr(op, i, srcs))
    semiring = draw(st.sampled_from(SAFE_SEMIRINGS))
    return OEIProgram(
        name="random",
        semiring_name=semiring,
        instructions=tuple(instructions),
        result_reg=n_instr - 1,
        aux_vectors=("a0",) if aux_used else (),
        scalar_names=("s0",) if scalar_used else (),
        n_registers=n_instr,
        has_oei=True,
    )


def _matrix(n: int, density: float, seed: int):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < density) * gen.uniform(0.1, 1.0, (n, n))
    coo = COOMatrix.from_dense(dense)
    return CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)


@settings(max_examples=60, deadline=None)
@given(
    random_programs(),
    st.integers(3, 35),
    st.integers(1, 6),
    st.sampled_from([1, 3, 7, 50]),
    st.integers(0, 2**31 - 1),
)
def test_property_oei_equals_reference(program, n, n_iterations, subtensor, seed):
    csc, csr = _matrix(n, 0.25, seed)
    gen = np.random.default_rng(seed + 1)
    x0 = gen.uniform(0.1, 1.0, n)
    aux = {"a0": gen.uniform(-1.0, 1.0, n)}
    aux_provider = lambda k, x: aux
    scalar_update = lambda k, x: {"s0": 0.1 * (k + 1)}
    ref = run_reference(csc, program, x0, n_iterations,
                        aux_provider=aux_provider, scalar_update=scalar_update)
    oei = run_oei_pairs(csc, csr, program, x0, n_iterations,
                        aux_provider=aux_provider, scalar_update=scalar_update,
                        subtensor_cols=subtensor)
    for k in range(n_iterations):
        np.testing.assert_allclose(
            oei.y_history[k], ref.y_history[k], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            oei.x_history[k + 1], ref.x_history[k + 1], rtol=1e-9, atol=1e-9
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(5, 60), st.integers(0, 2**31 - 1), st.sampled_from([4, 16, 64]))
def test_property_simulator_traffic_conservation(n, seed, subtensor):
    """Per pair, matrix traffic (demand + eager) covers each element
    exactly once; scatter work equals nnz; window drains."""
    from repro.arch.config import SparsepipeConfig
    from repro.arch.profile import WorkloadProfile
    from repro.arch.simulator import SparsepipeSimulator

    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.3) * gen.uniform(0.1, 1.0, (n, n))
    coo = COOMatrix.from_dense(dense)
    if coo.nnz == 0:
        return
    profile = WorkloadProfile(
        name="p", semiring_name="mul_add", has_oei=True, n_iterations=4,
        path_ewise_ops=1,
    )
    config = SparsepipeConfig(subtensor_cols=subtensor)
    result = SparsepipeSimulator(config).run(profile, coo)
    matrix_stream = coo.nnz * 12.0
    streamed = (
        result.traffic.bytes_by_category["csc"]
        + result.traffic.bytes_by_category["csr_eager"]
    )
    # 2 pairs -> exactly 2 full streams (paper-size buffer: no reloads).
    np.testing.assert_allclose(streamed, 2 * matrix_stream, rtol=1e-9)
    assert result.traffic.bytes_by_category["csr_reload"] == 0.0
    assert result.bandwidth_utilization <= 0.9301


@settings(max_examples=30, deadline=None)
@given(st.integers(5, 60), st.integers(0, 2**31 - 1))
def test_property_reuse_series_matches_loadplan_window(n, seed):
    """The LoadPlan's admit schedule and the reuse analysis agree on
    total residency."""
    from repro.arch.loaders import LoadPlan
    from repro.oei.reuse import reuse_footprint

    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.3) * 1.0
    coo = COOMatrix.from_dense(dense)
    plan = LoadPlan.from_matrix(coo, subtensor_cols=1, element_bytes=12.0)
    stats = reuse_footprint(coo, subtensor_cols=1)
    # Elements entering the window = elements with residency > 1 step
    # plus single-step immediates counted by the series.
    admitted = sum(sum(c.values()) for c in plan.enter_counts)
    immediates = int(stats.series.sum()) - sum(
        (r - l)
        for l, counts in enumerate(plan.enter_counts)
        for r, cnt in counts.items()
        for _ in range(cnt)
    )
    assert admitted <= coo.nnz
    assert immediates >= 0
