"""Property-based tests of the OEI executor and simulator.

The central invariant of the paper, stated executable: for *any*
element-wise program, any semiring, any matrix, and any sub-tensor
width, the OEI pair schedule computes exactly the same iterations as
the conventional sequential schedule.
"""

import numpy as np
from hypothesis import given, settings

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei import run_oei_pairs, run_reference
from tests.strategies import dims, random_programs, seeds, subtensor_widths


def _matrix(n: int, density: float, seed: int):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < density) * gen.uniform(0.1, 1.0, (n, n))
    coo = COOMatrix.from_dense(dense)
    return CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)


@settings(max_examples=60, deadline=None)
@given(
    random_programs(),
    dims(3, 35),
    dims(1, 6),
    subtensor_widths(1, 3, 7, 50),
    seeds,
)
def test_property_oei_equals_reference(program, n, n_iterations, subtensor, seed):
    csc, csr = _matrix(n, 0.25, seed)
    gen = np.random.default_rng(seed + 1)
    x0 = gen.uniform(0.1, 1.0, n)
    aux = {"a0": gen.uniform(-1.0, 1.0, n)}
    aux_provider = lambda k, x: aux
    scalar_update = lambda k, x: {"s0": 0.1 * (k + 1)}
    ref = run_reference(csc, program, x0, n_iterations,
                        aux_provider=aux_provider, scalar_update=scalar_update)
    oei = run_oei_pairs(csc, csr, program, x0, n_iterations,
                        aux_provider=aux_provider, scalar_update=scalar_update,
                        subtensor_cols=subtensor)
    for k in range(n_iterations):
        np.testing.assert_allclose(
            oei.y_history[k], ref.y_history[k], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            oei.x_history[k + 1], ref.x_history[k + 1], rtol=1e-9, atol=1e-9
        )


@settings(max_examples=30, deadline=None)
@given(dims(5, 60), seeds, subtensor_widths(4, 16, 64))
def test_property_simulator_traffic_conservation(n, seed, subtensor):
    """Per pair, matrix traffic (demand + eager) covers each element
    exactly once; scatter work equals nnz; window drains."""
    from repro.arch.config import SparsepipeConfig
    from repro.arch.profile import WorkloadProfile
    from repro.arch.simulator import SparsepipeSimulator

    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.3) * gen.uniform(0.1, 1.0, (n, n))
    coo = COOMatrix.from_dense(dense)
    if coo.nnz == 0:
        return
    profile = WorkloadProfile(
        name="p", semiring_name="mul_add", has_oei=True, n_iterations=4,
        path_ewise_ops=1,
    )
    config = SparsepipeConfig(subtensor_cols=subtensor)
    result = SparsepipeSimulator(config).run(profile, coo)
    matrix_stream = coo.nnz * 12.0
    streamed = (
        result.traffic.bytes_by_category["csc"]
        + result.traffic.bytes_by_category["csr_eager"]
    )
    # 2 pairs -> exactly 2 full streams (paper-size buffer: no reloads).
    np.testing.assert_allclose(streamed, 2 * matrix_stream, rtol=1e-9)
    assert result.traffic.bytes_by_category["csr_reload"] == 0.0
    assert result.bandwidth_utilization <= 0.9301


@settings(max_examples=30, deadline=None)
@given(dims(5, 60), seeds)
def test_property_reuse_series_matches_loadplan_window(n, seed):
    """The LoadPlan's admit schedule and the reuse analysis agree on
    total residency."""
    from repro.arch.loaders import LoadPlan
    from repro.oei.reuse import reuse_footprint

    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.3) * 1.0
    coo = COOMatrix.from_dense(dense)
    plan = LoadPlan.from_matrix(coo, subtensor_cols=1, element_bytes=12.0)
    stats = reuse_footprint(coo, subtensor_cols=1)
    # Elements entering the window = elements with residency > 1 step
    # plus single-step immediates counted by the series.
    admitted = sum(sum(c.values()) for c in plan.enter_counts)
    immediates = int(stats.series.sum()) - sum(
        (r - l)
        for l, counts in enumerate(plan.enter_counts)
        for r, cnt in counts.items()
        for _ in range(cnt)
    )
    assert admitted <= coo.nnz
    assert immediates >= 0
