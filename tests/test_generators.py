"""Tests for the matrix generators and the Table-I suite."""

import numpy as np
import pytest

from repro.matrices import (
    SUITE,
    banded_mesh,
    bipartite_block,
    circuit_like,
    clique_overlap,
    erdos_renyi,
    grid_2d,
    load_suite_matrix,
    power_law,
    rmat,
    road_network,
    suite_names,
)
from repro.oei import reuse_footprint


class TestGenerators:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: rmat(200, 1500, seed=1),
            lambda: erdos_renyi(200, 1500, seed=1),
            lambda: power_law(200, 1500, seed=1),
            lambda: banded_mesh(200, 10, 1500, seed=1),
            lambda: road_network(200, 600, seed=1),
            lambda: circuit_like(200, 1200, seed=1),
            lambda: clique_overlap(200, 1500, clique_size=10, seed=1),
            lambda: bipartite_block(200, 1500, seed=1),
        ],
        ids=["rmat", "er", "powerlaw", "banded", "road", "circuit", "clique", "bipartite"],
    )
    def test_basic_invariants(self, build):
        coo = build()
        assert coo.shape == (200, 200)
        assert coo.nnz > 0
        # No self-loops, coordinates in range, deduplicated.
        assert np.all(coo.rows != coo.cols)
        dedup = coo.deduplicate()
        assert dedup.nnz == coo.nnz

    def test_deterministic(self):
        a = rmat(100, 500, seed=7)
        b = rmat(100, 500, seed=7)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.vals, b.vals)

    def test_seed_changes_output(self):
        a = rmat(100, 500, seed=7)
        b = rmat(100, 500, seed=8)
        assert not (
            a.nnz == b.nnz and np.array_equal(a.rows, b.rows)
        )

    def test_nnz_close_to_requested(self):
        coo = erdos_renyi(300, 2000, seed=3)
        assert 0.8 * 2000 <= coo.nnz <= 2000

    def test_banded_respects_bandwidth(self):
        coo = banded_mesh(300, 7, 2000, seed=3)
        assert np.abs(coo.rows - coo.cols).max() <= 7

    def test_grid_2d_degree(self):
        coo = grid_2d(10)
        degrees = np.bincount(coo.rows, minlength=100)
        assert degrees.max() <= 4
        assert degrees.min() >= 2

    def test_power_law_lower_bias(self):
        coo = power_law(300, 3000, lower_bias=1.0, seed=5)
        below = np.count_nonzero(coo.rows > coo.cols)
        assert below / coo.nnz > 0.95

    def test_bipartite_block_corner_mass(self):
        coo = bipartite_block(400, 4000, split=0.45, corner_share=0.9, seed=2)
        k = int(400 * 0.45)
        corner = np.count_nonzero((coo.rows >= k) & (coo.cols < k))
        assert corner / coo.nnz > 0.7

    def test_rmat_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            rmat(10, 20, a=0.6, b=0.3, c=0.3)

    def test_positive_values(self):
        coo = road_network(200, 600, seed=1)
        assert np.all(coo.vals > 0)


class TestSuite:
    def test_names_in_paper_order(self):
        assert suite_names() == ["ca", "gy", "g2", "co", "bu", "wi", "ad", "ro", "eu"]

    def test_load_is_cached(self):
        assert load_suite_matrix("gy") is load_suite_matrix("gy")

    def test_unknown_matrix(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            load_suite_matrix("zz")

    @pytest.mark.parametrize("name", ["ca", "gy", "g2", "ro"])
    def test_matrices_are_square_nonempty(self, name):
        m = load_suite_matrix(name)
        assert m.nrows == m.ncols
        assert m.nnz > 1000

    def test_footprint_ordering_matches_paper(self):
        """The qualitative Table-I result: bu/ca/wi large, roads tiny."""
        pct = {
            name: reuse_footprint(load_suite_matrix(name)).avg_pct
            for name in suite_names()
        }
        assert pct["bu"] > pct["ca"] > pct["co"]
        assert pct["wi"] > pct["co"]
        assert pct["ro"] < 3.0
        assert pct["gy"] < 5.0
        assert pct["bu"] > 30.0


class TestNewGenerators:
    def test_watts_strogatz_degree(self):
        from repro.matrices import watts_strogatz

        coo = watts_strogatz(200, k=6, rewire=0.0, seed=1)
        # Pure ring lattice: every vertex has degree exactly k.
        degrees = np.bincount(coo.rows, minlength=200)
        assert np.all(degrees == 6)

    def test_watts_strogatz_rewire_scatters(self):
        from repro.matrices import watts_strogatz
        from repro.oei import reuse_footprint

        local = reuse_footprint(watts_strogatz(300, k=6, rewire=0.0, seed=2))
        scattered = reuse_footprint(watts_strogatz(300, k=6, rewire=0.8, seed=2))
        assert scattered.avg_pct > local.avg_pct

    def test_barabasi_albert_has_hubs(self):
        from repro.matrices import barabasi_albert

        coo = barabasi_albert(300, m=3, seed=3)
        degrees = np.bincount(coo.rows, minlength=300)
        # Preferential attachment: the max degree dwarfs the median.
        assert degrees.max() > 4 * np.median(degrees[degrees > 0])

    def test_barabasi_albert_connected_shape(self):
        from repro.matrices import barabasi_albert

        coo = barabasi_albert(100, m=2, seed=4)
        assert coo.shape == (100, 100)
        assert coo.nnz >= 2 * 97  # ~m edges per arriving vertex, both dirs


class TestAutotune:
    def test_returns_candidate_and_result(self):
        from repro.arch.autotune import autotune_subtensor_cols
        from repro.arch.config import SparsepipeConfig
        from repro.arch.profile import WorkloadProfile
        from repro.matrices import rmat

        profile = WorkloadProfile(
            name="pr", semiring_name="mul_add", has_oei=True,
            n_iterations=8, path_ewise_ops=2,
        )
        coo = rmat(500, 4000, seed=5)
        best, result = autotune_subtensor_cols(
            profile, coo, SparsepipeConfig(), candidates=(16, 64, 256)
        )
        assert best in (16, 64, 256)
        assert result.n_iterations == 8

    def test_best_never_worse_than_fixed_candidates(self):
        from repro.arch.autotune import autotune_subtensor_cols
        from repro.arch.config import SparsepipeConfig
        from repro.arch.profile import WorkloadProfile
        from repro.arch.simulator import SparsepipeSimulator
        from dataclasses import replace
        from repro.matrices import rmat

        profile = WorkloadProfile(
            name="pr", semiring_name="mul_add", has_oei=True,
            n_iterations=6, path_ewise_ops=2,
        )
        coo = rmat(400, 3000, seed=6)
        candidates = (16, 128)
        best, tuned = autotune_subtensor_cols(
            profile, coo, SparsepipeConfig(), candidates=candidates,
            probe_iterations=6,  # probe == full run -> exact choice
        )
        fixed = [
            SparsepipeSimulator(
                replace(SparsepipeConfig(), subtensor_cols=c)
            ).run(profile, coo).cycles
            for c in candidates
        ]
        assert tuned.cycles == pytest.approx(min(fixed))

    def test_rejects_empty_candidates(self):
        from repro.arch.autotune import autotune_subtensor_cols
        from repro.arch.profile import WorkloadProfile
        from repro.errors import ConfigError
        from repro.matrices import rmat

        profile = WorkloadProfile(
            name="pr", semiring_name="mul_add", has_oei=True, n_iterations=2,
        )
        with pytest.raises(ConfigError):
            autotune_subtensor_cols(profile, rmat(50, 200, seed=1), candidates=())
