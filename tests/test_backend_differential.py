"""Differential backend suite: vectorized must equal reference, exactly.

The vectorized backend (:mod:`repro.arch.fastpath`) and the batched
semiring kernels (:mod:`repro.semiring.kernels`) claim *bit-identical*
results — ``==``, never ``approx`` — against the step-by-step reference
implementations. This suite is that claim, executed:

- the full architecture grid (every registered engine × the four paper
  semirings) through :class:`ExperimentContext`, including the sweep
  metrics registry;
- the Sparsepipe simulator head-to-head under the zero-observer
  contract, where both backends produce the identical ``SimResult``;
- hypothesis property runs over random matrices, widths, and configs;
- the OEI executor and masked/accumulated ``vxm`` under
  ``kernel="reference"`` vs ``kernel="batched"``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.simulator import SparsepipeSimulator
from repro.engine.instrumentation import StepTraceObserver
from repro.engine.registry import arch_names
from repro.experiments.runner import ExperimentContext
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import mxv, vxm
from repro.graphblas.vector import Vector
from repro.oei import run_oei_pairs, run_reference
from repro.preprocess.pipeline import preprocess
from repro.semiring import AND_OR, ARIL_ADD, MIN, MIN_ADD, MUL_ADD, PLUS
from tests.conftest import random_coo
from tests.strategies import coo_matrices, subtensor_widths
from tests.test_oei_executor import bfs_program, pagerank_program, sssp_program

#: Workload exercising each paper semiring (Table III).
SEMIRING_WORKLOADS = (
    ("mul_add", "pr"),
    ("and_or", "bfs"),
    ("min_add", "sssp"),
    ("aril_add", "kpp"),
)

PAPER_SEMIRINGS = (MUL_ADD, AND_OR, MIN_ADD, ARIL_ADD)


def assert_exact(a, b):
    """Exact SimResult equality (dataclass ==, plus the serialized
    document so a failure names the differing field)."""
    assert a.to_dict() == b.to_dict()
    assert a == b


@pytest.fixture(scope="module")
def contexts():
    """One context per backend over the full differential grid."""
    kwargs = dict(
        workloads=tuple(w for _, w in SEMIRING_WORKLOADS), matrices=("gy",)
    )
    return (
        ExperimentContext(config=SparsepipeConfig(backend="reference"), **kwargs),
        ExperimentContext(config=SparsepipeConfig(backend="vectorized"), **kwargs),
    )


class TestFullArchitectureGrid:
    """Every registered architecture × every paper semiring."""

    @pytest.mark.parametrize("semiring,workload", SEMIRING_WORKLOADS)
    @pytest.mark.parametrize("arch", arch_names())
    def test_simresult_exact(self, contexts, arch, semiring, workload):
        ref_ctx, vec_ctx = contexts
        ref = ref_ctx.simulate(arch, workload, "gy")
        vec = vec_ctx.simulate(arch, workload, "gy")
        # The reference context keeps the default step-trace observer
        # (its samples are instrumentation, not model state — PR-3
        # contract: observers=() <=> bandwidth_samples=[]); every model
        # quantity must match bit for bit.
        assert replace(ref, bandwidth_samples=[]) == vec
        ref_doc, vec_doc = ref.to_dict(), vec.to_dict()
        ref_doc.pop("bandwidth_samples"), vec_doc.pop("bandwidth_samples")
        assert ref_doc == vec_doc

    def test_metrics_registry_exact(self, contexts):
        ref_ctx, vec_ctx = contexts
        for arch in arch_names():
            for _, workload in SEMIRING_WORKLOADS:
                ref_ctx.simulate(arch, workload, "gy")
                vec_ctx.simulate(arch, workload, "gy")
        assert vec_ctx.metrics.to_dict() == ref_ctx.metrics.to_dict()
        assert vec_ctx.metrics.digest() == ref_ctx.metrics.digest()


class TestSimulatorHeadToHead:
    """Zero-observer contract: identical SimResult from both backends."""

    @pytest.mark.parametrize("semiring,workload", SEMIRING_WORKLOADS)
    def test_paper_workloads_exact(self, contexts, semiring, workload):
        ref_ctx, _ = contexts
        profile = ref_ctx.profile(workload, "gy")
        prep = ref_ctx.prepared("gy")
        results = {
            backend: SparsepipeSimulator(
                SparsepipeConfig(backend=backend)
            ).run(profile, prep, observers=())
            for backend in ("reference", "vectorized")
        }
        assert_exact(results["reference"], results["vectorized"])

    @pytest.mark.parametrize(
        "knobs",
        [
            dict(buffer_bytes=4096),
            dict(buffer_bytes=20000, eager_is=False),
            dict(subtensor_cols=37, repack_threshold=0.3),
            dict(subtensor_cols=96, step_overhead_cycles=2, dram_efficiency=0.8),
        ],
    )
    def test_config_corners_exact(self, contexts, knobs):
        ref_ctx, _ = contexts
        profile = ref_ctx.profile("sssp", "gy")
        prep = ref_ctx.prepared("gy")
        ref = SparsepipeSimulator(
            SparsepipeConfig(backend="reference", **knobs)
        ).run(profile, prep, observers=())
        vec = SparsepipeSimulator(
            SparsepipeConfig(backend="vectorized", **knobs)
        ).run(profile, prep, observers=())
        assert_exact(ref, vec)

    def test_observers_stay_on_vectorized_backend(self, contexts):
        """A vectorized config with observers attached stays on the
        vectorized backend — batched event synthesis replays the PR-3
        event stream post-hoc instead of falling back to the reference
        loop, and the samples match bit for bit."""
        ref_ctx, _ = contexts
        profile = ref_ctx.profile("pr", "gy")
        prep = ref_ctx.prepared("gy")
        obs_ref, obs_vec = StepTraceObserver(), StepTraceObserver()
        sim_ref = SparsepipeSimulator(SparsepipeConfig(backend="reference"))
        ref = sim_ref.run(profile, prep, observers=(obs_ref,))
        sim_vec = SparsepipeSimulator(SparsepipeConfig(backend="vectorized"))
        vec = sim_vec.run(profile, prep, observers=(obs_vec,))
        assert sim_ref.last_backend == "reference"
        assert sim_vec.last_backend == "vectorized"  # no silent fallback
        assert_exact(ref, vec)
        assert obs_vec.samples(1.0) == obs_ref.samples(1.0)
        assert obs_vec.samples(1.0)  # the stream actually fired


@st.composite
def synthetic_profiles(draw):
    semiring = draw(st.sampled_from([s.name for s in PAPER_SEMIRINGS]))
    n_iterations = draw(st.integers(1, 5))
    activity = tuple(
        draw(st.floats(0.0, 1.0)) for _ in range(draw(st.integers(0, n_iterations)))
    )
    return WorkloadProfile(
        name="synthetic",
        semiring_name=semiring,
        has_oei=draw(st.booleans()),
        n_iterations=n_iterations,
        path_ewise_ops=draw(st.integers(0, 3)),
        side_ewise_ops=draw(st.integers(0, 2)),
        aux_streams=draw(st.integers(0, 2)),
        writeback_streams=draw(st.integers(0, 2)),
        activity=activity,
    )


class TestPropertyDifferential:
    @settings(max_examples=20, deadline=None)
    @given(
        coo=coo_matrices(max_n=40),
        profile=synthetic_profiles(),
        width=subtensor_widths(4, 8, 16, 37, 64),
        buffer_bytes=st.sampled_from([4096, 20000, None]),
        eager=st.booleans(),
    )
    def test_random_runs_exact(self, coo, profile, width, buffer_bytes, eager):
        prep = preprocess(coo)
        ref = SparsepipeSimulator(
            SparsepipeConfig(
                backend="reference", subtensor_cols=width,
                buffer_bytes=buffer_bytes, eager_is=eager,
            )
        ).run(profile, prep, observers=())
        vec = SparsepipeSimulator(
            SparsepipeConfig(
                backend="vectorized", subtensor_cols=width,
                buffer_bytes=buffer_bytes, eager_is=eager,
            )
        ).run(profile, prep, observers=())
        assert_exact(ref, vec)

    @pytest.mark.slow
    @settings(max_examples=120, deadline=None)
    @given(
        coo=coo_matrices(max_n=64),
        profile=synthetic_profiles(),
        width=subtensor_widths(1, 3, 4, 8, 16, 37, 64, 128),
        buffer_bytes=st.sampled_from([4096, 8192, 20000, None]),
        eager=st.booleans(),
        repack=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
    )
    def test_random_runs_exact_deep(
        self, coo, profile, width, buffer_bytes, eager, repack
    ):
        prep = preprocess(coo)
        results = [
            SparsepipeSimulator(
                SparsepipeConfig(
                    backend=backend, subtensor_cols=width,
                    buffer_bytes=buffer_bytes, eager_is=eager,
                    repack_threshold=repack,
                )
            ).run(profile, prep, observers=())
            for backend in ("reference", "vectorized")
        ]
        assert_exact(*results)


class TestExecutorKernels:
    """kernel="batched" vs kernel="reference" in the OEI executor."""

    def _equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        return bool(np.all((a == b) | (np.isnan(a) & np.isnan(b))))

    @pytest.mark.parametrize("subtensor_cols", [3, 10, 37])
    @pytest.mark.parametrize(
        "prog_builder,x0_builder,kwargs",
        [
            (
                pagerank_program,
                lambda n: np.full(n, 1.0 / n),
                {"scalar_update": lambda k, x: {"teleport": 0.15 / x.size}},
            ),
            (
                sssp_program,
                lambda n: np.where(np.arange(n) == 0, 0.0, np.inf),
                {"aux_provider": lambda k, x: {"dist": x}},
            ),
            (
                bfs_program,
                lambda n: (np.arange(n) == 3).astype(float),
                {},
            ),
        ],
        ids=["pr", "sssp", "bfs"],
    )
    def test_oei_pairs_exact(self, prog_builder, x0_builder, kwargs, subtensor_cols):
        from repro.formats.csc import CSCMatrix
        from repro.formats.csr import CSRMatrix

        coo = random_coo(11, n=47, density=0.15)
        csc, csr = CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)
        x0 = x0_builder(47)
        runs = {
            kernel: run_oei_pairs(
                csc, csr, prog_builder(), x0, 5,
                subtensor_cols=subtensor_cols, kernel=kernel, **kwargs
            )
            for kernel in ("reference", "batched")
        }
        for a, b in zip(runs["reference"].x_history, runs["batched"].x_history):
            assert self._equal(a, b)
        for a, b in zip(runs["reference"].y_history, runs["batched"].y_history):
            assert self._equal(a, b)

    def test_run_reference_exact(self):
        from repro.formats.csc import CSCMatrix

        coo = random_coo(12, n=40, density=0.2)
        csc = CSCMatrix.from_coo(coo)
        x0 = np.full(40, 1.0 / 40)
        scal = lambda k, x: {"teleport": 0.15 / 40}
        a = run_reference(csc, pagerank_program(), x0, 4,
                          scalar_update=scal, kernel="reference")
        b = run_reference(csc, pagerank_program(), x0, 4,
                          scalar_update=scal, kernel="batched")
        for ya, yb in zip(a.y_history, b.y_history):
            assert self._equal(ya, yb)

    @pytest.mark.parametrize("semiring", PAPER_SEMIRINGS, ids=lambda s: s.name)
    def test_masked_accumulated_vxm_exact(self, semiring):
        gen = np.random.default_rng(17)
        a = Matrix(random_coo(13, n=35, density=0.2))
        v = Vector(35, gen.uniform(0.1, 2.0, 35), gen.random(35) >= 0.3)
        out = Vector(35, gen.uniform(0.1, 2.0, 35), gen.random(35) >= 0.4)
        mask = Mask(Vector(35, np.zeros(35), gen.random(35) < 0.6))
        for op in (vxm, mxv):
            ref = op(v, a, semiring, mask=mask, accum=PLUS, out=out,
                     kernel="reference") if op is vxm else op(
                     a, v, semiring, mask=mask, accum=PLUS, out=out,
                     kernel="reference")
            bat = op(v, a, semiring, mask=mask, accum=PLUS, out=out,
                     kernel="batched") if op is vxm else op(
                     a, v, semiring, mask=mask, accum=PLUS, out=out,
                     kernel="batched")
            assert np.array_equal(ref.present, bat.present)
            assert self._equal(ref.values[ref.present], bat.values[bat.present])

    @pytest.mark.parametrize("semiring", PAPER_SEMIRINGS, ids=lambda s: s.name)
    def test_plain_and_min_accum_vxm_exact(self, semiring):
        gen = np.random.default_rng(23)
        a = Matrix(random_coo(14, n=30, density=0.15))
        v = Vector(30, gen.uniform(0.1, 2.0, 30))
        out = Vector(30, gen.uniform(0.1, 2.0, 30))
        ref = vxm(v, a, semiring, accum=MIN, out=out, kernel="reference")
        bat = vxm(v, a, semiring, accum=MIN, out=out, kernel="batched")
        assert np.array_equal(ref.present, bat.present)
        assert self._equal(ref.values[ref.present], bat.values[bat.present])
        ref = vxm(v, a, semiring, kernel="reference")
        bat = vxm(v, a, semiring, kernel="batched")
        assert np.array_equal(ref.present, bat.present)
        assert self._equal(ref.values[ref.present], bat.values[bat.present])
