"""Tests for MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.coo import COOMatrix
from repro.formats.matrix_market import read_matrix_market, write_matrix_market


def _read(text: str, strict: bool = False) -> COOMatrix:
    return read_matrix_market(io.StringIO(text), strict=strict)


class TestRead:
    def test_general_real(self):
        coo = _read(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 3 2\n"
            "1 2 1.5\n"
            "3 1 -2.0\n"
        )
        dense = coo.to_dense()
        assert dense[0, 1] == 1.5
        assert dense[2, 0] == -2.0
        assert coo.nnz == 2

    def test_pattern_defaults_to_one(self):
        coo = _read(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n"
        )
        assert coo.to_dense()[1, 0] == 1.0

    def test_symmetric_mirrors_off_diagonal(self):
        coo = _read(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 4.0\n"
            "3 3 1.0\n"
        )
        dense = coo.to_dense()
        assert dense[1, 0] == 4.0 and dense[0, 1] == 4.0
        assert dense[2, 2] == 1.0
        assert coo.deduplicate().nnz == 3

    def test_rejects_bad_header(self):
        with pytest.raises(FormatError):
            _read("%%NotMatrixMarket foo\n1 1 0\n")

    def test_rejects_array_layout(self):
        with pytest.raises(FormatError):
            _read("%%MatrixMarket matrix array real general\n1 1\n0\n")

    def test_rejects_complex_field(self):
        with pytest.raises(FormatError):
            _read("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")

    def test_rejects_truncated_entries(self):
        with pytest.raises(FormatError):
            _read("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")

    def test_rejects_missing_size_line(self):
        with pytest.raises(FormatError):
            _read("%%MatrixMarket matrix coordinate real general\n% only comments\n")


class TestLineNumberedErrors:
    """Every FormatError carries ``line <n>`` context and an SP605
    diagnostic so a bad SuiteSparse download is debuggable from the
    message alone."""

    def test_bad_header_names_line_one(self):
        with pytest.raises(FormatError, match="line 1") as err:
            _read("%%NotMatrixMarket foo\n1 1 0\n")
        assert "SP605" in err.value.codes

    def test_bad_size_line_is_located(self):
        with pytest.raises(FormatError, match="line 2"):
            _read("%%MatrixMarket matrix coordinate real general\n2 x 1\n")
        with pytest.raises(FormatError, match="line 2"):
            _read("%%MatrixMarket matrix coordinate real general\n-2 2 1\n")

    def test_bad_entry_is_located(self):
        with pytest.raises(FormatError, match="line 4"):
            _read(
                "%%MatrixMarket matrix coordinate real general\n"
                "% comment\n"
                "2 2 2\n"
                "1 one 1.0\n"
            )

    def test_truncated_file_points_past_last_line(self):
        with pytest.raises(FormatError, match="line 3"):
            _read("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")

    def test_rejects_non_square_symmetric(self):
        # Seed bug: mirroring a 2x3 "symmetric" file either crashed in
        # COOMatrix or silently produced wrong entries.
        with pytest.raises(FormatError, match="square") as err:
            _read(
                "%%MatrixMarket matrix coordinate real symmetric\n"
                "2 3 1\n"
                "1 1 1.0\n"
            )
        assert "line 2" in str(err.value)

    def test_rejects_out_of_bounds_coordinates(self):
        # Always-on (not just strict): out-of-range indices would
        # corrupt downstream CSR conversion silently.
        with pytest.raises(FormatError, match="line 3"):
            _read("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n")
        with pytest.raises(FormatError, match="line 3"):
            _read("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n")

    def test_rejects_surplus_entries(self):
        with pytest.raises(FormatError, match="line 5"):
            _read(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1 1.0\n% ok\n2 2 2.0\n"
            )


class TestStrictMode:
    GOOD = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n1 1 1.0\n2 2 2.0\n"
    )

    def test_clean_file_passes_strict(self):
        assert _read(self.GOOD, strict=True).nnz == 2

    def test_strict_rejects_trailing_tokens(self):
        text = self.GOOD.replace("1 1 1.0", "1 1 1.0 extra")
        assert _read(text).nnz == 2  # lenient: ignored
        with pytest.raises(FormatError, match="line 3"):
            _read(text, strict=True)

    def test_strict_rejects_duplicates(self):
        text = self.GOOD.replace("2 2 2.0", "1 1 2.0")
        assert _read(text).nnz == 2  # lenient: kept, dedup downstream
        with pytest.raises(FormatError, match="line 4"):
            _read(text, strict=True)

    def test_strict_rejects_non_finite(self):
        text = self.GOOD.replace("2 2 2.0", "2 2 nan")
        assert _read(text).nnz == 2  # lenient: accepted as-is
        with pytest.raises(FormatError, match="line 4"):
            _read(text, strict=True)
        with pytest.raises(FormatError, match="line 4"):
            _read(self.GOOD.replace("2 2 2.0", "2 2 inf"), strict=True)


class TestWriteReadRoundTrip:
    def test_round_trip(self, small_coo):
        buf = io.StringIO()
        write_matrix_market(small_coo, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert np.allclose(back.to_dense(), small_coo.to_dense())

    def test_file_round_trip(self, small_coo, tmp_path):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(small_coo, path)
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), small_coo.to_dense())

    def test_write_deduplicates(self):
        coo = COOMatrix(
            (2, 2), np.array([0, 0]), np.array([0, 0]), np.array([1.0, 2.0])
        )
        buf = io.StringIO()
        write_matrix_market(coo, buf)
        assert "2 2 1" in buf.getvalue()
