"""Scheduler-backend conformance suite.

One parametrized suite run identically against every registered
backend (``inprocess`` / ``localpool`` / ``spool``): protocol
semantics (submit/poll/collect_logs/cancel/shutdown), the supervised
failure policies (raise/skip/retry), the watchdog, log reattachment,
and sweep-level conformance — bit-identical ``SimResult``s and
digest-stable manifests regardless of substrate. Backends may not
special-case their way out: the test ids name the backend, so a
failure reads as a conformance violation of that backend.

``REPRO_SCHED_BACKENDS`` (comma-separated) restricts the run to a
subset — CI's scheduler matrix runs the suite once per backend.
"""

import collections
import os
import time

import pytest

from repro.errors import ConfigError, WatchdogTimeout
from repro.experiments.runner import ExperimentContext
from repro.obs.metrics import MetricsRegistry
from repro.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    FanoutOutcome,
    create_scheduler,
    is_distributed,
    run_fanout,
    scheduler_names,
)

ALL_BACKENDS = ("inprocess", "localpool", "spool")
BACKENDS = tuple(
    b for b in ALL_BACKENDS
    if b in os.environ.get(
        "REPRO_SCHED_BACKENDS", ",".join(ALL_BACKENDS)).split(",")
)

_PARENT_PID = os.getpid()

#: Cheap simulation points for the sweep-conformance tests.
SWEEP_POINTS = [
    ("sparsepipe", "pr", "gy"),
    ("ideal", "pr", "gy"),
    ("cpu", "pr", "gy"),
]


# ----------------------------------------------------------------------
# Module-level (picklable) job functions
# ----------------------------------------------------------------------
def _double(x):
    return x * 2


def _print_and_double(x):
    print(f"computing {x}")
    return x * 2


def _always_fails(x):
    raise ValueError(f"permanent failure on {x}")


_CALLS = collections.Counter()


def _flaky_once(x):
    """Fails the first time each value is seen in this process — a
    worker-side first attempt leaves the parent's counter untouched,
    so the in-process retry recovers on every backend."""
    _CALLS[x] += 1
    if _CALLS[x] == 1:
        raise ValueError(f"transient failure on {x}")
    return x * 2


def _slow(x):
    time.sleep(30)
    return x  # pragma: no cover - the watchdog fires first


def _die_outside_parent(x):
    """Worker death: exits hard anywhere but the submitting process.
    Pool workers are forked (pid check); spool workers re-import this
    module, so the pid check is blind there — the env marker isn't."""
    if os.environ.get("REPRO_SPOOL_WORKER") or os.getpid() != _PARENT_PID:
        os._exit(17)
    return x * 2


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def make_scheduler(backend, tmp_path):
    """Factory for schedulers of the parametrized backend; everything
    created through it is shut down at teardown."""
    created = []

    def factory(**options):
        if backend == "spool":
            options.setdefault("spool_dir", tmp_path / "spool")
        sched = create_scheduler(backend, **options)
        created.append(sched)
        return sched

    yield factory
    for sched in created:
        sched.shutdown()


class TestProtocol:
    def test_registry_knows_every_backend(self):
        assert set(ALL_BACKENDS) <= set(scheduler_names())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            create_scheduler("carrier-pigeon")

    def test_distributed_flag(self, backend):
        assert is_distributed(backend) == (backend != "inprocess")

    def test_submit_poll_lifecycle(self, make_scheduler, backend):
        sched = make_scheduler()
        job = sched.submit(_double, 21)
        assert job.status == PENDING
        assert job.job_id.startswith(backend)
        assert sched.poll(job) == DONE
        assert job.result == 42

    def test_failure_is_a_status_not_a_crash(self, make_scheduler):
        sched = make_scheduler()
        job = sched.submit(_always_fails, 1)
        assert sched.poll(job) == FAILED
        assert isinstance(job.exception, Exception)
        assert "permanent" in job.error

    def test_cancel_semantics(self, make_scheduler):
        sched = make_scheduler()
        keep = sched.submit(_double, 1)
        drop = sched.submit(_double, 2)
        # A PENDING job can be withdrawn; it never runs.
        assert sched.cancel(drop) is True
        assert drop.status == CANCELLED
        assert sched.poll(keep) == DONE
        assert drop.status == CANCELLED and drop.result is None
        # A job that already ran cannot be abandoned retroactively.
        assert sched.cancel(keep) is False
        assert keep.status == DONE

    def test_log_reattachment(self, make_scheduler):
        sched = make_scheduler()
        jobs = [sched.submit(_print_and_double, x, index=x) for x in (1, 2)]
        for job in jobs:
            sched.poll(job)
        for x, job in zip((1, 2), jobs):
            assert f"computing {x}" in sched.collect_logs(job)


class TestPolicies:
    """run_fanout's raise/skip/retry semantics, per backend."""

    def test_identical_results(self, make_scheduler):
        sched = make_scheduler()
        outcome = run_fanout(sched, _double, range(6))
        assert outcome.results == [0, 2, 4, 6, 8, 10]
        assert outcome.ok and not outcome.pool_broken

    def test_empty_items(self, make_scheduler):
        outcome = run_fanout(make_scheduler(), _double, [])
        assert outcome == FanoutOutcome(results=[])

    def test_raise_policy_propagates(self, make_scheduler):
        with pytest.raises(ValueError, match="permanent"):
            run_fanout(make_scheduler(), _always_fails, [1, 2])

    def test_skip_policy_records_failures(self, make_scheduler):
        outcome = run_fanout(
            make_scheduler(), _always_fails, [1, 2, 3], on_error="skip")
        assert outcome.results == [None, None, None]
        assert [f.index for f in outcome.failures] == [0, 1, 2]
        assert all(f.diagnostic.code == "SP603" for f in outcome.failures)

    def test_retry_policy_recovers_transients(self, make_scheduler):
        _CALLS.clear()
        outcome = run_fanout(
            make_scheduler(), _flaky_once, [4, 5],
            on_error="retry", retries=2)
        assert outcome.results == [8, 10]
        assert outcome.ok
        assert sorted(outcome.retried) == [0, 1]
        assert all(d.code == "SP602"
                   for diags in outcome.retried.values() for d in diags)

    def test_retry_policy_exhausts_to_failure(self, make_scheduler):
        outcome = run_fanout(
            make_scheduler(), _always_fails, [1],
            on_error="retry", retries=2)
        assert outcome.results == [None]
        assert outcome.failures[0].attempts == 3

    def test_watchdog_times_out_hung_item(self, make_scheduler):
        sched = make_scheduler(timeout_s=0.2)
        outcome = run_fanout(sched, _slow, [1], on_error="skip")
        assert outcome.results == [None]
        error = outcome.failures[0].error
        assert "SP606" in error or "Watchdog" in error or "watchdog" in error

    def test_watchdog_raise_policy(self, make_scheduler):
        with pytest.raises(WatchdogTimeout):
            run_fanout(make_scheduler(timeout_s=0.2), _slow, [1])

    def test_unknown_policy_rejected(self, make_scheduler):
        with pytest.raises(ValueError, match="on_error"):
            run_fanout(make_scheduler(), _double, [1], on_error="ignore")

    def test_worker_death_degrades_not_crashes(self, make_scheduler,
                                               backend):
        """A dead worker is a substrate degradation (SP601 + in-process
        completion) on distributed backends and a non-event on the
        in-process one — never a failed sweep."""
        sched = make_scheduler(max_workers=2)
        outcome = run_fanout(sched, _die_outside_parent, range(4))
        assert outcome.results == [0, 2, 4, 6]
        assert outcome.ok
        if backend == "inprocess":
            assert not outcome.pool_broken and not outcome.diagnostics
        else:
            assert outcome.pool_broken
            assert {d.code for d in outcome.diagnostics} == {"SP601"}

    def test_metrics_counters_flow(self, make_scheduler, backend):
        metrics = MetricsRegistry()
        run_fanout(make_scheduler(), _double, range(3), metrics=metrics)
        assert metrics.counter("scheduler.submitted").value == 3
        assert metrics.counter("scheduler.completed").value == 3
        assert metrics.counter(f"scheduler.backend.{backend}").value == 1


class TestSweepConformance:
    """simulate_many on an explicit backend: bit-identical SimResults
    and digest-stable manifests versus the serial reference."""

    def test_results_and_digests_match_serial_reference(
        self, backend, tmp_path, monkeypatch
    ):
        if backend == "spool":
            monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        reference = ExperimentContext()
        baseline = reference.simulate_many(SWEEP_POINTS)

        context = ExperimentContext(max_workers=2, scheduler=backend)
        results = context.simulate_many(SWEEP_POINTS)

        assert results == baseline
        for point in SWEEP_POINTS:
            assert context.manifest(*point).digest() == \
                reference.manifest(*point).digest()
            assert context.manifest(*point).status == "ok"

    def test_scheduler_counters_reach_context_metrics(
        self, backend, tmp_path, monkeypatch
    ):
        if backend == "spool":
            monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        context = ExperimentContext(max_workers=2, scheduler=backend)
        context.simulate_many(SWEEP_POINTS)
        metrics = context.metrics.to_dict()
        assert metrics["scheduler.submitted"]["value"] == len(SWEEP_POINTS)
        assert f"scheduler.backend.{backend}" in metrics

    def test_unknown_backend_rejected_at_context_construction(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            ExperimentContext(scheduler="carrier-pigeon")


@pytest.mark.skipif("spool" not in BACKENDS,
                    reason="spool excluded by REPRO_SCHED_BACKENDS")
class TestSpoolArtifacts:
    """Spool-backend specifics: the job-file lifecycle on disk."""

    def test_job_file_artifacts(self, tmp_path):
        sched = create_scheduler("spool", spool_dir=tmp_path / "spool")
        try:
            outcome = run_fanout(sched, _print_and_double, [7])
            assert outcome.results == [14]
            job = sched._jobs[0]
            root = sched.spool_dir
            assert (root / f"{job.job_id}.job").exists()
            assert (root / f"{job.job_id}.out").exists()
            assert (root / f"{job.job_id}.log").exists()
            manifest = job.manifest
            assert manifest["backend"] == "spool"
            assert manifest["status"] == "done"
            assert manifest["worker_pid"] != os.getpid()
            assert "computing 7" in sched.collect_logs(job)
        finally:
            sched.shutdown()
        # Explicit spool dirs are kept for post-mortem (CI artifacts).
        assert (tmp_path / "spool").exists()

    def test_ephemeral_spool_dir_removed_on_shutdown(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPOOL_DIR", raising=False)
        sched = create_scheduler("spool")
        root = sched.spool_dir
        assert root.exists()
        sched.shutdown()
        assert not root.exists()

    def test_worker_runs_with_env_marker(self, tmp_path):
        sched = create_scheduler("spool", spool_dir=tmp_path)
        try:
            job = sched.submit(_spool_env_probe, None)
            assert sched.poll(job) == DONE
            assert job.result == "1"
        finally:
            sched.shutdown()


def _spool_env_probe(_):
    return os.environ.get("REPRO_SPOOL_WORKER", "")
