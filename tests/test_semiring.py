"""Tests for binary ops, monoids, and semirings, including algebraic
property tests (associativity, commutativity, identity, annihilation)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ConfigError
from repro.semiring import (
    ARIL,
    ARIL_ADD,
    AND_OR,
    BINARY_OPS,
    LOR_MONOID,
    MIN_ADD,
    MIN_MONOID,
    MONOIDS,
    MUL_ADD,
    PLUS_MONOID,
    SEMIRINGS,
    semiring_by_name,
)
from tests.strategies import booleans, finite, finite_lists, monoid_names


class TestBinaryOps:
    def test_plus(self):
        assert BINARY_OPS["plus"](2.0, 3.0) == 5.0

    def test_minus_not_commutative_flagged(self):
        assert not BINARY_OPS["minus"].commutative

    def test_aril_selects_rhs_when_lhs_true(self):
        out = ARIL(np.array([1.0, 0.0, 2.0]), np.array([5.0, 6.0, 7.0]))
        assert np.array_equal(out, [5.0, 0.0, 7.0])

    def test_lor_land_normalize_to_01(self):
        assert BINARY_OPS["lor"](3.0, 0.0) == 1.0
        assert BINARY_OPS["land"](3.0, 0.0) == 0.0
        assert BINARY_OPS["land"](3.0, -1.0) == 1.0

    def test_abs_diff(self):
        assert BINARY_OPS["abs_diff"](2.0, 5.0) == 3.0

    def test_first_second(self):
        assert BINARY_OPS["first"](1.0, 9.0) == 1.0
        assert BINARY_OPS["second"](1.0, 9.0) == 9.0

    def test_vectorized(self):
        out = BINARY_OPS["min"](np.array([1.0, 5.0]), np.array([3.0, 2.0]))
        assert np.array_equal(out, [1.0, 2.0])


class TestMonoids:
    def test_reduce_empty_is_identity(self):
        for monoid in MONOIDS.values():
            assert monoid.reduce(np.zeros(0)) == monoid.identity

    def test_plus_reduce(self):
        assert PLUS_MONOID.reduce(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_min_reduce(self):
        assert MIN_MONOID.reduce(np.array([3.0, -1.0, 2.0])) == -1.0

    def test_segment_reduce_plus(self):
        out = PLUS_MONOID.segment_reduce(
            np.array([1.0, 2.0, 3.0, 4.0]), np.array([0, 2, 2, 0]), 3
        )
        assert np.array_equal(out, [5.0, 0.0, 5.0])

    def test_segment_reduce_min_empty_segment_gets_identity(self):
        out = MIN_MONOID.segment_reduce(np.array([2.0]), np.array([1]), 3)
        assert out[0] == np.inf and out[1] == 2.0 and out[2] == np.inf

    def test_segment_reduce_lor(self):
        out = LOR_MONOID.segment_reduce(
            np.array([0.0, 5.0, 0.0]), np.array([0, 1, 1]), 2
        )
        assert np.array_equal(out, [0.0, 1.0])

    def test_scatter_plus(self):
        out = np.zeros(3)
        PLUS_MONOID.scatter(out, np.array([1, 1, 2]), np.array([1.0, 2.0, 5.0]))
        assert np.array_equal(out, [0.0, 3.0, 5.0])

    def test_scatter_min(self):
        out = np.full(2, np.inf)
        MIN_MONOID.scatter(out, np.array([0, 0]), np.array([4.0, 2.0]))
        assert out[0] == 2.0

    def test_scatter_lor(self):
        out = np.zeros(2)
        LOR_MONOID.scatter(out, np.array([0]), np.array([7.0]))
        assert out[0] == 1.0

    def test_scatter_empty_noop(self):
        out = np.array([1.0])
        PLUS_MONOID.scatter(out, np.zeros(0, dtype=int), np.zeros(0))
        assert out[0] == 1.0


class TestSemirings:
    def test_registry_lookup(self):
        assert semiring_by_name("mul_add") is MUL_ADD

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            semiring_by_name("nope")

    def test_mul_add_vxm_dense(self, rng):
        dense = rng.random((6, 6))
        x = rng.random(6)
        assert np.allclose(MUL_ADD.vxm_dense(x, dense), x @ dense)

    def test_min_add_vxm_dense_is_tropical(self):
        dense = np.array([[1.0, 10.0], [2.0, 1.0]])
        x = np.array([0.0, 5.0])
        out = MIN_ADD.vxm_dense(x, dense)
        # out[j] = min_i (x[i] + a[i, j])
        assert np.array_equal(out, [1.0, 6.0])

    def test_and_or_vxm_dense_is_reachability(self):
        dense = np.array([[0.0, 1.0], [0.0, 0.0]])
        x = np.array([1.0, 0.0])
        assert np.array_equal(AND_OR.vxm_dense(x, dense), [0.0, 1.0])

    def test_aril_add_semantics(self):
        dense = np.array([[3.0, 4.0]])
        assert np.array_equal(ARIL_ADD.vxm_dense(np.array([1.0]), dense), [3.0, 4.0])
        assert np.array_equal(ARIL_ADD.vxm_dense(np.array([0.0]), dense), [0.0, 0.0])

    def test_every_semiring_has_distinct_name(self):
        assert len(SEMIRINGS) == len({s.name for s in SEMIRINGS.values()})


# ----------------------------------------------------------------------
# Algebraic property tests
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(finite, finite, finite, monoid_names("plus", "min", "max", "lor", "land"))
def test_property_monoid_associative(a, b, c, name):
    op = MONOIDS[name].op
    left = op(op(a, b), c)
    right = op(a, op(b, c))
    assert np.isclose(left, right, rtol=1e-9, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(finite, booleans, monoid_names())
def test_property_monoid_identity(a, boolean, name):
    monoid = MONOIDS[name]
    if name in ("lor", "land"):
        # Logical monoids are only identity-preserving over {0, 1}.
        a = float(boolean)
    assert np.isclose(monoid.op(a, monoid.identity), a)


@settings(max_examples=60, deadline=None)
@given(finite, finite, monoid_names("plus", "min", "max", "lor", "land", "times"))
def test_property_monoid_commutative(a, b, name):
    op = MONOIDS[name].op
    assert np.isclose(op(a, b), op(b, a), equal_nan=True)


@settings(max_examples=60, deadline=None)
@given(finite_lists(max_size=20), monoid_names("plus", "min", "max", "lor"))
def test_property_segment_reduce_matches_reduce(values, name):
    monoid = MONOIDS[name]
    arr = np.asarray(values, dtype=np.float64)
    out = monoid.segment_reduce(arr, np.zeros(arr.size, dtype=np.int64), 1)
    assert np.isclose(out[0], monoid.reduce(arr), rtol=1e-9, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(finite, finite, finite)
def test_property_mul_distributes_over_add_mul_add(a, b, c):
    # a * (b + c) == a*b + a*c — the semiring law OEI fusion relies on.
    left = MUL_ADD.mul(a, MUL_ADD.add.op(b, c))
    right = MUL_ADD.add.op(MUL_ADD.mul(a, b), MUL_ADD.mul(a, c))
    assert np.isclose(left, right, rtol=1e-9, atol=1e-3)


@settings(max_examples=40, deadline=None)
@given(finite, finite, finite)
def test_property_min_add_distributivity(a, b, c):
    # a + min(b, c) == min(a+b, a+c) — tropical semiring law.
    left = MIN_ADD.mul(a, MIN_ADD.add.op(b, c))
    right = MIN_ADD.add.op(MIN_ADD.mul(a, b), MIN_ADD.mul(a, c))
    assert np.isclose(left, right)
