"""Tests for the matrix-level GraphBLAS-mini operations."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ShapeError
from tests.strategies import dims, seeds
from repro.graphblas import (
    Matrix,
    Vector,
    assign,
    diag,
    diag_matrix,
    ewise_add_matrix,
    ewise_mult_matrix,
    extract,
    reduce_cols,
    reduce_rows,
    select_matrix,
    select_matrix_coords,
)
from repro.semiring import MAX, MIN_MONOID, PLUS, PLUS_MONOID, TIMES


@pytest.fixture
def pair(rng):
    a = (rng.random((12, 12)) < 0.3) * rng.uniform(0.5, 2.0, (12, 12))
    b = (rng.random((12, 12)) < 0.3) * rng.uniform(0.5, 2.0, (12, 12))
    return a, b


class TestMatrixEwise:
    def test_add_union_semantics(self, pair):
        a, b = pair
        out = ewise_add_matrix(Matrix.from_dense(a), Matrix.from_dense(b), PLUS)
        both = (a != 0) & (b != 0)
        only_a = (a != 0) & (b == 0)
        dense = out.to_dense()
        assert np.allclose(dense[both], (a + b)[both])
        assert np.allclose(dense[only_a], a[only_a])

    def test_add_with_max(self, pair):
        a, b = pair
        out = ewise_add_matrix(Matrix.from_dense(a), Matrix.from_dense(b), MAX)
        both = (a != 0) & (b != 0)
        assert np.allclose(out.to_dense()[both], np.maximum(a, b)[both])

    def test_mult_intersection_semantics(self, pair):
        a, b = pair
        out = ewise_mult_matrix(Matrix.from_dense(a), Matrix.from_dense(b), TIMES)
        assert np.allclose(out.to_dense(), np.where((a != 0) & (b != 0), a * b, 0.0))

    def test_shape_mismatch(self, pair):
        a, _ = pair
        with pytest.raises(ShapeError):
            ewise_add_matrix(Matrix.from_dense(a), Matrix.from_dense(np.zeros((3, 3))), PLUS)

    def test_add_empty_plus_full(self, pair):
        a, _ = pair
        empty = Matrix.from_dense(np.zeros((12, 12)))
        out = ewise_add_matrix(Matrix.from_dense(a), empty, PLUS)
        assert np.allclose(out.to_dense(), a)


class TestSelect:
    def test_select_by_value(self, pair):
        a, _ = pair
        out = select_matrix(Matrix.from_dense(a), lambda v: v > 1.0)
        dense = out.to_dense()
        assert np.allclose(dense, np.where(a > 1.0, a, 0.0))

    def test_select_lower_triangle(self, pair):
        a, _ = pair
        out = select_matrix_coords(Matrix.from_dense(a), lambda r, c: r > c)
        assert np.allclose(out.to_dense(), np.tril(a, k=-1))

    def test_select_none(self, pair):
        a, _ = pair
        out = select_matrix(Matrix.from_dense(a), lambda v: v > 1e9)
        assert out.nnz == 0


class TestReduceDiag:
    def test_reduce_rows_plus(self, pair):
        a, _ = pair
        out = reduce_rows(Matrix.from_dense(a), PLUS_MONOID)
        nonempty = (a != 0).any(axis=1)
        assert np.allclose(out.to_dense()[nonempty], a.sum(axis=1)[nonempty])
        assert np.array_equal(out.present, nonempty)

    def test_reduce_cols_min(self, pair):
        a, _ = pair
        out = reduce_cols(Matrix.from_dense(a), MIN_MONOID)
        masked = np.where(a != 0, a, np.inf)
        nonempty = (a != 0).any(axis=0)
        assert np.allclose(out.to_dense(np.inf)[nonempty], masked.min(axis=0)[nonempty])

    def test_diag_round_trip(self):
        v = Vector.from_entries(5, [0, 3], [2.0, 7.0])
        m = diag_matrix(v)
        assert m.nnz == 2
        back = diag(m)
        assert back.isclose(v)

    def test_diag_of_general_matrix(self, pair):
        a, _ = pair
        np.fill_diagonal(a, 3.5)
        d = diag(Matrix.from_dense(a))
        assert np.allclose(d.to_dense(), 3.5)


class TestExtractAssign:
    def test_extract_values_and_presence(self):
        u = Vector.from_entries(6, [1, 4], [10.0, 40.0])
        out = extract(u, [4, 0, 1])
        assert out.size == 3
        assert out.get(0) == 40.0
        assert not out.present[1]
        assert out.get(2) == 10.0

    def test_extract_out_of_range(self):
        with pytest.raises(IndexError):
            extract(Vector.dense(3), [3])

    def test_assign_writes_stored_only(self):
        u = Vector.dense(5, 1.0)
        incoming = Vector.from_entries(2, [0], [9.0])
        out = assign(u, [2, 3], incoming)
        assert out.get(2) == 9.0
        assert out.get(3) == 1.0  # absent incoming leaves target alone

    def test_assign_with_accum(self):
        u = Vector.dense(4, 5.0)
        incoming = Vector.dense(2, 2.0)
        out = assign(u, [1, 2], incoming, accum=PLUS)
        assert out.get(1) == 7.0 and out.get(2) == 7.0
        assert out.get(0) == 5.0

    def test_assign_shape_check(self):
        with pytest.raises(ShapeError):
            assign(Vector.dense(4), [0], Vector.dense(2))

    def test_assign_does_not_mutate_input(self):
        u = Vector.dense(3, 1.0)
        assign(u, [0], Vector.dense(1, 9.0))
        assert u.get(0) == 1.0


@settings(max_examples=25, deadline=None)
@given(dims(1, 10), seeds)
def test_property_matrix_ewise_add_commutative(n, seed):
    gen = np.random.default_rng(seed)
    a = (gen.random((n, n)) < 0.4) * gen.uniform(0.1, 1, (n, n))
    b = (gen.random((n, n)) < 0.4) * gen.uniform(0.1, 1, (n, n))
    ma, mb = Matrix.from_dense(a), Matrix.from_dense(b)
    ab = ewise_add_matrix(ma, mb, PLUS).to_dense()
    ba = ewise_add_matrix(mb, ma, PLUS).to_dense()
    assert np.allclose(ab, ba)


@settings(max_examples=25, deadline=None)
@given(dims(1, 10), seeds)
def test_property_reduce_rows_matches_matvec_ones(n, seed):
    gen = np.random.default_rng(seed)
    a = (gen.random((n, n)) < 0.4) * gen.uniform(0.1, 1, (n, n))
    m = Matrix.from_dense(a)
    reduced = reduce_rows(m, PLUS_MONOID).to_dense()
    assert np.allclose(reduced, a.sum(axis=1))
