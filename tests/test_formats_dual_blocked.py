"""Tests for dual storage and the blocked UOP-CP-CP format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats.blocked import BlockedDualStorage
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dual import DualStorage
from tests.conftest import random_coo


class TestDualStorage:
    def test_both_orientations_agree(self, small_coo):
        dual = DualStorage.from_coo(small_coo)
        assert np.array_equal(dual.csc.to_dense(), dual.csr.to_dense())

    def test_row_and_col_access(self, small_dense):
        dual = DualStorage.from_coo(COOMatrix.from_dense(small_dense))
        cols, vals = dual.row(2)
        assert np.array_equal(vals, small_dense[2, cols])
        rows, vals = dual.col(4)
        assert np.array_equal(vals, small_dense[rows, 4])

    def test_storage_is_double_single_orientation(self, small_coo):
        dual = DualStorage.from_coo(small_coo)
        # indptr lengths differ only when nrows != ncols; here square.
        assert dual.storage_bytes() == 2 * dual.csr.storage_bytes()

    def test_from_csr(self, small_dense):
        dual = DualStorage.from_csr(CSRMatrix.from_dense(small_dense))
        assert np.array_equal(dual.to_dense(), small_dense)

    def test_rejects_mismatched_pair(self, small_coo):
        dual = DualStorage.from_coo(small_coo)
        other = CSRMatrix.empty((5, 5))
        with pytest.raises(ValueError):
            DualStorage(csc=dual.csc, csr=other)


class TestBlockedDualStorage:
    def test_round_trip(self, small_coo):
        blocked = BlockedDualStorage.from_coo(small_coo, block_size=8)
        assert np.array_equal(blocked.to_coo().to_dense(), small_coo.to_dense())

    def test_block_size_limits(self, small_coo):
        with pytest.raises(FormatError):
            BlockedDualStorage.from_coo(small_coo, block_size=0)
        with pytest.raises(FormatError):
            BlockedDualStorage.from_coo(small_coo, block_size=257)

    def test_local_coords_fit_one_byte(self, small_coo):
        blocked = BlockedDualStorage.from_coo(small_coo, block_size=16)
        assert blocked.local_rows.dtype == np.uint8
        assert blocked.local_cols.dtype == np.uint8
        assert blocked.local_rows.max() < 16
        assert blocked.local_cols.max() < 16

    def test_block_access_matches_matrix(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        blocked = BlockedDualStorage.from_coo(coo, block_size=8)
        seen = np.zeros_like(small_dense)
        for b in range(blocked.n_blocks):
            rows, cols, vals = blocked.block(b)
            seen[rows, cols] = vals
        assert np.array_equal(seen, small_dense)

    def test_orientation_indices_cover_all_blocks(self, small_coo):
        blocked = BlockedDualStorage.from_coo(small_coo, block_size=8)
        n_brow = blocked.row_block_indptr.size - 1
        by_rows = np.concatenate(
            [blocked.blocks_in_block_row(r) for r in range(n_brow)]
        )
        assert sorted(by_rows) == list(range(blocked.n_blocks))
        n_bcol = blocked.col_block_indptr.size - 1
        by_cols = np.concatenate(
            [blocked.blocks_in_block_col(c) for c in range(n_bcol)]
        )
        assert sorted(by_cols) == list(range(blocked.n_blocks))

    def test_blocked_smaller_than_dual_for_clustered(self):
        # Clustered non-zeros compress well (few blocks, shared payload).
        coo = random_coo(7, n=200, density=0.05)
        dual = DualStorage.from_coo(coo)
        blocked = BlockedDualStorage.from_coo(coo, block_size=64)
        ratio = blocked.storage_bytes() / dual.storage_bytes()
        assert ratio < 0.75  # paper reports ~39% for real matrices

    def test_storage_breakdown_sums(self, small_coo):
        blocked = BlockedDualStorage.from_coo(small_coo, block_size=8)
        assert (
            blocked.storage_bytes()
            == blocked.payload_bytes() + blocked.index_bytes()
        )

    def test_block_out_of_range(self, small_coo):
        blocked = BlockedDualStorage.from_coo(small_coo, block_size=8)
        with pytest.raises(IndexError):
            blocked.block(blocked.n_blocks)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 30),
    st.sampled_from([1, 3, 8, 16, 256]),
    st.integers(0, 2**31 - 1),
)
def test_property_blocked_round_trip(n, block_size, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.3) * gen.uniform(0.1, 1, (n, n))
    coo = COOMatrix.from_dense(dense)
    blocked = BlockedDualStorage.from_coo(coo, block_size=block_size)
    assert np.allclose(blocked.to_coo().to_dense(), dense)
    assert blocked.nnz == coo.nnz


class TestEmptyMatrices:
    def test_blocked_empty_matrix(self):
        blocked = BlockedDualStorage.from_coo(COOMatrix.empty((10, 10)), block_size=4)
        assert blocked.n_blocks == 0
        assert blocked.nnz == 0
        assert blocked.storage_bytes() > 0  # offset arrays still exist
        assert blocked.to_coo().nnz == 0

    def test_dual_empty_matrix(self):
        dual = DualStorage.from_coo(COOMatrix.empty((5, 5)))
        assert dual.nnz == 0
        assert dual.to_dense().shape == (5, 5)
