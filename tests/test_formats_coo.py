"""Unit tests for the COO format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ShapeError
from repro.formats.coo import COOMatrix


class TestConstruction:
    def test_from_dense_round_trip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.array_equal(coo.to_dense(), small_dense)

    def test_nnz_counts_stored_entries(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert coo.nnz == np.count_nonzero(small_dense)

    def test_empty(self):
        coo = COOMatrix.empty((4, 6))
        assert coo.nnz == 0
        assert coo.to_dense().shape == (4, 6)

    def test_rejects_negative_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((-1, 3), np.zeros(0), np.zeros(0), np.zeros(0))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_rejects_out_of_range_row(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([3]), np.array([0]), np.array([1.0]))

    def test_rejects_out_of_range_col(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([0]), np.array([-1]), np.array([1.0]))

    def test_rejects_non_2d_dense(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_dense(np.zeros(5))


class TestDeduplicate:
    def test_sums_duplicates(self):
        coo = COOMatrix(
            (2, 2), np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 4.0])
        )
        dedup = coo.deduplicate()
        assert dedup.nnz == 2
        assert dedup.to_dense()[0, 1] == 5.0

    def test_drops_explicit_zeros(self):
        coo = COOMatrix(
            (2, 2), np.array([0, 0]), np.array([1, 1]), np.array([2.0, -2.0])
        )
        assert coo.deduplicate().nnz == 0

    def test_sorted_row_major(self):
        coo = COOMatrix(
            (3, 3), np.array([2, 0, 1]), np.array([0, 2, 1]), np.array([1.0, 2.0, 3.0])
        )
        dedup = coo.deduplicate()
        assert list(dedup.rows) == [0, 1, 2]

    def test_idempotent(self, small_coo):
        once = small_coo.deduplicate()
        twice = once.deduplicate()
        assert np.array_equal(once.rows, twice.rows)
        assert np.array_equal(once.vals, twice.vals)

    def test_empty_matrix(self):
        assert COOMatrix.empty((3, 3)).deduplicate().nnz == 0


class TestTransform:
    def test_transpose(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.array_equal(coo.transpose().to_dense(), small_dense.T)

    def test_transpose_shape(self):
        coo = COOMatrix.empty((3, 7))
        assert coo.transpose().shape == (7, 3)

    def test_permute_rows(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        perm = np.random.default_rng(0).permutation(30)
        permuted = coo.permute(row_perm=perm)
        expected = np.zeros_like(small_dense)
        expected[perm, :] = small_dense
        assert np.array_equal(permuted.to_dense(), expected)

    def test_permute_symmetric_preserves_values(self, small_coo):
        perm = np.random.default_rng(1).permutation(30)
        permuted = small_coo.permute(perm, perm)
        assert permuted.nnz == small_coo.nnz
        assert np.isclose(permuted.vals.sum(), small_coo.vals.sum())

    def test_permute_none_is_identity(self, small_coo):
        same = small_coo.permute()
        assert np.array_equal(same.to_dense(), small_coo.to_dense())


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 12), st.integers(0, 2**31 - 1))
def test_property_dense_round_trip(n, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.3) * gen.uniform(-1, 1, (n, n))
    assert np.array_equal(COOMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10), st.integers(0, 2**31 - 1))
def test_property_double_transpose_identity(n, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.4) * gen.uniform(-1, 1, (n, n))
    coo = COOMatrix.from_dense(dense)
    assert np.array_equal(coo.transpose().transpose().to_dense(), dense)
